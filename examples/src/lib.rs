//! Runnable example applications for the region algebra workspace.
//!
//! * `quickstart` — index an SGML document, run algebra queries;
//! * `source_code` — the paper's running example (Figure 1 schema, RIG
//!   optimization, direct inclusion, both-included);
//! * `dictionary` — a PAT-on-the-OED style dictionary workload;
//! * `inexpressibility` — Theorems 5.1/5.3 checked by exhaustive sweeps.
//!
//! Run with `cargo run -p tr-examples --bin <name>`.
