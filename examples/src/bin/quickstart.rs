//! Quickstart: index a small SGML document and run region algebra queries.
//!
//! ```text
//! cargo run -p tr-examples --bin quickstart
//! ```

use tr_query::Engine;

fn main() {
    let doc = r#"<report>
<title>Quarterly engine report</title>
<section><heading>Results</heading>
<para>The region engine beat the baseline on every workload.</para>
<para>Suffix array construction stayed below one second.</para>
</section>
<section><heading>Risks</heading>
<para>The baseline engine may improve next quarter.</para>
<note><para>Mitigation: keep the benchmark suite green.</para></note>
</section>
</report>"#;

    let engine = Engine::from_sgml(doc).expect("well-formed document");
    println!(
        "indexed {} regions over {} bytes",
        engine.instance().len(),
        engine.text().len()
    );
    println!(
        "schema: {}",
        engine.schema().names().collect::<Vec<_>>().join(", ")
    );
    println!();

    let queries = [
        // Every paragraph mentioning the engine.
        r#"para matching "engine""#,
        // Sections whose heading mentions results.
        r#"section containing (heading matching "Results")"#,
        // Paragraphs mentioning the engine, but not inside notes.
        r#"para matching "engine" minus (para within note)"#,
        // Paragraphs after the Risks heading.
        r#"para after (heading matching "Risks")"#,
        // Paragraphs *directly* inside sections (not nested in notes).
        r#"para directly within section"#,
    ];
    for q in queries {
        let hits = engine.query(q).expect("valid query");
        println!("query: {q}");
        println!("  {} hit(s)", hits.len());
        for r in hits.iter() {
            let snippet: String = engine.snippet(r).chars().take(60).collect();
            println!("  {r}  {}", snippet.replace('\n', " "));
        }
        println!();
    }
}
