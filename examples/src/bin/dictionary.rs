//! A dictionary workload in the style of PAT's original deployment on the
//! Oxford English Dictionary (Gonnet 1987, cited by the paper): entries
//! with senses and quotations, queried by structure and content through
//! the suffix-array word index.
//!
//! ```text
//! cargo run -p tr-examples --bin dictionary
//! ```

use tr_query::Engine;

fn main() {
    let doc = "<dictionary>\
<entry><headword>region</headword>\
<sense><def>a part of space or a surface</def>\
<quote>vast regions of the text remained unindexed</quote></sense>\
<sense><def>an administrative area</def></sense></entry>\
<entry><headword>algebra</headword>\
<sense><def>a calculus of symbols and operations</def>\
<quote>the region algebra has seven operations</quote></sense></entry>\
<entry><headword>suffix</headword>\
<sense><def>an affix placed after the stem</def>\
<quote>every suffix of the text is a sistring</quote></sense></entry>\
</dictionary>";

    let engine = Engine::from_sgml(doc).expect("well-formed");
    println!(
        "dictionary indexed: {} entries, {} regions, {} bytes\n",
        engine.query("entry").unwrap().len(),
        engine.instance().len(),
        engine.text().len()
    );

    let show = |title: &str, query: &str| {
        let hits = engine.query(query).expect("valid query");
        println!("{title}\n  {query}\n  {} hit(s)", hits.len());
        for r in hits.iter() {
            let text: String = engine.snippet(r).chars().take(70).collect();
            println!("    {text}");
        }
        println!();
    };

    show(
        "Entries whose quotations mention the text:",
        r#"entry containing (quote matching "text")"#,
    );
    show(
        "Headwords of entries with more than… well, with a quotation:",
        "headword within (entry containing quote)",
    );
    show(
        "Definitions of senses that come with a quotation:",
        "def within (sense containing quote)",
    );
    show(
        "Word-prefix search (PAT sistring semantics): senses matching \"operat*\":",
        r#"sense matching "operat*""#,
    );
    show(
        "Senses after the 'algebra' headword:",
        r#"sense after (headword matching "algebra")"#,
    );
    show(
        "Quotes directly within senses (never nested deeper):",
        "quote directly within sense",
    );
}
