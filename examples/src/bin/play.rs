//! A larger end-to-end scenario: generate a marked-up play (acts, scenes,
//! speeches, lines — the classic structured-text-retrieval corpus shape),
//! index it, and answer structure+content questions, including views and
//! the extended operators.
//!
//! ```text
//! cargo run -p tr-examples --bin play [acts]
//! ```

use tr_query::Engine;

/// Deterministically generates a play with `acts` acts.
fn generate_play(acts: usize) -> String {
    let speakers = ["DUKE", "VIOLA", "OLIVIA", "FESTE", "MALVOLIO"];
    let lines = [
        "If music be the food of love, play on.",
        "Better a witty fool than a foolish wit.",
        "Some are born great, some achieve greatness.",
        "Journeys end in lovers meeting.",
        "Nothing that is so, is so.",
        "I was adored once too.",
    ];
    let mut out = String::from("<play><title>The Region Night</title>\n");
    let mut k = 0usize;
    for act in 1..=acts {
        out.push_str(&format!("<act><acttitle>Act {act}</acttitle>\n"));
        for scene in 1..=3 {
            out.push_str(&format!("<scene><scenetitle>Scene {scene}</scenetitle>\n"));
            for s in 0..4 {
                let speaker = speakers[(k + s) % speakers.len()];
                out.push_str(&format!("<speech><speaker>{speaker}</speaker>"));
                for l in 0..2 {
                    out.push_str(&format!(
                        "<line>{}</line>",
                        lines[(k + s + l) % lines.len()]
                    ));
                }
                out.push_str("</speech>\n");
            }
            out.push_str("</scene>\n");
            k += 1;
        }
        out.push_str("</act>\n");
    }
    out.push_str("</play>\n");
    out
}

fn main() {
    let acts: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let doc = generate_play(acts);
    let mut engine = Engine::from_sgml(&doc).expect("generated play is well-formed");
    println!(
        "play: {} bytes, {} regions, schema: {}\n",
        doc.len(),
        engine.instance().len(),
        engine.schema().names().collect::<Vec<_>>().join(", ")
    );

    // Views make repeated sub-queries readable (the paper's footnote 1).
    engine
        .define_view(
            "feste_speech",
            r#"speech containing (speaker matching "FESTE")"#,
        )
        .expect("valid view");
    engine
        .define_view(
            "duke_speech",
            r#"speech containing (speaker matching "DUKE")"#,
        )
        .expect("valid view");
    engine
        .define_view("love_lines", r#"line matching "love""#)
        .expect("valid view");

    let queries = [
        ("Scenes where Feste speaks", "scene containing feste_speech"),
        ("Lines about love", "love_lines"),
        (
            "The Duke's lines about love",
            "love_lines within duke_speech",
        ),
        (
            "Speeches after a Malvolio speech, same document order",
            r#"speech after (speech containing (speaker matching "MALVOLIO"))"#,
        ),
        (
            "Scenes where greatness is mentioned before a journey",
            r#"bi(scene, line matching "greatness", line matching "Journeys")"#,
        ),
        (
            "Lines directly within speeches (all of them)",
            "line directly within speech",
        ),
        (
            "Speeches NOT mentioning love in their first act",
            r#"speech within (act containing (acttitle matching "Act 1")) minus (speech containing love_lines)"#,
        ),
    ];
    for (title, q) in queries {
        match engine.query(q) {
            Ok(hits) => {
                println!("{title}:\n  {q}\n  {} hit(s)", hits.len());
                for r in hits.iter().take(2) {
                    let snippet: String = engine.snippet(r).chars().take(64).collect();
                    println!("    {}", snippet.replace('\n', " "));
                }
                if hits.len() > 2 {
                    println!("    …");
                }
            }
            Err(e) => println!("{title}: ERROR {e}"),
        }
        println!();
    }
}
