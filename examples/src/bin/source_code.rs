//! The paper's running example end-to-end: query the structure of source
//! code (Figure 1's region schema), including the Section 2.2 RIG
//! optimization, the Section 5.1 direct-inclusion queries, and the
//! Section 5.2 both-included query.
//!
//! ```text
//! cargo run -p tr-examples --bin source_code
//! ```

use tr_query::Engine;

fn main() {
    let source = "\
program payroll;
  var total;
  proc compute;
    var x;
    var y;
    proc helper;
      var z;
    begin end;
  begin end;
  proc report;
    var y;
    var x;
  begin end;
  proc audit;
    var y;
  begin end;
begin end.
";
    println!("--- source file ---\n{source}");
    let engine = Engine::from_source(source).expect("valid program");

    // Section 2.2: e1 and e2 are equivalent w.r.t. the Figure 1 RIG, and
    // the engine's planner rewrites e1 into e2 automatically.
    let e1 = "Name within Proc_header within Proc within Program";
    println!("--- RIG optimization (Section 2.2) ---");
    println!("{}", engine.explain(e1).expect("valid"));
    let names = engine.query(e1).expect("valid");
    println!("procedure names:");
    for r in names.iter() {
        println!("  {}", engine.snippet(r));
    }
    println!();

    // Section 5.1: find the procedures that *define* variable z. Plain ⊃
    // over-selects because procedures nest (compute merely *contains*
    // helper, which defines z); ⊃_d is exact.
    println!("--- direct inclusion (Section 5.1) ---");
    let loose = r#"Proc containing (Proc_body containing (Var matching "z"))"#;
    let tight = r#"Proc directly containing (Proc_body directly containing (Var matching "z"))"#;
    for q in [loose, tight] {
        let hits = engine.query(q).expect("valid");
        println!("{q}");
        for r in hits.iter() {
            let first_line = engine.snippet(r).lines().next().unwrap_or("");
            println!("  {}", first_line.trim());
        }
    }
    println!();

    // Section 5.2: procedures where x's definition precedes y's.
    println!("--- both-included (Section 5.2) ---");
    let bi = r#"bi(Proc, Var matching "x", Var matching "y")"#;
    let naive = r#"Proc containing ((Var matching "x") before (Var matching "y"))"#;
    for q in [bi, naive] {
        let hits = engine.query(q).expect("valid");
        println!("{q}");
        for r in hits.iter() {
            let first_line = engine.snippet(r).lines().next().unwrap_or("");
            println!("  {}", first_line.trim());
        }
    }
    println!();
    println!("note: `compute` declares x before y; `report` declares y before x, yet");
    println!("the naive formulation selects it anyway — report's x precedes *audit*'s y.");
}
