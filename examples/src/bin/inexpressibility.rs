//! The expressiveness results made tangible: runs the Figure 2 and
//! Figure 3 counter-example families and exhaustively checks that no
//! small region algebra expression computes direct inclusion or
//! both-included (Theorems 5.1 and 5.3).
//!
//! ```text
//! cargo run -p tr-examples --bin inexpressibility [max_ops]
//! ```

use tr_ext::{both_included_probes, count_exprs, direct_inclusion_probes, sweep};

fn main() {
    let max_ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    println!("=== Theorem 5.1: B ⊃_d A is not expressible ===");
    println!("probe family: Figure 2 alternating chains (depths 6 and 8)");
    println!("plus their single-deletion variants\n");
    let probes = direct_inclusion_probes(&[6, 8]);
    let schema = tr_markup::figure_2_schema();
    println!("{:>4} {:>12} {:>10}", "ops", "expressions", "matching");
    for ops in 0..=max_ops {
        let r = sweep(&schema, ops, &probes);
        println!("{:>4} {:>12} {:>10}", r.ops, r.checked, r.matching);
        assert_eq!(r.matching, 0, "Theorem 5.1 would be falsified!");
    }
    println!("(0 matching at every size, as the theorem demands)\n");

    println!("=== Theorem 5.3: C BI (B, A) is not expressible ===");
    println!("probe family: Figure 3 instances (k = 1, 2) and their reduced versions\n");
    let probes = both_included_probes(&[1, 2]);
    let schema = tr_markup::figure_3_schema();
    println!("{:>4} {:>12} {:>10}", "ops", "expressions", "matching");
    for ops in 0..=max_ops {
        let r = sweep(&schema, ops, &probes);
        println!("{:>4} {:>12} {:>10}", r.ops, r.checked, r.matching);
        assert_eq!(r.matching, 0, "Theorem 5.3 would be falsified!");
    }
    println!("(0 matching at every size)\n");

    println!("=== search-space growth (why exhaustion stops early) ===");
    println!("{:>4} {:>16} {:>16}", "ops", "2-name exprs", "3-name exprs");
    for ops in 0..=6 {
        println!(
            "{:>4} {:>16} {:>16}",
            ops,
            count_exprs(2, ops),
            count_exprs(3, ops)
        );
    }
    println!("\nBut the theorems hold at *every* size: Propositions 5.2/5.4 show the");
    println!("operators only become expressible under bounded nesting depth (acyclic");
    println!("RIG) or bounded antichain width — see `tr_ext::bounded` and the");
    println!("`bounded_depth` benchmark.");
}
