//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate re-implements exactly the slice of the `rand 0.8`
//! API the workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait with
//! `gen_range`/`gen_bool`, and [`seq::SliceRandom::choose`]. The generator
//! is deterministic (xoshiro256**), so seeded workloads are reproducible,
//! but the stream differs from upstream `rand` — seeds pick *a* workload,
//! not the same workload upstream would produce.

/// Low-level source of random bits.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, as an extension of [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value in `range` (`a..b` or `a..=b`). Panics on an empty
    /// range, like upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable from a range. Mirrors upstream's single
/// blanket `SampleRange` impl per range shape, which is what lets type
/// inference flow from a range's element type to `gen_range`'s result.
pub trait SampleUniform: Sized {
    /// Uniform draw from `lo..hi`; panics if empty.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `lo..=hi`; panics if empty.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let frac = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        lo + frac * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        Self::sample_exclusive(lo, f64::from_bits(hi.to_bits() + 1), rng)
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded by
    /// SplitMix64. Deterministic, fast, and good enough for test workloads
    /// (this is *not* a cryptographic RNG, matching upstream `StdRng`'s
    /// contract of reproducibility only).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// The conventional glob-import module.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u32 = a.gen_range(3..17);
            assert!((3..17).contains(&x));
            assert_eq!(x, b.gen_range(3..17));
        }
        let mut c = StdRng::seed_from_u64(7);
        let x: i64 = c.gen_range(-5..=5);
        assert!((-5..=5).contains(&x));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads} heads of 10000");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let opts = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*opts.as_slice().choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
