//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the slice of the criterion 0.5 API the workspace's benches
//! use — `criterion_group!` / `criterion_main!`, [`Criterion`] with
//! `bench_function` / `benchmark_group`, [`BenchmarkGroup`] with
//! `sample_size` / `throughput` / `bench_with_input`, [`BenchmarkId`], and
//! [`Throughput`] — backed by a plain wall-clock measurement loop instead
//! of criterion's statistical machinery.
//!
//! Results are printed to stdout and, mirroring real criterion's on-disk
//! layout, written to `target/criterion/<id>/new/estimates.json` with a
//! `mean.point_estimate` in nanoseconds so downstream tooling that scrapes
//! criterion JSON keeps working.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units of work per iteration, for reporting throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// An id with both a name and a parameter (e.g. `includes/1024`).
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }

    /// An id that is only a parameter (the group provides the name).
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            param: Some(param.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.name, &self.param) {
            (n, Some(p)) if n.is_empty() => p.clone(),
            (n, Some(p)) => format!("{n}/{p}"),
            (n, None) => n.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: name.to_owned(),
            param: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { name, param: None }
    }
}

/// Passed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher<'a> {
    /// Number of timed iterations requested by the harness.
    iters: u64,
    /// Measured wall-clock total for the timed iterations.
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    /// Times `routine`, keeping its result live via `black_box`.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warm-up: one untimed call primes caches and lazy allocations.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        *self.elapsed = start.elapsed();
    }
}

/// The harness entry point, handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 100,
            filter,
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        run_one(&id.label(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    fn matches(&self, label: &str) -> bool {
        match &self.filter {
            Some(f) => label.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declares the units of work per iteration (reported, not enforced).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let label = format!("{}/{}", self.name, id.label());
        if self.criterion.matches(&label) {
            let n = self.sample_size.unwrap_or(self.criterion.sample_size);
            run_one(&label, n, self.throughput, f);
        }
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; settings are per-group
    /// already).
    pub fn finish(self) {}
}

/// Measures `f`: picks an iteration count targeting a fixed time budget,
/// then reports the mean per-iteration time over `samples` samples.
fn run_one<F>(label: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: run once to estimate per-iteration cost.
    let mut once = Duration::ZERO;
    f(&mut Bencher {
        iters: 1,
        elapsed: &mut once,
    });
    // Budget ~20ms per sample, clamped to a sane iteration range so fast
    // routines get enough iterations to be measurable and slow ones finish.
    let per_iter = once.as_secs_f64().max(1e-9);
    let iters = ((0.02 / per_iter) as u64).clamp(1, 1_000_000);
    let samples = samples.clamp(1, 20);

    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..samples {
        let mut elapsed = Duration::ZERO;
        f(&mut Bencher {
            iters,
            elapsed: &mut elapsed,
        });
        let per = elapsed.as_secs_f64() / iters as f64;
        best = best.min(per);
        total += per;
    }
    let mean = total / samples as f64;

    let mut line = format!(
        "{label:<56} mean {:>12}  best {:>12}",
        fmt_time(mean),
        fmt_time(best)
    );
    if let Some(t) = throughput {
        let (units, suffix) = match t {
            Throughput::Bytes(b) => (b as f64, "B/s"),
            Throughput::Elements(e) => (e as f64, "elem/s"),
        };
        let _ = write!(line, "  {:>12.3e} {}", units / mean, suffix);
    }
    println!("{line}");
    write_estimates(label, mean, best);
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// The cargo target directory: `$CARGO_TARGET_DIR` if set, else derived
/// from the bench executable's path (`<target>/<profile>/deps/<bench>`),
/// else `target` relative to the working directory. Real criterion writes
/// under the *workspace* target dir, so the stub must too — under
/// `cargo bench` the working directory is the package dir, not the root.
fn cargo_target_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut p = exe.as_path();
        while let Some(parent) = p.parent() {
            if parent.file_name().is_some_and(|n| n == "target") {
                return parent.to_path_buf();
            }
            p = parent;
        }
    }
    PathBuf::from("target")
}

/// Mirrors criterion's `target/criterion/<id>/new/estimates.json` layout
/// (mean/median point estimates in nanoseconds).
fn write_estimates(label: &str, mean_secs: f64, best_secs: f64) {
    let mut dir = cargo_target_dir();
    dir.push("criterion");
    for part in label.split('/') {
        // Same character sanitization criterion applies to path components.
        let clean: String = part
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        dir.push(clean);
    }
    dir.push("new");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let ns = mean_secs * 1e9;
    let best_ns = best_secs * 1e9;
    let json = format!(
        concat!(
            "{{\"mean\":{{\"point_estimate\":{mean},\"standard_error\":0.0}},",
            "\"median\":{{\"point_estimate\":{best},\"standard_error\":0.0}},",
            "\"slope\":{{\"point_estimate\":{mean},\"standard_error\":0.0}}}}"
        ),
        mean = ns,
        best = best_ns,
    );
    let _ = std::fs::write(dir.join("estimates.json"), json);
}

/// Groups benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes --bench; `cargo test` passes its own
            // harness flags. Ignore everything but an optional name filter.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("op", 42).label(), "op/42");
        assert_eq!(BenchmarkId::from_parameter(7).label(), "7");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }

    #[test]
    fn bench_runs_and_writes_estimates() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
        };
        let mut ran = 0u32;
        c.bench_function("stub_smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut g = c.benchmark_group("stub_group");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        let path = cargo_target_dir().join("criterion/stub_group/sum/8/new/estimates.json");
        assert!(
            path.exists(),
            "estimates.json written at {}",
            path.display()
        );
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("point_estimate"), "{body}");
    }
}
