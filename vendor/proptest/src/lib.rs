//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_recursive`,
//! range and tuple strategies, [`collection::vec`], `any::<T>()`,
//! [`strategy::Just`], the `prop_oneof!` / `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed (per test-case index), and failing cases are *not*
//! shrunk — the failing input is reported as generated. That keeps the
//! property-test suite meaningful offline without pulling in the real
//! dependency graph.

use rand::prelude::*;
use std::rc::Rc;

/// The deterministic RNG threaded through strategies.
pub type TestRng = StdRng;

/// A generator of test values.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a cloneable recipe for producing a `Value` from a [`TestRng`].
pub trait Strategy: Clone {
    /// The type of values this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U + 'static>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy {
            gen_fn: Rc::new(move |rng| inner.generate(rng)),
        }
    }

    /// Recursive strategies: `f` lifts a strategy for the inner level to a
    /// strategy for the outer level; generation stops at `depth` levels
    /// (the `max_size` / `expected_branch` hints are accepted for API
    /// compatibility but unused — there is no size-driven shrinking here).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _max_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = f(level).boxed();
            let shallow = leaf.clone();
            // At each level, fall back to the leaf half the time so
            // generated structures span all depths, not just the maximum.
            level = BoxedStrategy {
                gen_fn: Rc::new(move |rng: &mut TestRng| {
                    if rng.gen_bool(0.5) {
                        shallow.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }),
            };
        }
        level
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F: ?Sized> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F: ?Sized> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::SampleUniform + Clone> Strategy for core::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Strategy combinators and primitives.
pub mod strategy {
    use super::*;

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives — the engine behind
    /// `prop_oneof!`.
    pub fn one_of<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        BoxedStrategy {
            gen_fn: Rc::new(move |rng: &mut TestRng| {
                let i = rng.gen_range(0..arms.len());
                arms[i].generate(rng)
            }),
        }
    }
}

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                BoxedStrategy {
                    gen_fn: Rc::new(|rng: &mut TestRng| {
                        use rand::RngCore;
                        rng.next_u64() as $t
                    }),
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy {
            gen_fn: Rc::new(|rng: &mut TestRng| rng.gen_bool(0.5)),
        }
    }
}

/// The canonical strategy for `T` (upstream `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy + 'static>(
        element: S,
        len: core::ops::Range<usize>,
    ) -> BoxedStrategy<Vec<S::Value>> {
        BoxedStrategy {
            gen_fn: Rc::new(move |rng: &mut TestRng| {
                let n = rng.gen_range(len.clone());
                (0..n).map(|_| element.generate(rng)).collect()
            }),
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`. Only the case
    /// count is meaningful in this stub.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::SeedableRng;

    /// Deterministic per-case RNG: fixed base seed mixed with the case
    /// index, so each case differs but runs are reproducible.
    pub fn case_rng(test_name: &str, case: u32) -> super::TestRng {
        use rand::SeedableRng as _;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        super::TestRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that generates inputs and runs the body for the
/// configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident(
        $($pat:pat_param in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::__rt::case_rng(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a property, reporting both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)*)
            );
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
        }
    }

    #[test]
    fn ranges_tuples_and_maps() {
        let mut rng = crate::__rt::case_rng("ranges", 0);
        let s = (0u32..10, 5usize..6).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn recursive_strategies_span_depths() {
        let leaf = (0u8..4).prop_map(Tree::Leaf);
        let trees = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = crate::__rt::case_rng("rec", 1);
        let depths: std::collections::BTreeSet<usize> =
            (0..200).map(|_| depth(&trees.generate(&mut rng))).collect();
        assert!(depths.contains(&0), "leaves occur");
        assert!(
            depths.iter().any(|&d| d >= 2),
            "deep trees occur: {depths:?}"
        );
        assert!(depths.iter().all(|&d| d <= 4), "depth bounded: {depths:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires patterns, strategies, and assertions together.
        #[test]
        fn macro_end_to_end((a, b) in (0u32..50, 0u32..50), v in crate::collection::vec(0u8..3, 0..5)) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(v.len(), v.iter().copied().count());
            prop_assert!(v.iter().all(|&x| x < 3), "elements in range: {:?}", v);
        }
    }
}
