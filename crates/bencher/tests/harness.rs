//! tr-bencher integration and property tests.
//!
//! Three layers: property tests pinning the reducer's percentiles to a
//! sorted-vec oracle and the scenario DSL to round-trip/total-parse
//! laws; schedule-jitter bounds; and a live end-to-end run against an
//! in-process tr-serve instance (the same path `tr-bencher run` takes
//! without `--addr`).

use proptest::prelude::*;
use std::time::Duration;
use tr_bencher::loadgen::{self, doc_name, Outcome, RequestRecord, WorkItem};
use tr_bencher::report::{self, LoadBaseline, LoadReport, ScenarioBudget};
use tr_bencher::scenario::{self, Arrivals, Mix, Scenario};
use tr_serve::{Catalog, Server};

// ---------------------------------------------------------------- oracle

/// The sorted-vec percentile the histogram approximates: smallest value
/// with at least `ceil(q*n)` samples at or below it.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// The power-of-two bucket `[lower, upper)` that `v` falls in —
/// interpolation may land anywhere inside the oracle's bucket, but
/// never outside it.
fn bucket_bounds(v: u64) -> (u64, u64) {
    if v == 0 {
        return (0, 1);
    }
    let lower = 1u64 << (63 - v.leading_zeros());
    (lower, lower.saturating_mul(2))
}

fn ok_records(latencies_ns: &[u64]) -> Vec<RequestRecord> {
    latencies_ns
        .iter()
        .enumerate()
        .map(|(i, &l)| RequestRecord {
            scheduled_ns: i as u64 * 1000,
            sent_ns: i as u64 * 1000,
            first_byte_ns: i as u64 * 1000 + l,
            done_ns: i as u64 * 1000 + l,
            outcome: Outcome::Ok,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Each reported percentile lands inside the bucket that contains
    /// the exact sorted-vec oracle, and the max is exact.
    #[test]
    fn reducer_percentiles_track_the_sorted_oracle(
        mut lats in proptest::collection::vec(0u64..2_000_000_000, 1..300)
    ) {
        let s = report::summarize(&ok_records(&lats), 100.0, 1.0, 1);
        lats.sort_unstable();
        for (q, est_ms) in [
            (0.50, s.latency.p50),
            (0.90, s.latency.p90),
            (0.95, s.latency.p95),
            (0.99, s.latency.p99),
        ] {
            let o = oracle(&lats, q);
            let (lower, upper) = bucket_bounds(o);
            // The histogram clamps its top estimate to the exact max.
            let upper = upper.min(*lats.last().unwrap()).max(lower);
            let est_ns = est_ms * 1e6;
            prop_assert!(
                est_ns >= lower as f64 - 0.5 && est_ns <= upper as f64 + 0.5,
                "q={q}: est {est_ns}ns outside oracle bucket [{lower}, {upper}] (oracle {o})"
            );
        }
        let max_ns = s.latency.max * 1e6;
        prop_assert!((max_ns - *lats.last().unwrap() as f64).abs() < 0.5);
    }

    /// Percentiles are monotone in q and bounded by the max.
    #[test]
    fn reducer_percentiles_are_monotone(
        lats in proptest::collection::vec(0u64..1_000_000_000, 1..200)
    ) {
        let s = report::summarize(&ok_records(&lats), 100.0, 1.0, 1);
        let l = s.latency;
        prop_assert!(l.p50 <= l.p90 + 1e-9);
        prop_assert!(l.p90 <= l.p95 + 1e-9);
        prop_assert!(l.p95 <= l.p99 + 1e-9);
        prop_assert!(l.p99 <= l.max + 1e-9);
    }

    /// Valid scenarios survive text round-trips exactly.
    #[test]
    fn scenario_round_trips(
        docs in 1usize..16,
        sections in 1usize..2000,
        seed in any::<u64>(),
        hot in 0u32..=100,
        point in 0u32..10, join in 0u32..10, batch in 0u32..10, oversize in 0u32..10,
        session_views in any::<bool>(),
        poisson in any::<bool>(),
        workers in 1usize..16,
        queue in 1usize..512,
        deadline_ms in 1u64..10_000,
        max_frame_kb in 1usize..1024,
        rate_centi in 1u64..100_000,
        duration_centi in 1u64..100_000,
    ) {
        let sc = Scenario {
            name: "prop".to_owned(),
            docs,
            sections,
            seed,
            hot_fraction: hot as f64 / 100.0,
            mix: Mix { point, join, batch, oversize: oversize.max(1) },
            session_views,
            workers,
            queue,
            deadline_ms,
            max_frame_kb,
            rate: rate_centi as f64 / 100.0,
            duration_s: duration_centi as f64 / 100.0,
            arrivals: if poisson { Arrivals::Poisson } else { Arrivals::Uniform },
        };
        prop_assert_eq!(scenario::parse(&sc.to_text()).unwrap(), sc);
    }

    /// Parsing is total: arbitrary input never panics, it either
    /// yields a valid scenario or a diagnostic.
    #[test]
    fn scenario_parse_never_panics(
        bytes in proptest::collection::vec(9u8..127, 0..200)
    ) {
        // Printable-ish ASCII with tabs and newlines mixed in.
        let text = String::from_utf8(bytes).unwrap();
        let _ = scenario::parse(&text);
    }

    /// The open-loop schedule is exact: request i is due at i/rate,
    /// with zero accumulated drift.
    #[test]
    fn schedule_has_no_drift(rate_deci in 5u64..5000, secs_deci in 1u64..100) {
        let rate = rate_deci as f64 / 10.0;
        let schedule = loadgen::arrival_schedule(
            rate,
            Duration::from_secs_f64(secs_deci as f64 / 10.0),
        );
        for (i, due) in schedule.iter().enumerate() {
            let ideal = i as f64 / rate;
            prop_assert!(
                (due.as_secs_f64() - ideal).abs() < 1e-6,
                "arrival {i}: {due:?} vs ideal {ideal}"
            );
        }
    }
}

// ------------------------------------------------------------- live runs

fn live_scenario() -> Scenario {
    scenario::parse(
        "name = live\n\
         docs = 2\n\
         sections = 40\n\
         seed = 11\n\
         hot_fraction = 0.7\n\
         mix.point = 4\n\
         mix.join = 2\n\
         mix.batch = 1\n\
         mix.oversize = 1\n\
         session_views = true\n\
         workers = 4\n\
         queue = 64\n\
         deadline_ms = 2000\n\
         max_frame_kb = 8\n\
         rate = 300\n\
         duration_s = 1\n",
    )
    .unwrap()
}

fn boot(sc: &Scenario) -> Server {
    let mut catalog = Catalog::new();
    for i in 0..sc.docs {
        let text = tr_bench::sgml_workload(sc.sections, sc.seed.wrapping_add(i as u64));
        catalog.insert(&doc_name(i), tr_query::Engine::from_sgml(&text).unwrap());
    }
    Server::start(catalog, "127.0.0.1:0", sc.server_config()).unwrap()
}

#[test]
fn end_to_end_open_loop_run_against_a_live_server() {
    let sc = live_scenario();
    let server = boot(&sc);
    let result = loadgen::run_load(
        server.local_addr(),
        &sc,
        sc.rate,
        Duration::from_secs_f64(1.0),
    );
    server.shutdown();

    // Open loop: every scheduled request produced a record.
    assert_eq!(result.records.len(), 300);
    // A healthy unloaded server answers everything, including the
    // oversize probes (whose expected too_large reply is an Ok).
    let ok = result
        .records
        .iter()
        .filter(|r| r.outcome == Outcome::Ok)
        .count();
    assert_eq!(ok, 300, "outcomes: {:?}", &result.records[..5]);
    // Pool reuse: far fewer connections than requests, at least one.
    assert!(
        result.connections >= 1 && result.connections < 150,
        "{}",
        result.connections
    );
    // Trace sanity on every record.
    for r in &result.records {
        assert!(r.sent_ns >= r.scheduled_ns, "sent before schedule: {r:?}");
        assert!(
            r.first_byte_ns >= r.sent_ns,
            "first byte before send: {r:?}"
        );
        assert!(
            r.done_ns >= r.first_byte_ns,
            "done before first byte: {r:?}"
        );
    }

    // Reduce, serialize, re-parse, gate: the full `check` path minus
    // the CLI. A generous budget passes; a sub-microsecond one fails.
    let summary = report::reduce(&result, sc.rate);
    assert_eq!(summary.ok, 300);
    assert!(summary.error_rate == 0.0);
    assert!(summary.achieved_rate > 100.0, "{}", summary.achieved_rate);
    let rep = LoadReport {
        scenario: sc.name.clone(),
        summary,
    };
    let parsed = tr_obs::parse_json(&rep.to_json().pretty()).unwrap();
    let back = LoadReport::from_json(&parsed).unwrap();
    assert_eq!(back.summary.requests, 300);

    let budget = |p99: f64| LoadBaseline {
        calibrate_ref_secs: 0.004,
        budgets: vec![ScenarioBudget {
            scenario: "live".to_owned(),
            p99_budget_ms: p99,
            error_budget: 0.01,
        }],
    };
    assert!(report::check(&back, &budget(10_000.0), 1.0)
        .unwrap()
        .is_empty());
    let violations = report::check(&back, &budget(0.0001), 1.0).unwrap();
    assert_eq!(violations.len(), 1);
    assert!(violations[0].what.contains("p99"), "{violations:?}");
}

#[test]
fn oversize_probes_get_too_large_and_keep_their_connection() {
    let sc = scenario::parse(
        "name = oversize\nmix.point = 0\nmix.join = 0\nmix.batch = 0\nmix.oversize = 1\n\
         docs = 1\nsections = 10\nmax_frame_kb = 4\nrate = 50\nduration_s = 1\n",
    )
    .unwrap();
    let server = boot(&sc);
    let result = loadgen::run_load(server.local_addr(), &sc, 50.0, Duration::from_secs(1));
    server.shutdown();
    assert_eq!(result.records.len(), 50);
    assert!(result.records.iter().all(|r| r.outcome == Outcome::Ok));
    // `too_large` must not cost a reconnect per probe: the pool keeps
    // the (still healthy) connections circulating.
    assert!(result.connections < 25, "{} reconnects", result.connections);
}

#[test]
fn session_view_queries_reach_the_server() {
    // A plan with views enabled contains via_view items, and the live
    // run answers them all — i.e. define-view really ran per conn/doc.
    let sc = live_scenario();
    let plan = loadgen::build_plan(&sc, 300);
    let via = plan
        .iter()
        .filter(|i| matches!(i, WorkItem::Query { via_view: true, .. }))
        .count();
    assert!(via > 10, "only {via} view queries in 300");
}
