//! Self-test of the p99 gate: with `TR_SERVE_TEST_STALL_MS` injected
//! into the server's workers, the gate MUST fail on p99 — proving the
//! gate detects a genuinely slow server rather than vacuously passing.
//!
//! This lives in its own integration-test binary (own process) because
//! the server reads the env var once through a `OnceLock`; setting it
//! here must not leak into the other tests' servers.

use std::time::Duration;
use tr_bencher::loadgen::{self, doc_name};
use tr_bencher::report::{self, LoadBaseline, LoadReport, ScenarioBudget};
use tr_bencher::scenario;
use tr_serve::{Catalog, Server};

#[test]
fn injected_stall_fails_the_p99_gate() {
    std::env::set_var("TR_SERVE_TEST_STALL_MS", "100");
    let sc = scenario::parse(
        "name = stall\ndocs = 1\nsections = 20\nworkers = 4\n\
         deadline_ms = 5000\nrate = 10\nduration_s = 1\n",
    )
    .unwrap();
    let mut catalog = Catalog::new();
    let text = tr_bench::sgml_workload(sc.sections, sc.seed);
    catalog.insert(&doc_name(0), tr_query::Engine::from_sgml(&text).unwrap());
    let server = Server::start(catalog, "127.0.0.1:0", sc.server_config()).unwrap();

    // Rate 10 against 4 workers stalling 100ms each: well under the
    // stalled capacity of ~40/s, so every request *succeeds slowly* —
    // the stall must surface in p99, not hide behind rejections.
    let result = loadgen::run_load(server.local_addr(), &sc, 10.0, Duration::from_secs(1));
    server.shutdown();

    let summary = report::reduce(&result, 10.0);
    assert!(summary.ok >= 8, "stall starved successes: {summary:?}");
    assert!(
        summary.latency.p99 >= 100.0,
        "p99 {}ms does not show the 100ms stall",
        summary.latency.p99
    );

    let baseline = LoadBaseline {
        calibrate_ref_secs: 0.004,
        budgets: vec![ScenarioBudget {
            scenario: "stall".to_owned(),
            p99_budget_ms: 50.0,
            error_budget: 0.01,
        }],
    };
    let report = LoadReport {
        scenario: "stall".to_owned(),
        summary,
    };
    let violations = report::check(&report, &baseline, 1.0).unwrap();
    assert!(
        violations.iter().any(|v| v.what.contains("p99")),
        "gate passed a stalled server: {violations:?}"
    );
}
