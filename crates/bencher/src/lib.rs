//! # tr-bencher — open-loop load harness for tr-serve
//!
//! tr-bench (E14) measures *closed-loop* throughput: its clients wait
//! for each reply before sending the next request, so when the server
//! slows down the offered load politely slows with it and queueing
//! never shows up in the numbers. This crate is the complementary
//! instrument: an **open-loop** generator that schedules arrivals at a
//! fixed rate against a live server, opens a fresh connection whenever
//! the pool is busy instead of blocking the schedule, and records every
//! request's fate — so tail latency under load is measured honestly,
//! coordinated-omission included (latency counts from the *scheduled*
//! arrival, not the send).
//!
//! The pieces:
//!
//! * [`scenario`] — the declarative `key = value` DSL describing a load
//!   shape: corpus size, hot/cold document ratio, query-shape mix
//!   (point / join / batch / oversize), session views, server sizing,
//!   offered rate;
//! * [`loadgen`] — the scheduler, connection pool, and per-request
//!   trace ([`loadgen::RequestRecord`], [`loadgen::Outcome`]);
//! * [`report`] — reduction to p50/p90/p95/p99/max via the shared
//!   `tr_obs::Histogram` interpolation, the `load-report.json` format,
//!   and the `LOAD_BASELINE.json` gate with calibration rescaling.
//!
//! The `tr-bencher` binary wires them into `run`, `check` (the CI
//! gate), `sweep` (the E18 latency-vs-offered-rate curve), `baseline`,
//! and `gen-corpus`. See DESIGN.md § "Load generation & tail-latency
//! gating".

#![warn(missing_docs)]

pub mod loadgen;
pub mod report;
pub mod scenario;

pub use loadgen::{arrival_schedule, build_plan, run_load, Outcome, RequestRecord, RunResult};
pub use report::{check, reduce, LoadBaseline, LoadReport, Summary, Violation};
pub use scenario::{Scenario, ScenarioError};
