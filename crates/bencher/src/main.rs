//! The `tr-bencher` CLI: open-loop load runs and the p99 CI gate.
//!
//! ```text
//! tr-bencher run   <scenario.scn> [--rate N] [--duration S] [--addr H:P] [--out PATH]
//! tr-bencher check <scenario.scn> --baseline LOAD_BASELINE.json [run flags]
//! tr-bencher sweep <scenario.scn> [--rates 25,50,..] [--duration S] [--addr H:P]
//! tr-bencher baseline <scenario.scn>... [--out PATH] [--duration S]
//! tr-bencher gen-corpus <scenario.scn> <dir> [--shards N]
//! ```
//!
//! Without `--addr`, `run`/`check`/`sweep`/`baseline` boot an
//! in-process [`tr_serve::Server`] sized by the scenario's own
//! `workers`/`queue`/`deadline_ms`/`max_frame_kb` keys, over a corpus
//! generated from its `docs`/`sections`/`seed`. With `--addr` they
//! target a live server (CI's `load-smoke` job does both: the smoke
//! scenario over TCP against a booted `trq serve`, contention
//! in-process). Exit codes: 0 pass, 1 gate failure, 2 usage/setup
//! error.

use std::net::{SocketAddr, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;
use tr_bencher::loadgen::{self, doc_name};
use tr_bencher::report::{self, LoadBaseline, LoadReport, ScenarioBudget};
use tr_bencher::scenario::{self, Scenario};
use tr_serve::{Catalog, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("tr-bencher: {e}");
            ExitCode::from(2)
        }
    }
}

fn dispatch(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "run" => cmd_run(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "baseline" => cmd_baseline(&args[1..]),
        "gen-corpus" => cmd_gen_corpus(&args[1..]),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?} (try `tr-bencher help`)")),
    }
}

fn print_usage() {
    eprintln!(
        "usage: tr-bencher <command> [args]\n\
         \n\
         commands:\n\
         \x20 run        <scenario.scn> [--rate N] [--duration S] [--addr H:P] [--out PATH]\n\
         \x20            [--trace-out PATH]\n\
         \x20            one open-loop run; writes load-report.json (and optionally a\n\
         \x20            per-request latency-trace CSV)\n\
         \x20 check      <scenario.scn> --baseline LOAD_BASELINE.json [run flags]\n\
         \x20            run + gate p99/error-rate against committed budgets (exit 1 on fail)\n\
         \x20 sweep      <scenario.scn> [--rates 25,50,100,200,400] [--duration S] [--addr H:P]\n\
         \x20            latency-vs-offered-rate table (EXPERIMENTS.md E18)\n\
         \x20 baseline   <scenario.scn>... [--out LOAD_BASELINE.json] [--duration S]\n\
         \x20            measure and write fresh budgets (~8x headroom over observed p99)\n\
         \x20 gen-corpus <scenario.scn> <dir> [--shards N]\n\
         \x20            write the scenario's corpus as .sgml files for `trq serve`;\n\
         \x20            --shards splits it round-robin into <dir>/shard0..N-1 and\n\
         \x20            prints the matching backend commands + backends.toml"
    );
}

/// Flags shared by run/check/sweep/baseline.
#[derive(Default)]
struct Flags {
    rate: Option<f64>,
    duration: Option<f64>,
    addr: Option<String>,
    out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    rates: Option<Vec<f64>>,
    shards: Option<usize>,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or(format!("{name} needs a value"))
                .map(str::to_owned)
        };
        match arg.as_str() {
            "--rate" => {
                let v = value("--rate")?;
                f.rate = Some(parse_rate(&v)?);
            }
            "--duration" => {
                let v = value("--duration")?;
                let d: f64 = v.parse().map_err(|_| format!("bad --duration {v:?}"))?;
                if !(d > 0.0 && d.is_finite()) {
                    return Err(format!("--duration must be positive, got {v}"));
                }
                f.duration = Some(d);
            }
            "--addr" => f.addr = Some(value("--addr")?),
            "--out" => f.out = Some(PathBuf::from(value("--out")?)),
            "--trace-out" => f.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--baseline" => f.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--rates" => {
                let v = value("--rates")?;
                let rates = v
                    .split(',')
                    .map(|r| parse_rate(r.trim()))
                    .collect::<Result<Vec<_>, _>>()?;
                if rates.is_empty() {
                    return Err("--rates needs at least one rate".to_owned());
                }
                f.rates = Some(rates);
            }
            "--shards" => {
                let v = value("--shards")?;
                let n: usize = v.parse().map_err(|_| format!("bad --shards {v:?}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
                f.shards = Some(n);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            _ => f.positional.push(arg.clone()),
        }
    }
    Ok(f)
}

fn parse_rate(v: &str) -> Result<f64, String> {
    let r: f64 = v.parse().map_err(|_| format!("bad rate {v:?}"))?;
    if r > 0.0 && r.is_finite() {
        Ok(r)
    } else {
        Err(format!("rate must be positive, got {v}"))
    }
}

fn load_scenario(path: &str) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    scenario::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Where a run points: a server this process booted, or a remote addr.
struct Target {
    addr: SocketAddr,
    server: Option<Server>,
}

impl Target {
    fn resolve(sc: &Scenario, addr: &Option<String>) -> Result<Target, String> {
        match addr {
            Some(a) => {
                let addr = a
                    .to_socket_addrs()
                    .map_err(|e| format!("resolving {a}: {e}"))?
                    .next()
                    .ok_or(format!("{a} resolves to nothing"))?;
                Ok(Target { addr, server: None })
            }
            None => {
                eprintln!(
                    "booting in-process server: {} docs x {} sections, {} workers, queue {}",
                    sc.docs, sc.sections, sc.workers, sc.queue
                );
                let server = Server::start(build_catalog(sc), "127.0.0.1:0", sc.server_config())
                    .map_err(|e| format!("starting server: {e}"))?;
                Ok(Target {
                    addr: server.local_addr(),
                    server: Some(server),
                })
            }
        }
    }

    fn finish(self) {
        if let Some(server) = self.server {
            server.shutdown();
        }
    }
}

fn build_catalog(sc: &Scenario) -> Catalog {
    let mut catalog = Catalog::new();
    for i in 0..sc.docs {
        let text = tr_bench::sgml_workload(sc.sections, sc.seed.wrapping_add(i as u64));
        let engine = tr_query::Engine::from_sgml(&text).expect("generated SGML parses");
        catalog.insert(&doc_name(i), engine);
    }
    catalog
}

/// Runs one scenario and prints the human summary to stderr. The raw
/// [`loadgen::RunResult`] rides along for `--trace-out`.
fn run_one(
    sc: &Scenario,
    addr: SocketAddr,
    rate: f64,
    duration: Duration,
) -> (LoadReport, loadgen::RunResult) {
    eprintln!(
        "offering {rate} req/s for {:.1}s against {addr} (scenario {}, {} arrivals)",
        duration.as_secs_f64(),
        sc.name,
        sc.arrivals.as_str()
    );
    let result = loadgen::run_load(addr, sc, rate, duration);
    let summary = report::reduce(&result, rate);
    eprintln!(
        "  {} requests over {:.2}s on {} conns: {} ok, {} rejected, {} expired, {} errors",
        summary.requests,
        summary.wall_s,
        summary.connections,
        summary.ok,
        summary.rejected,
        summary.expired,
        summary.errors
    );
    eprintln!(
        "  latency ms (ok only): p50 {:.2}  p90 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}  (sched-lag p99 {:.2})",
        summary.latency.p50,
        summary.latency.p90,
        summary.latency.p95,
        summary.latency.p99,
        summary.latency.max,
        summary.sched_lag_p99_ms
    );
    (
        LoadReport {
            scenario: sc.name.clone(),
            summary,
        },
        result,
    )
}

fn write_report(report: &LoadReport, out: &Path) -> Result<(), String> {
    std::fs::write(out, report.to_json().pretty() + "\n")
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    eprintln!("  wrote {}", out.display());
    Ok(())
}

/// Writes the per-request trace CSV when `--trace-out` was given.
fn write_trace(result: &loadgen::RunResult, out: &Option<PathBuf>) -> Result<(), String> {
    if let Some(out) = out {
        std::fs::write(out, loadgen::trace_csv(result))
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
        eprintln!(
            "  wrote {} ({} request rows)",
            out.display(),
            result.records.len()
        );
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("run needs exactly one scenario file".to_owned());
    };
    let sc = load_scenario(path)?;
    let rate = flags.rate.unwrap_or(sc.rate);
    let duration = Duration::from_secs_f64(flags.duration.unwrap_or(sc.duration_s));
    let target = Target::resolve(&sc, &flags.addr)?;
    let (report, result) = run_one(&sc, target.addr, rate, duration);
    target.finish();
    let out = flags
        .out
        .unwrap_or_else(|| PathBuf::from("load-report.json"));
    write_report(&report, &out)?;
    write_trace(&result, &flags.trace_out)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("check needs exactly one scenario file".to_owned());
    };
    let baseline_path = flags
        .baseline
        .as_deref()
        .ok_or("check needs --baseline LOAD_BASELINE.json")?;
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
    let baseline = tr_obs::parse_json(&text)
        .map_err(|e| format!("{}: {e}", baseline_path.display()))
        .and_then(|j| LoadBaseline::from_json(&j))?;
    if baseline.calibrate_ref_secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err("baseline calibrate_ref_secs must be positive".to_owned());
    }

    let sc = load_scenario(path)?;
    let rate = flags.rate.unwrap_or(sc.rate);
    let duration = Duration::from_secs_f64(flags.duration.unwrap_or(sc.duration_s));
    let target = Target::resolve(&sc, &flags.addr)?;
    let (report, result) = run_one(&sc, target.addr, rate, duration);
    target.finish();
    let out = flags
        .out
        .unwrap_or_else(|| PathBuf::from("load-report.json"));
    write_report(&report, &out)?;
    write_trace(&result, &flags.trace_out)?;

    // Same normalization as the tr-bench perf gate: a slower machine
    // raises the p99 ceiling proportionally, a faster one never lowers
    // it below the committed budget.
    let observed = tr_bench::gate::calibration_secs();
    let scale = (observed / baseline.calibrate_ref_secs).max(1.0);
    eprintln!(
        "  calibration: observed {observed:.4}s vs ref {:.4}s -> p99 budget x{scale:.2}",
        baseline.calibrate_ref_secs
    );
    let violations = report::check(&report, &baseline, scale)?;
    if violations.is_empty() {
        let budget = baseline.get(&report.scenario).expect("checked above");
        println!(
            "load gate PASS: {} p99 {:.2}ms <= {:.2}ms, error-rate {:.4} <= {:.4}",
            report.scenario,
            report.summary.latency.p99,
            budget.p99_budget_ms * scale,
            report.summary.error_rate,
            budget.error_budget
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &violations {
            println!("load gate FAIL: {} {v}", report.scenario);
        }
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_sweep(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("sweep needs exactly one scenario file".to_owned());
    };
    let sc = load_scenario(path)?;
    let rates = flags
        .rates
        .unwrap_or_else(|| vec![25.0, 50.0, 100.0, 200.0, 400.0]);
    let duration = Duration::from_secs_f64(flags.duration.unwrap_or(5.0));
    let target = Target::resolve(&sc, &flags.addr)?;
    println!("| offered/s | achieved/s | ok | rej | exp | p50 ms | p95 ms | p99 ms | max ms |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for &rate in &rates {
        let r = run_one(&sc, target.addr, rate, duration).0.summary;
        println!(
            "| {rate} | {:.0} | {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} |",
            r.achieved_rate,
            r.ok,
            r.rejected,
            r.expired,
            r.latency.p50,
            r.latency.p95,
            r.latency.p99,
            r.latency.max
        );
    }
    target.finish();
    Ok(ExitCode::SUCCESS)
}

fn cmd_baseline(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    if flags.positional.is_empty() {
        return Err("baseline needs at least one scenario file".to_owned());
    }
    if flags.addr.is_some() {
        return Err(
            "baseline always boots in-process (budgets must match the scenario's server)"
                .to_owned(),
        );
    }
    let mut budgets = Vec::new();
    for path in &flags.positional {
        let sc = load_scenario(path)?;
        let duration = Duration::from_secs_f64(flags.duration.unwrap_or(sc.duration_s));
        let target = Target::resolve(&sc, &None)?;
        let (r, _) = run_one(&sc, target.addr, sc.rate, duration);
        target.finish();
        if r.summary.ok == 0 {
            return Err(format!(
                "scenario {} produced no successes; no baseline",
                sc.name
            ));
        }
        // ~8x headroom over the quiet-run p99, floored at 40ms: wide
        // enough that CI noise passes, tight enough that an O(n^2) or a
        // serialized hot path still trips it.
        let p99_budget_ms = (r.summary.latency.p99 * 8.0).max(40.0).ceil();
        eprintln!(
            "  budget: p99 {:.2}ms -> {p99_budget_ms}ms, error 0.01",
            r.summary.latency.p99
        );
        budgets.push(ScenarioBudget {
            scenario: sc.name.clone(),
            p99_budget_ms,
            error_budget: 0.01,
        });
    }
    eprintln!("measuring calibration reference...");
    let baseline = LoadBaseline {
        calibrate_ref_secs: tr_bench::gate::calibration_secs(),
        budgets,
    };
    let out = flags
        .out
        .unwrap_or_else(|| PathBuf::from("LOAD_BASELINE.json"));
    std::fs::write(&out, baseline.to_json().pretty() + "\n")
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    eprintln!("wrote {}", out.display());
    Ok(ExitCode::SUCCESS)
}

fn cmd_gen_corpus(args: &[String]) -> Result<ExitCode, String> {
    let flags = parse_flags(args)?;
    let [path, dir] = flags.positional.as_slice() else {
        return Err("gen-corpus needs a scenario file and a target directory".to_owned());
    };
    let sc = load_scenario(path)?;
    let dir = PathBuf::from(dir);
    match flags.shards {
        None => gen_corpus_flat(&sc, &dir),
        Some(shards) => gen_corpus_sharded(&sc, &dir, shards),
    }
}

fn gen_corpus_flat(sc: &Scenario, dir: &Path) -> Result<ExitCode, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    for i in 0..sc.docs {
        let text = tr_bench::sgml_workload(sc.sections, sc.seed.wrapping_add(i as u64));
        let file = dir.join(format!("{}.sgml", doc_name(i)));
        std::fs::write(&file, &text).map_err(|e| format!("writing {}: {e}", file.display()))?;
        eprintln!("wrote {} ({} bytes)", file.display(), text.len());
    }
    // `trq serve` catalogs by file stem, so doc names line up with the
    // plan's doc0..docN-1 targets.
    println!(
        "corpus ready; matching server:\n  trq serve {} --addr 127.0.0.1:7979 --workers {} --queue {} --deadline-ms {} --max-frame-bytes {} --max-conns 256",
        dir.display(),
        sc.workers,
        sc.queue,
        sc.deadline_ms,
        sc.max_frame_kb * 1024
    );
    Ok(ExitCode::SUCCESS)
}

/// The cluster layout: documents round-robined into `shard0..N-1`
/// subdirectories, plus a ready-to-use `backends.toml` wired to ports
/// 7980..7980+N-1 so `trq serve --route` can front the shards. Doc
/// names stay the plan's `doc0..docN-1` regardless of which shard holds
/// each file — the router learns placement from each backend's
/// `list-docs`, not from the layout.
fn gen_corpus_sharded(sc: &Scenario, dir: &Path, shards: usize) -> Result<ExitCode, String> {
    let mut shard_bytes = vec![0u64; shards];
    for s in 0..shards {
        let sub = dir.join(format!("shard{s}"));
        std::fs::create_dir_all(&sub).map_err(|e| format!("creating {}: {e}", sub.display()))?;
    }
    for i in 0..sc.docs {
        let text = tr_bench::sgml_workload(sc.sections, sc.seed.wrapping_add(i as u64));
        let shard = i % shards;
        let file = dir.join(format!("shard{shard}/{}.sgml", doc_name(i)));
        std::fs::write(&file, &text).map_err(|e| format!("writing {}: {e}", file.display()))?;
        shard_bytes[shard] += text.len() as u64;
        eprintln!("wrote {} ({} bytes)", file.display(), text.len());
    }
    let toml: String = (0..shards)
        .map(|s| {
            format!(
                "[[backend]]\nname = \"shard{s}\"\naddr = \"127.0.0.1:{}\"\n",
                7980 + s
            )
        })
        .collect::<Vec<_>>()
        .join("\n");
    let toml_path = dir.join("backends.toml");
    std::fs::write(&toml_path, &toml)
        .map_err(|e| format!("writing {}: {e}", toml_path.display()))?;
    eprintln!("wrote {}", toml_path.display());
    let total: u64 = shard_bytes.iter().sum();
    println!(
        "sharded corpus ready: {} docs, {} bytes across {shards} shard(s); matching cluster:",
        sc.docs, total
    );
    for (s, bytes) in shard_bytes.iter().enumerate() {
        println!(
            "  trq serve {}/shard{s} --addr 127.0.0.1:{} --workers {} --queue {} --deadline-ms {} --max-frame-bytes {} --max-conns 256  # {bytes} bytes",
            dir.display(),
            7980 + s,
            sc.workers,
            sc.queue,
            sc.deadline_ms,
            sc.max_frame_kb * 1024
        );
    }
    println!(
        "  trq serve --route {} --addr 127.0.0.1:7979",
        toml_path.display()
    );
    Ok(ExitCode::SUCCESS)
}
