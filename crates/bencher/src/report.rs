//! Trace reduction, the `load-report.json` format, and the baseline gate.
//!
//! The reducer folds a run's [`RequestRecord`]s into tail-latency
//! percentiles via `tr_obs::Histogram` (power-of-two buckets with
//! sub-bucket interpolation, the same machinery the server's own
//! `serve.queue_wait_ns` uses). Two deliberate choices:
//!
//! * **percentiles cover `Ok` outcomes only.** A stalled server sheds
//!   most of its load with fast `rejected` frames; folding those
//!   near-zero latencies into the distribution would *lower* p99
//!   exactly when the server is broken. Failures are gated separately
//!   through `error_rate`.
//! * **the gate compares against absolute budgets, not a recorded
//!   measurement.** CI machines vary wildly run to run; a budget with
//!   ~8× headroom over a quiet local run catches real regressions
//!   (a lock on the hot path, an accidental O(n²)) without flaking.
//!   Budgets are additionally rescaled by the shared tr-bench
//!   calibration workload, so a slower machine raises its own ceiling.

use crate::loadgen::{Outcome, RequestRecord, RunResult};
use tr_obs::{Histogram, Json};

/// Version stamp in both `load-report.json` and `LOAD_BASELINE.json`;
/// bump when the format or the workload semantics change.
pub const LOAD_SUITE_VERSION: u64 = 1;

/// Latency percentiles in milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile — the gated number.
    pub p99: f64,
    /// Exact maximum (not bucketed).
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Percentiles {
    /// Reduces a histogram of nanosecond samples to milliseconds.
    pub fn from_ns_histogram(h: &Histogram) -> Percentiles {
        let ms = 1e-6;
        Percentiles {
            p50: h.quantile_interp(0.50) * ms,
            p90: h.quantile_interp(0.90) * ms,
            p95: h.quantile_interp(0.95) * ms,
            p99: h.quantile_interp(0.99) * ms,
            max: h.max() as f64 * ms,
            mean: h.mean() * ms,
        }
    }

    fn to_json(self) -> Json {
        Json::obj()
            .with("p50", Json::from(round3(self.p50)))
            .with("p90", Json::from(round3(self.p90)))
            .with("p95", Json::from(round3(self.p95)))
            .with("p99", Json::from(round3(self.p99)))
            .with("max", Json::from(round3(self.max)))
            .with("mean", Json::from(round3(self.mean)))
    }

    fn from_json(j: &Json) -> Option<Percentiles> {
        Some(Percentiles {
            p50: j.get("p50")?.as_f64()?,
            p90: j.get("p90")?.as_f64()?,
            p95: j.get("p95")?.as_f64()?,
            p99: j.get("p99")?.as_f64()?,
            max: j.get("max")?.as_f64()?,
            mean: j.get("mean")?.as_f64()?,
        })
    }
}

/// Everything the report and the gate need from one run.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Scheduled requests.
    pub requests: u64,
    /// Expected replies (including expected `too_large` on oversize probes).
    pub ok: u64,
    /// Admission refusals.
    pub rejected: u64,
    /// Deadline expiries.
    pub expired: u64,
    /// Unexpected server errors + transport failures.
    pub errors: u64,
    /// First arrival → last completion, seconds.
    pub wall_s: f64,
    /// The rate the schedule offered (requests/second).
    pub offered_rate: f64,
    /// `ok / wall` — what the server actually absorbed.
    pub achieved_rate: f64,
    /// `(rejected + expired + errors) / requests`.
    pub error_rate: f64,
    /// Connections the generator opened.
    pub connections: u64,
    /// Scheduled-arrival → completion, `Ok` outcomes only.
    pub latency: Percentiles,
    /// Send → first reply byte, `Ok` outcomes only.
    pub first_byte: Percentiles,
    /// p99 of generator send lag — open-loop health, not server speed.
    pub sched_lag_p99_ms: f64,
}

/// Folds a run into a [`Summary`] at the given offered rate.
pub fn reduce(result: &RunResult, offered_rate: f64) -> Summary {
    summarize(
        &result.records,
        offered_rate,
        result.wall.as_secs_f64(),
        result.connections,
    )
}

/// [`reduce`] on bare records, for tests and replay.
pub fn summarize(
    records: &[RequestRecord],
    offered_rate: f64,
    wall_s: f64,
    connections: u64,
) -> Summary {
    let latency = Histogram::default();
    let first_byte = Histogram::default();
    let lag = Histogram::default();
    let (mut ok, mut rejected, mut expired, mut errors) = (0u64, 0u64, 0u64, 0u64);
    for r in records {
        lag.record(r.sched_lag_ns());
        match r.outcome {
            Outcome::Ok => {
                ok += 1;
                latency.record(r.latency_ns());
                first_byte.record(r.first_byte_latency_ns());
            }
            Outcome::Rejected => rejected += 1,
            Outcome::DeadlineExpired => expired += 1,
            Outcome::Error | Outcome::Transport => errors += 1,
        }
    }
    let requests = records.len() as u64;
    Summary {
        requests,
        ok,
        rejected,
        expired,
        errors,
        wall_s,
        offered_rate,
        achieved_rate: if wall_s > 0.0 {
            ok as f64 / wall_s
        } else {
            0.0
        },
        error_rate: if requests > 0 {
            (rejected + expired + errors) as f64 / requests as f64
        } else {
            0.0
        },
        connections,
        latency: Percentiles::from_ns_histogram(&latency),
        first_byte: Percentiles::from_ns_histogram(&first_byte),
        sched_lag_p99_ms: lag.quantile_interp(0.99) * 1e-6,
    }
}

/// A summary tagged with its scenario — the `load-report.json` payload.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadReport {
    /// The scenario that produced it.
    pub scenario: String,
    /// The reduced run.
    pub summary: Summary,
}

impl LoadReport {
    /// Serializes to the `load-report.json` shape.
    pub fn to_json(&self) -> Json {
        let s = &self.summary;
        Json::obj()
            .with("version", Json::from(LOAD_SUITE_VERSION))
            .with("scenario", Json::from(self.scenario.as_str()))
            .with("requests", Json::from(s.requests))
            .with(
                "outcomes",
                Json::obj()
                    .with("ok", Json::from(s.ok))
                    .with("rejected", Json::from(s.rejected))
                    .with("deadline_expired", Json::from(s.expired))
                    .with("errors", Json::from(s.errors)),
            )
            .with("wall_s", Json::from(round3(s.wall_s)))
            .with("offered_rate", Json::from(round3(s.offered_rate)))
            .with("achieved_rate", Json::from(round3(s.achieved_rate)))
            .with("error_rate", Json::from(round6(s.error_rate)))
            .with("connections", Json::from(s.connections))
            .with("latency_ms", s.latency.to_json())
            .with("first_byte_ms", s.first_byte.to_json())
            .with("sched_lag_p99_ms", Json::from(round3(s.sched_lag_p99_ms)))
    }

    /// Parses what [`LoadReport::to_json`] wrote.
    pub fn from_json(j: &Json) -> Result<LoadReport, String> {
        let version = j
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("report missing version")?;
        if version != LOAD_SUITE_VERSION {
            return Err(format!(
                "report version {version} != supported {LOAD_SUITE_VERSION}"
            ));
        }
        let f = |k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or(format!("missing {k}"))
        };
        let u = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or(format!("missing {k}"))
        };
        let outcomes = j.get("outcomes").ok_or("missing outcomes")?;
        let ou = |k: &str| {
            outcomes
                .get(k)
                .and_then(Json::as_u64)
                .ok_or(format!("missing outcomes.{k}"))
        };
        Ok(LoadReport {
            scenario: j
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or("missing scenario")?
                .to_owned(),
            summary: Summary {
                requests: u("requests")?,
                ok: ou("ok")?,
                rejected: ou("rejected")?,
                expired: ou("deadline_expired")?,
                errors: ou("errors")?,
                wall_s: f("wall_s")?,
                offered_rate: f("offered_rate")?,
                achieved_rate: f("achieved_rate")?,
                error_rate: f("error_rate")?,
                connections: u("connections")?,
                latency: j
                    .get("latency_ms")
                    .and_then(Percentiles::from_json)
                    .ok_or("missing latency_ms")?,
                first_byte: j
                    .get("first_byte_ms")
                    .and_then(Percentiles::from_json)
                    .ok_or("missing first_byte_ms")?,
                sched_lag_p99_ms: f("sched_lag_p99_ms")?,
            },
        })
    }
}

/// One scenario's budgets in `LOAD_BASELINE.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioBudget {
    /// Which scenario this gates.
    pub scenario: String,
    /// Ceiling for latency p99 (ms) on the reference machine; scaled
    /// up by calibration on slower ones.
    pub p99_budget_ms: f64,
    /// Ceiling for `error_rate` (not calibration-scaled: shedding is a
    /// capacity property the budget already prices in).
    pub error_budget: f64,
}

/// The committed gate file: a calibration reference plus per-scenario
/// budgets.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadBaseline {
    /// `tr_bench::gate::calibration_secs()` on the machine that set the
    /// budgets.
    pub calibrate_ref_secs: f64,
    /// The budgets.
    pub budgets: Vec<ScenarioBudget>,
}

impl LoadBaseline {
    /// Looks up a scenario's budget.
    pub fn get(&self, scenario: &str) -> Option<&ScenarioBudget> {
        self.budgets.iter().find(|b| b.scenario == scenario)
    }

    /// Serializes to the `LOAD_BASELINE.json` shape.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("version", Json::from(LOAD_SUITE_VERSION))
            .with("calibrate_ref_secs", Json::from(self.calibrate_ref_secs))
            .with(
                "scenarios",
                Json::Arr(
                    self.budgets
                        .iter()
                        .map(|b| {
                            Json::obj()
                                .with("scenario", Json::from(b.scenario.as_str()))
                                .with("p99_budget_ms", Json::from(b.p99_budget_ms))
                                .with("error_budget", Json::from(b.error_budget))
                        })
                        .collect(),
                ),
            )
    }

    /// Parses what [`LoadBaseline::to_json`] wrote.
    pub fn from_json(j: &Json) -> Result<LoadBaseline, String> {
        let version = j
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("baseline missing version")?;
        if version != LOAD_SUITE_VERSION {
            return Err(format!(
                "baseline version {version} != supported {LOAD_SUITE_VERSION} \
                 (regenerate with `tr-bencher baseline`)"
            ));
        }
        let budgets = j
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or("baseline missing scenarios")?
            .iter()
            .map(|b| {
                Ok(ScenarioBudget {
                    scenario: b
                        .get("scenario")
                        .and_then(Json::as_str)
                        .ok_or("budget missing scenario")?
                        .to_owned(),
                    p99_budget_ms: b
                        .get("p99_budget_ms")
                        .and_then(Json::as_f64)
                        .ok_or("budget missing p99_budget_ms")?,
                    error_budget: b
                        .get("error_budget")
                        .and_then(Json::as_f64)
                        .ok_or("budget missing error_budget")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(LoadBaseline {
            calibrate_ref_secs: j
                .get("calibrate_ref_secs")
                .and_then(Json::as_f64)
                .ok_or("baseline missing calibrate_ref_secs")?,
            budgets,
        })
    }
}

/// One gate failure.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which budget was blown.
    pub what: String,
    /// The (scaled) ceiling.
    pub limit: f64,
    /// What the run measured.
    pub actual: f64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.3} exceeds budget {:.3}",
            self.what, self.actual, self.limit
        )
    }
}

/// Gates `report` against `baseline`. `scale` is the calibration ratio
/// (`observed / reference`, clamped to ≥ 1 so a fast machine can't
/// loosen the gate); it multiplies the p99 budget only. Returns the
/// violations (empty = pass) or an error when the baseline has no
/// budget for the scenario.
pub fn check(
    report: &LoadReport,
    baseline: &LoadBaseline,
    scale: f64,
) -> Result<Vec<Violation>, String> {
    let budget = baseline.get(&report.scenario).ok_or_else(|| {
        format!(
            "baseline has no budget for scenario {:?} (run `tr-bencher baseline` to add it)",
            report.scenario
        )
    })?;
    let s = &report.summary;
    let mut violations = Vec::new();
    if s.ok == 0 {
        // No successes means the p99 is computed over nothing; that is
        // a failure in itself, not a vacuous pass.
        violations.push(Violation {
            what: "ok-count (no successful requests; p99 undefined)".to_owned(),
            limit: 1.0,
            actual: 0.0,
        });
        return Ok(violations);
    }
    let p99_limit = budget.p99_budget_ms * scale.max(1.0);
    if s.latency.p99 > p99_limit {
        violations.push(Violation {
            what: "latency p99 (ms)".to_owned(),
            limit: p99_limit,
            actual: s.latency.p99,
        });
    }
    if s.error_rate > budget.error_budget {
        violations.push(Violation {
            what: "error-rate".to_owned(),
            limit: budget.error_budget,
            actual: s.error_rate,
        });
    }
    Ok(violations)
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

fn round6(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::Outcome;

    fn rec(scheduled: u64, done: u64, outcome: Outcome) -> RequestRecord {
        RequestRecord {
            scheduled_ns: scheduled,
            sent_ns: scheduled,
            first_byte_ns: done,
            done_ns: done,
            outcome,
        }
    }

    fn report(summary: Summary) -> LoadReport {
        LoadReport {
            scenario: "t".to_owned(),
            summary,
        }
    }

    fn baseline(p99_ms: f64, err: f64) -> LoadBaseline {
        LoadBaseline {
            calibrate_ref_secs: 0.004,
            budgets: vec![ScenarioBudget {
                scenario: "t".to_owned(),
                p99_budget_ms: p99_ms,
                error_budget: err,
            }],
        }
    }

    #[test]
    fn percentiles_cover_ok_outcomes_only() {
        // 90 slow successes at 8ms, 910 instant rejections. If the
        // rejections leaked into the distribution, p99 would be ~0.
        let mut records: Vec<_> = (0..90)
            .map(|i| rec(i, i + 8_000_000, Outcome::Ok))
            .collect();
        records.extend((0..910).map(|i| rec(1000 + i, 1000 + i, Outcome::Rejected)));
        let s = summarize(&records, 100.0, 1.0, 4);
        assert_eq!(s.ok, 90);
        assert_eq!(s.rejected, 910);
        assert!(s.latency.p50 > 4.0, "p50 {} should be ~8ms", s.latency.p50);
        assert!((s.error_rate - 0.91).abs() < 1e-9);
    }

    #[test]
    fn error_rate_counts_every_non_ok_outcome() {
        let records = vec![
            rec(0, 1, Outcome::Ok),
            rec(1, 2, Outcome::Rejected),
            rec(2, 3, Outcome::DeadlineExpired),
            rec(3, 4, Outcome::Error),
            rec(4, 5, Outcome::Transport),
        ];
        let s = summarize(&records, 5.0, 1.0, 1);
        assert_eq!((s.ok, s.rejected, s.expired, s.errors), (1, 1, 1, 2));
        assert!((s.error_rate - 0.8).abs() < 1e-9);
        assert!((s.achieved_rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn report_round_trips_through_json() {
        let records: Vec<_> = (0..500)
            .map(|i| rec(i * 1000, i * 1000 + 3_000_000 + i, Outcome::Ok))
            .collect();
        let r = report(summarize(&records, 250.0, 2.0, 7));
        let text = r.to_json().pretty();
        let back = LoadReport::from_json(&tr_obs::parse_json(&text).unwrap()).unwrap();
        assert_eq!(back.scenario, r.scenario);
        assert_eq!(back.summary.requests, 500);
        assert_eq!(back.summary.connections, 7);
        // Floats were rounded for the file; stay within that rounding.
        assert!((back.summary.latency.p99 - r.summary.latency.p99).abs() < 1e-3);
    }

    #[test]
    fn baseline_round_trips_and_rejects_wrong_version() {
        let b = baseline(40.0, 0.01);
        let back = LoadBaseline::from_json(&b.to_json()).unwrap();
        assert_eq!(back, b);
        let mut j = b.to_json();
        j.set("version", Json::from(99u64));
        assert!(LoadBaseline::from_json(&j).unwrap_err().contains("version"));
    }

    #[test]
    fn gate_passes_within_budget_and_fails_beyond_it() {
        let records: Vec<_> = (0..100)
            .map(|i| rec(i, i + 2_000_000, Outcome::Ok))
            .collect();
        let r = report(summarize(&records, 100.0, 1.0, 1));
        assert!(check(&r, &baseline(40.0, 0.01), 1.0).unwrap().is_empty());
        let v = check(&r, &baseline(0.001, 0.01), 1.0).unwrap();
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("p99"));
    }

    #[test]
    fn gate_scales_p99_but_never_tightens() {
        let records: Vec<_> = (0..100)
            .map(|i| rec(i, i + 8_000_000, Outcome::Ok))
            .collect();
        let r = report(summarize(&records, 100.0, 1.0, 1));
        // Budget 5ms fails at scale 1 but passes on a 2× slower machine.
        assert!(!check(&r, &baseline(5.0, 0.01), 1.0).unwrap().is_empty());
        assert!(check(&r, &baseline(5.0, 0.01), 2.5).unwrap().is_empty());
        // A 4× *faster* machine must not shrink the ceiling below 5ms:
        // 2ms actual stays passing at scale 0.25.
        let fast: Vec<_> = (0..100)
            .map(|i| rec(i, i + 2_000_000, Outcome::Ok))
            .collect();
        let rf = report(summarize(&fast, 100.0, 1.0, 1));
        assert!(check(&rf, &baseline(5.0, 0.01), 0.25).unwrap().is_empty());
    }

    #[test]
    fn gate_fails_on_error_rate_and_on_zero_successes() {
        let mut records: Vec<_> = (0..90)
            .map(|i| rec(i, i + 1_000_000, Outcome::Ok))
            .collect();
        records.extend((0..10).map(|i| rec(90 + i, 90 + i, Outcome::Rejected)));
        let r = report(summarize(&records, 100.0, 1.0, 1));
        let v = check(&r, &baseline(100.0, 0.01), 1.0).unwrap();
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("error-rate"));

        let all_rejected: Vec<_> = (0..10).map(|i| rec(i, i, Outcome::Rejected)).collect();
        let r = report(summarize(&all_rejected, 10.0, 1.0, 1));
        let v = check(&r, &baseline(100.0, 1.0), 1.0).unwrap();
        assert_eq!(v.len(), 1);
        assert!(v[0].what.contains("no successful requests"));
    }

    #[test]
    fn unknown_scenario_is_an_error_not_a_pass() {
        let records = vec![rec(0, 1, Outcome::Ok)];
        let mut r = report(summarize(&records, 1.0, 1.0, 1));
        r.scenario = "other".to_owned();
        assert!(check(&r, &baseline(1.0, 1.0), 1.0).is_err());
    }
}
