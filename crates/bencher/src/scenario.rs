//! The scenario DSL: a declarative description of one load shape.
//!
//! A scenario file is plain text, one `key = value` per line, `#` to end
//! of line is a comment, blank lines ignored. Every key has a default, so
//! a scenario states only what it cares about; unknown keys, repeated or
//! malformed values, and out-of-range settings are rejected with the line
//! number — never a panic — so a typo in CI fails loudly instead of
//! silently benchmarking the wrong thing.
//!
//! ```text
//! name         = smoke
//! docs         = 4            # catalog size
//! sections     = 300          # sgml_workload sections per doc
//! hot_fraction = 0.8          # P(request hits doc0)
//! mix.point    = 6            # relative weights, not percentages
//! mix.join     = 2
//! rate         = 150          # offered arrivals per second
//! duration_s   = 10
//! arrivals     = poisson      # uniform (default) or poisson bursts
//! ```
//!
//! The same struct also describes the *server* the scenario expects
//! (workers, queue depth, deadline, frame cap), so `tr-bencher run` can
//! boot a faithfully configured in-process server when `--addr` is not
//! given, and `gen-corpus` can print the matching `trq serve` flags.

use std::fmt;
use std::time::Duration;
use tr_serve::ServerConfig;

/// The arrival process shaping the open-loop schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Arrivals {
    /// Evenly spaced arrivals at exactly `i / rate` seconds — zero
    /// run-to-run variance, the right default for the CI latency gate.
    #[default]
    Uniform,
    /// Memoryless (exponential inter-arrival) gaps at the same mean
    /// rate, drawn deterministically from the scenario seed. Bursty the
    /// way real traffic is: the same offered load now arrives in clumps
    /// that probe queue depth, which uniform spacing never does.
    Poisson,
}

impl Arrivals {
    /// The scenario-file spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Arrivals::Uniform => "uniform",
            Arrivals::Poisson => "poisson",
        }
    }
}

/// Relative weights of the four request shapes. Weights are ratios, not
/// percentages: `6/2/1/1` and `60/20/10/10` describe the same mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Single `name matching "word"` queries (cheap, cache-friendly).
    pub point: u32,
    /// Structural joins (`containing` / `within` / `intersect`).
    pub join: u32,
    /// `batch` frames carrying three queries under one shared plan.
    pub batch: u32,
    /// Deliberately oversize frames the server must answer `too_large`.
    pub oversize: u32,
}

impl Mix {
    /// Sum of the weights; zero means the scenario generates nothing.
    pub fn total(&self) -> u32 {
        self.point + self.join + self.batch + self.oversize
    }
}

/// One parsed scenario: corpus shape, request mix, server sizing, and
/// the offered load. See the module docs for the file format.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Scenario name; keys reports and baseline budgets.
    pub name: String,
    /// Catalog documents (`doc0`..`docN-1`), doc0 is the hot one.
    pub docs: usize,
    /// `tr_bench::sgml_workload` sections per document.
    pub sections: usize,
    /// Seed for corpus generation and the request plan.
    pub seed: u64,
    /// Probability a request targets `doc0`; the rest spread uniformly.
    pub hot_fraction: f64,
    /// Request-shape weights.
    pub mix: Mix,
    /// When true, half the point queries go through a per-connection
    /// session view (`define-view` once per connection per doc).
    pub session_views: bool,
    /// Server worker threads.
    pub workers: usize,
    /// Server admission-queue capacity.
    pub queue: usize,
    /// Server per-request deadline.
    pub deadline_ms: u64,
    /// Server frame cap in KiB (also sizes the oversize probes).
    pub max_frame_kb: usize,
    /// Default offered rate (arrivals/second); `--rate` overrides.
    pub rate: f64,
    /// Default run length in seconds; `--duration` overrides.
    pub duration_s: f64,
    /// Arrival process: `uniform` (default) or `poisson`.
    pub arrivals: Arrivals,
}

impl Default for Scenario {
    fn default() -> Scenario {
        Scenario {
            name: "unnamed".to_owned(),
            docs: 2,
            sections: 200,
            seed: 42,
            hot_fraction: 0.8,
            mix: Mix {
                point: 6,
                join: 2,
                batch: 1,
                oversize: 0,
            },
            session_views: false,
            workers: 4,
            queue: 64,
            deadline_ms: 1000,
            max_frame_kb: 64,
            rate: 100.0,
            duration_s: 10.0,
            arrivals: Arrivals::Uniform,
        }
    }
}

impl Scenario {
    /// The [`ServerConfig`] this scenario expects. `max_connections` is
    /// set high: an open-loop generator opens fresh connections when the
    /// pool is busy, and refusing those at the server would measure the
    /// connection cap, not the query path.
    pub fn server_config(&self) -> ServerConfig {
        ServerConfig {
            workers: self.workers,
            queue_capacity: self.queue,
            max_connections: 1024,
            max_frame_bytes: self.max_frame_kb * 1024,
            deadline: Duration::from_millis(self.deadline_ms),
            ..ServerConfig::default()
        }
    }

    /// Serializes back to the file format; `parse(to_text(s)) == s`.
    pub fn to_text(&self) -> String {
        format!(
            "name = {}\n\
             docs = {}\n\
             sections = {}\n\
             seed = {}\n\
             hot_fraction = {}\n\
             mix.point = {}\n\
             mix.join = {}\n\
             mix.batch = {}\n\
             mix.oversize = {}\n\
             session_views = {}\n\
             workers = {}\n\
             queue = {}\n\
             deadline_ms = {}\n\
             max_frame_kb = {}\n\
             rate = {}\n\
             duration_s = {}\n\
             arrivals = {}\n",
            self.name,
            self.docs,
            self.sections,
            self.seed,
            self.hot_fraction,
            self.mix.point,
            self.mix.join,
            self.mix.batch,
            self.mix.oversize,
            self.session_views,
            self.workers,
            self.queue,
            self.deadline_ms,
            self.max_frame_kb,
            self.rate,
            self.duration_s,
            self.arrivals.as_str(),
        )
    }
}

/// Why a scenario file was rejected; `line` is 1-based, 0 for whole-file
/// (validation) errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based source line, or 0 for cross-field validation failures.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "invalid scenario: {}", self.message)
        } else {
            write!(f, "scenario line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Parses and validates a scenario file. Total: every input either
/// yields a valid [`Scenario`] or a [`ScenarioError`] — no panics.
pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
    let mut sc = Scenario::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let err = |message: String| ScenarioError {
            line: line_no,
            message,
        };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(format!("expected `key = value`, got {line:?}")))?;
        let (key, value) = (key.trim(), value.trim());
        if value.is_empty() {
            return Err(err(format!("key {key:?} has an empty value")));
        }
        match key {
            "name" => sc.name = value.to_owned(),
            "docs" => sc.docs = parse_num(key, value).map_err(err)?,
            "sections" => sc.sections = parse_num(key, value).map_err(err)?,
            "seed" => sc.seed = parse_num(key, value).map_err(err)?,
            "hot_fraction" => sc.hot_fraction = parse_float(key, value).map_err(err)?,
            "mix.point" => sc.mix.point = parse_num(key, value).map_err(err)?,
            "mix.join" => sc.mix.join = parse_num(key, value).map_err(err)?,
            "mix.batch" => sc.mix.batch = parse_num(key, value).map_err(err)?,
            "mix.oversize" => sc.mix.oversize = parse_num(key, value).map_err(err)?,
            "session_views" => {
                sc.session_views = match value {
                    "true" => true,
                    "false" => false,
                    _ => {
                        return Err(err(format!(
                            "session_views must be true/false, got {value:?}"
                        )))
                    }
                }
            }
            "workers" => sc.workers = parse_num(key, value).map_err(err)?,
            "queue" => sc.queue = parse_num(key, value).map_err(err)?,
            "deadline_ms" => sc.deadline_ms = parse_num(key, value).map_err(err)?,
            "max_frame_kb" => sc.max_frame_kb = parse_num(key, value).map_err(err)?,
            "rate" => sc.rate = parse_float(key, value).map_err(err)?,
            "duration_s" => sc.duration_s = parse_float(key, value).map_err(err)?,
            "arrivals" => {
                sc.arrivals = match value {
                    "uniform" => Arrivals::Uniform,
                    "poisson" => Arrivals::Poisson,
                    _ => {
                        return Err(err(format!(
                            "arrivals must be uniform/poisson, got {value:?}"
                        )))
                    }
                }
            }
            _ => return Err(err(format!("unknown key {key:?}"))),
        }
    }
    validate(&sc).map_err(|message| ScenarioError { line: 0, message })?;
    Ok(sc)
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("key {key:?}: not a valid number: {value:?}"))
}

fn parse_float(key: &str, value: &str) -> Result<f64, String> {
    let v: f64 = value
        .parse()
        .map_err(|_| format!("key {key:?}: not a valid number: {value:?}"))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(format!("key {key:?}: must be finite, got {value:?}"))
    }
}

/// Cross-field sanity; bounds are generous but finite so a fat-fingered
/// scenario cannot ask the harness for a terabyte corpus or a 0-rate
/// infinite run.
fn validate(sc: &Scenario) -> Result<(), String> {
    if sc.name.is_empty() || sc.name.contains(char::is_whitespace) {
        return Err(format!(
            "name must be non-empty without whitespace, got {:?}",
            sc.name
        ));
    }
    check_range("docs", sc.docs, 1, 64)?;
    check_range("sections", sc.sections, 1, 100_000)?;
    if !(0.0..=1.0).contains(&sc.hot_fraction) {
        return Err(format!(
            "hot_fraction must be in [0, 1], got {}",
            sc.hot_fraction
        ));
    }
    if sc.mix.total() == 0 {
        return Err("mix weights sum to zero; nothing to send".to_owned());
    }
    check_range("workers", sc.workers, 1, 256)?;
    check_range("queue", sc.queue, 1, 1 << 20)?;
    check_range("deadline_ms", sc.deadline_ms as usize, 1, 3_600_000)?;
    check_range("max_frame_kb", sc.max_frame_kb, 1, 1 << 20)?;
    if !(sc.rate > 0.0 && sc.rate <= 1e6) {
        return Err(format!("rate must be in (0, 1e6], got {}", sc.rate));
    }
    if !(sc.duration_s > 0.0 && sc.duration_s <= 86_400.0) {
        return Err(format!(
            "duration_s must be in (0, 86400], got {}",
            sc.duration_s
        ));
    }
    Ok(())
}

fn check_range(key: &str, v: usize, lo: usize, hi: usize) -> Result<(), String> {
    if (lo..=hi).contains(&v) {
        Ok(())
    } else {
        Err(format!("{key} must be in [{lo}, {hi}], got {v}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_round_trip() {
        let sc = Scenario::default();
        assert_eq!(parse(&sc.to_text()).unwrap(), sc);
    }

    #[test]
    fn poisson_arrivals_round_trip() {
        let sc = parse("arrivals = poisson\n").unwrap();
        assert_eq!(sc.arrivals, Arrivals::Poisson);
        assert_eq!(parse(&sc.to_text()).unwrap(), sc);
    }

    #[test]
    fn comments_blanks_and_overrides() {
        let sc = parse(
            "# a comment\n\
             \n\
             name = hot   # trailing comment\n\
             rate = 250.5\n\
             mix.oversize = 3\n\
             session_views = true\n",
        )
        .unwrap();
        assert_eq!(sc.name, "hot");
        assert_eq!(sc.rate, 250.5);
        assert_eq!(sc.mix.oversize, 3);
        assert!(sc.session_views);
        // Untouched keys keep their defaults.
        assert_eq!(sc.docs, Scenario::default().docs);
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        let cases: &[(&str, &str)] = &[
            ("rate 100", "expected `key = value`"),
            ("bogus = 1", "unknown key"),
            ("docs = many", "not a valid number"),
            ("docs =", "empty value"),
            ("rate = inf", "must be finite"),
            ("rate = -3", "rate must be in"),
            ("docs = 0", "docs must be in"),
            ("hot_fraction = 1.5", "hot_fraction must be in"),
            ("session_views = yes", "must be true/false"),
            ("arrivals = bursty", "must be uniform/poisson"),
            ("name = two words", "without whitespace"),
            (
                "mix.point = 0\nmix.join = 0\nmix.batch = 0\nmix.oversize = 0",
                "sum to zero",
            ),
            ("duration_s = 1e9", "duration_s must be in"),
        ];
        for (text, needle) in cases {
            let e = parse(text).expect_err(text);
            assert!(
                e.to_string().contains(needle),
                "{text:?}: error {e} missing {needle:?}"
            );
        }
    }

    #[test]
    fn error_carries_the_line_number() {
        let e = parse("name = ok\n\nrate = fast\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn server_config_mirrors_the_scenario() {
        let sc = parse("workers = 2\nqueue = 32\ndeadline_ms = 500\nmax_frame_kb = 16\n").unwrap();
        let cfg = sc.server_config();
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.queue_capacity, 32);
        assert_eq!(cfg.max_frame_bytes, 16 * 1024);
        assert_eq!(cfg.deadline, Duration::from_millis(500));
    }
}
