//! Open-loop load generation against a live tr-serve instance.
//!
//! The generator is *open-loop*: request i is due at `start + i/rate`
//! regardless of whether earlier requests have been answered. When the
//! due time arrives, an idle pooled connection is reused if one exists;
//! otherwise a **fresh connection is opened** rather than waiting for
//! one to free up. A closed-loop driver (tr-bench's E14) silently slows
//! its arrival rate to match the server and thereby hides queueing — the
//! classic coordinated-omission bias. Here latency is measured from the
//! *scheduled* arrival, so a stalled server shows up as a growing tail
//! instead of a shrinking request count.
//!
//! Each request yields one [`RequestRecord`] with nanosecond offsets
//! (scheduled, sent, first reply byte, done) and an [`Outcome`]; the
//! reduction to percentiles lives in [`crate::report`].

use crate::scenario::{Arrivals, Scenario};
use rand::prelude::*;
use std::collections::HashSet;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tr_obs::Json;
use tr_serve::{Client, ClientError, ReplyTiming};

/// The vocabulary `tr_bench::sgml_workload` salts documents with; point
/// queries draw from the same list so hit counts are realistic.
const WORDS: [&str; 12] = [
    "the", "region", "algebra", "text", "query", "index", "tree", "node", "pattern", "search",
    "word", "engine",
];

/// Name of the per-connection session view used when
/// `Scenario::session_views` is on.
pub const VIEW_NAME: &str = "bench_hot";
/// Its definition (annotated sections — selective but non-trivial).
pub const VIEW_DEF: &str = "sec containing note";

/// Catalog name of document `i` — shared by the in-process booter,
/// `gen-corpus` (which writes `doc{i}.sgml`, cataloged by file stem),
/// and the plan builder.
pub fn doc_name(i: usize) -> String {
    format!("doc{i}")
}

/// One request the plan will send.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkItem {
    /// A single `query` frame. When `via_view` is set the query text
    /// references [`VIEW_NAME`], which the connection defines (untimed)
    /// on first use for that doc.
    Query {
        /// Target document index.
        doc: usize,
        /// The query text.
        q: String,
        /// Route through the session view.
        via_view: bool,
    },
    /// A `batch` frame carrying three queries under one shared plan.
    Batch {
        /// Target document index.
        doc: usize,
        /// The batch members.
        queries: Vec<String>,
    },
    /// A deliberately oversize line; the *expected* reply is the
    /// server's `too_large` error, which counts as [`Outcome::Ok`].
    Oversize,
}

/// How one request ended, from the client's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The expected reply arrived (for [`WorkItem::Oversize`], that
    /// expected reply is the `too_large` error frame).
    Ok,
    /// The server refused admission (`rejected`): queue full.
    Rejected,
    /// The server answered `timeout`: the deadline expired in queue.
    DeadlineExpired,
    /// Any other structured server error — a scenario bug.
    Error,
    /// The connection itself failed (connect, I/O, protocol); the
    /// connection is discarded rather than returned to the pool.
    Transport,
}

/// Per-request trace entry. All fields are nanosecond offsets from the
/// run's start instant, so records order and subtract cleanly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestRecord {
    /// When the open-loop schedule said this request should arrive.
    pub scheduled_ns: u64,
    /// When the request frame was actually written.
    pub sent_ns: u64,
    /// When the first byte of the reply arrived (equals `done_ns` when
    /// the reply's timing was lost to an error path).
    pub first_byte_ns: u64,
    /// When the exchange finished.
    pub done_ns: u64,
    /// How it ended.
    pub outcome: Outcome,
}

impl RequestRecord {
    /// Client-perceived latency: scheduled arrival → completion. This
    /// is the coordinated-omission-corrected number — generator lag
    /// (sent − scheduled) counts against the server, as it would for a
    /// real arrival that found the system busy.
    pub fn latency_ns(&self) -> u64 {
        self.done_ns.saturating_sub(self.scheduled_ns)
    }

    /// Generator lag: how late the send itself was. A healthy open
    /// loop keeps this small; the reducer reports its p99 so a noisy
    /// host can't masquerade as a slow server.
    pub fn sched_lag_ns(&self) -> u64 {
        self.sent_ns.saturating_sub(self.scheduled_ns)
    }

    /// Send → first reply byte: queueing + execution without
    /// serialization of the (possibly large) reply body.
    pub fn first_byte_latency_ns(&self) -> u64 {
        self.first_byte_ns.saturating_sub(self.sent_ns)
    }
}

impl Outcome {
    /// Stable label used in the per-request trace CSV.
    pub fn as_str(&self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Rejected => "rejected",
            Outcome::DeadlineExpired => "deadline_expired",
            Outcome::Error => "error",
            Outcome::Transport => "transport",
        }
    }
}

/// Everything one run produced.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// One record per scheduled request, sorted by `scheduled_ns`.
    pub records: Vec<RequestRecord>,
    /// Wall-clock from first scheduled arrival to last completion.
    pub wall: Duration,
    /// Connections opened over the run (pool reuse keeps this near the
    /// concurrency level, not the request count).
    pub connections: u64,
}

/// The deterministic uniform arrival schedule: `n = round(rate ·
/// duration)` offsets at exactly `i / rate` seconds. Deterministic
/// spacing keeps run-to-run variance out of the CI gate; the queueing
/// the gate cares about comes from service-time variance.
pub fn arrival_schedule(rate: f64, duration: Duration) -> Vec<Duration> {
    let n = (rate * duration.as_secs_f64()).round().max(1.0) as usize;
    (0..n)
        .map(|i| Duration::from_secs_f64(i as f64 / rate))
        .collect()
}

/// The arrival schedule for any [`Arrivals`] process. `Uniform` ignores
/// the seed and matches [`arrival_schedule`]; `Poisson` draws
/// exponential inter-arrival gaps (inverse-CDF `-ln(1-U)/rate`) from a
/// seeded generator — the same seed always produces the same bursts, so
/// a bursty run is exactly as reproducible as a uniform one. The first
/// arrival is at offset zero either way (a schedule is never empty) and
/// every offset stays below `duration`.
pub fn arrival_schedule_for(
    arrivals: Arrivals,
    rate: f64,
    duration: Duration,
    seed: u64,
) -> Vec<Duration> {
    match arrivals {
        Arrivals::Uniform => arrival_schedule(rate, duration),
        Arrivals::Poisson => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x706f_6973); // ^ "pois"
            let mut offsets = vec![Duration::ZERO];
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen_range(0.0..1.0);
                t += -(1.0 - u).ln() / rate;
                if t >= duration.as_secs_f64() {
                    break offsets;
                }
                offsets.push(Duration::from_secs_f64(t));
            }
        }
    }
}

/// Builds the request plan: `n` work items drawn from the scenario's
/// mix and document distribution, deterministically from its seed.
pub fn build_plan(sc: &Scenario, n: usize) -> Vec<WorkItem> {
    let mut rng = StdRng::seed_from_u64(sc.seed ^ 0x6c6f_6164); // ^ "load"
    let total = sc.mix.total();
    (0..n)
        .map(|_| {
            let doc = if sc.docs == 1 || rng.gen_bool(sc.hot_fraction) {
                0
            } else {
                rng.gen_range(1..sc.docs)
            };
            let pick = rng.gen_range(0..total);
            if pick < sc.mix.point {
                let via_view = sc.session_views && rng.gen_bool(0.5);
                let q = if via_view {
                    format!("{VIEW_NAME} matching \"{}\"", word(&mut rng))
                } else {
                    point_query(&mut rng)
                };
                WorkItem::Query { doc, q, via_view }
            } else if pick < sc.mix.point + sc.mix.join {
                WorkItem::Query {
                    doc,
                    q: join_query(&mut rng),
                    via_view: false,
                }
            } else if pick < sc.mix.point + sc.mix.join + sc.mix.batch {
                WorkItem::Batch {
                    doc,
                    queries: vec![
                        point_query(&mut rng),
                        join_query(&mut rng),
                        "note".to_owned(),
                    ],
                }
            } else {
                WorkItem::Oversize
            }
        })
        .collect()
}

fn word(rng: &mut StdRng) -> &'static str {
    WORDS[rng.gen_range(0..WORDS.len())]
}

fn point_query(rng: &mut StdRng) -> String {
    let name = ["sec", "p", "note"][rng.gen_range(0..3)];
    format!("{name} matching \"{}\"", word(rng))
}

fn join_query(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4) {
        0 => format!("sec containing (note matching \"{}\")", word(rng)),
        1 => "p within sec".to_owned(),
        2 => format!("sec containing (p matching \"{}\")", word(rng)),
        _ => format!(
            "(sec containing note) intersect (sec matching \"{}\")",
            word(rng)
        ),
    }
}

/// A pooled connection plus the session views it has defined so far.
struct BenchConn {
    client: Client,
    views: HashSet<usize>,
}

impl BenchConn {
    fn connect(addr: SocketAddr) -> io::Result<BenchConn> {
        let client = Client::connect(addr)?;
        // Backstop only: a wedged server must surface as Transport, not
        // hang the whole run. Normal expiry is the server's deadline.
        client.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(BenchConn {
            client,
            views: HashSet::new(),
        })
    }

    /// Executes one item; returns its outcome and, when the reply path
    /// preserved it, the first-byte/total timing.
    fn execute(&mut self, item: &WorkItem, oversize_line: &str) -> (Outcome, Option<ReplyTiming>) {
        match item {
            WorkItem::Query { doc, q, via_view } => {
                if *via_view && !self.views.contains(doc) {
                    // Session setup: one untimed define-view per
                    // connection per doc. Only its *uses* are load.
                    match self
                        .client
                        .define_view(&doc_name(*doc), VIEW_NAME, VIEW_DEF)
                    {
                        Ok(()) => {
                            self.views.insert(*doc);
                        }
                        Err(e) => return (classify(&e), None),
                    }
                }
                let fields = Json::obj()
                    .with("doc", Json::from(doc_name(*doc)))
                    .with("q", Json::from(q.as_str()));
                map_reply(self.client.request_timed("query", fields))
            }
            WorkItem::Batch { doc, queries } => {
                let fields = Json::obj().with("doc", Json::from(doc_name(*doc))).with(
                    "queries",
                    Json::Arr(queries.iter().map(|q| Json::from(q.as_str())).collect()),
                );
                map_reply(self.client.request_timed("batch", fields))
            }
            WorkItem::Oversize => {
                if self.client.send_raw(oversize_line).is_err() {
                    return (Outcome::Transport, None);
                }
                match self.client.recv_timed() {
                    Ok((reply, timing)) => {
                        let code = reply
                            .get("error")
                            .and_then(|e| e.get("code"))
                            .and_then(Json::as_str);
                        if code == Some("too_large") {
                            (Outcome::Ok, Some(timing))
                        } else {
                            (Outcome::Error, Some(timing))
                        }
                    }
                    Err(_) => (Outcome::Transport, None),
                }
            }
        }
    }
}

fn map_reply(res: Result<(Json, ReplyTiming), ClientError>) -> (Outcome, Option<ReplyTiming>) {
    match res {
        Ok((_, timing)) => (Outcome::Ok, Some(timing)),
        Err(e) => (classify(&e), None),
    }
}

fn classify(e: &ClientError) -> Outcome {
    match e {
        ClientError::Server { code, .. } => match code.as_str() {
            "rejected" => Outcome::Rejected,
            "timeout" => Outcome::DeadlineExpired,
            _ => Outcome::Error,
        },
        ClientError::Io(_) | ClientError::Protocol(_) => Outcome::Transport,
    }
}

/// Runs the scenario's plan against `addr` at `rate` for `duration`,
/// open-loop. Blocks until every in-flight request has resolved.
pub fn run_load(addr: SocketAddr, sc: &Scenario, rate: f64, duration: Duration) -> RunResult {
    let schedule = arrival_schedule_for(sc.arrivals, rate, duration, sc.seed);
    let plan = build_plan(sc, schedule.len());
    // One shared oversize payload: max_frame_bytes + 1 KiB of padding,
    // built once instead of per request.
    let oversize_line: Arc<str> = "x".repeat(sc.max_frame_kb * 1024 + 1024).into();
    let idle: Arc<Mutex<Vec<BenchConn>>> = Arc::new(Mutex::new(Vec::new()));
    let records = Arc::new(Mutex::new(Vec::with_capacity(plan.len())));
    let connections = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(plan.len());
    for (due, item) in schedule.into_iter().zip(plan) {
        if let Some(wait) = (start + due).checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        // Reuse an idle connection; if none is free *right now*, open a
        // fresh one in the worker thread — never block the schedule.
        let conn = lock(&idle).pop();
        let (idle, records, connections, oversize_line) = (
            Arc::clone(&idle),
            Arc::clone(&records),
            Arc::clone(&connections),
            Arc::clone(&oversize_line),
        );
        handles.push(std::thread::spawn(move || {
            let scheduled_ns = ns(due);
            let mut conn = match conn {
                Some(c) => c,
                None => {
                    connections.fetch_add(1, Ordering::Relaxed);
                    match BenchConn::connect(addr) {
                        Ok(c) => c,
                        Err(_) => {
                            let now = ns(start.elapsed());
                            lock(&records).push(RequestRecord {
                                scheduled_ns,
                                sent_ns: now,
                                first_byte_ns: now,
                                done_ns: now,
                                outcome: Outcome::Transport,
                            });
                            return;
                        }
                    }
                }
            };
            let sent = Instant::now();
            let (outcome, timing) = conn.execute(&item, &oversize_line);
            let done_ns = ns(start.elapsed());
            let sent_ns = ns(sent.duration_since(start));
            let first_byte_ns = timing
                .map(|t| sent_ns + ns(t.first_byte))
                .unwrap_or(done_ns)
                .min(done_ns);
            lock(&records).push(RequestRecord {
                scheduled_ns,
                sent_ns,
                first_byte_ns,
                done_ns,
                outcome,
            });
            if outcome != Outcome::Transport {
                lock(&idle).push(conn);
            }
        }));
    }
    for h in handles {
        h.join().ok();
    }
    let wall = start.elapsed();
    let mut records = std::mem::take(&mut *lock(&records));
    records.sort_by_key(|r| r.scheduled_ns);
    RunResult {
        records,
        wall,
        connections: connections.load(Ordering::Relaxed),
    }
}

/// Serializes the per-request trace as CSV (one row per scheduled
/// request, in schedule order) for offline analysis: latency scatter
/// plots, coordinated-omission audits, burst close-ups. Offsets are
/// nanoseconds from run start; `latency_ns` is the
/// coordinated-omission-corrected scheduled→done latency the percentile
/// gate is built from, so the CSV can reproduce the report exactly.
pub fn trace_csv(result: &RunResult) -> String {
    let mut out = String::from("scheduled_ns,sent_ns,first_byte_ns,done_ns,latency_ns,outcome\n");
    for r in &result.records {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.scheduled_ns,
            r.sent_ns,
            r.first_byte_ns,
            r.done_ns,
            r.latency_ns(),
            r.outcome.as_str(),
        ));
    }
    out
}

fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn schedule_is_evenly_spaced_and_sized() {
        let s = arrival_schedule(100.0, Duration::from_secs(2));
        assert_eq!(s.len(), 200);
        assert_eq!(s[0], Duration::ZERO);
        for w in s.windows(2) {
            let gap = (w[1] - w[0]).as_secs_f64();
            assert!((gap - 0.01).abs() < 1e-9, "gap {gap}");
        }
    }

    #[test]
    fn schedule_never_goes_empty() {
        assert_eq!(arrival_schedule(0.1, Duration::from_secs(1)).len(), 1);
        assert_eq!(
            arrival_schedule_for(Arrivals::Poisson, 0.001, Duration::from_secs(1), 7).len(),
            1
        );
    }

    #[test]
    fn poisson_schedule_is_seeded_sorted_and_bounded() {
        // Property sweep over seeds: determinism, monotone offsets, all
        // inside the run window, and the empirical mean rate within a
        // loose band of the offered one (law of large numbers at n≈2000;
        // the band is wide enough to be flake-free, tight enough to
        // catch a wrong inverse-CDF).
        let duration = Duration::from_secs(20);
        for seed in 0..8u64 {
            let a = arrival_schedule_for(Arrivals::Poisson, 100.0, duration, seed);
            let b = arrival_schedule_for(Arrivals::Poisson, 100.0, duration, seed);
            assert_eq!(a, b, "seed {seed} must reproduce its bursts");
            assert_eq!(a[0], Duration::ZERO);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "seed {seed}: sorted");
            assert!(a.iter().all(|&t| t < duration), "seed {seed}: bounded");
            let n = a.len() as f64;
            let rate = n / duration.as_secs_f64();
            assert!(
                (70.0..=130.0).contains(&rate),
                "seed {seed}: empirical rate {rate} too far from 100"
            );
        }
        // Different seeds give different bursts.
        let a = arrival_schedule_for(Arrivals::Poisson, 100.0, duration, 1);
        let b = arrival_schedule_for(Arrivals::Poisson, 100.0, duration, 2);
        assert_ne!(a, b);
        // Gaps are actually irregular — a Poisson schedule that came out
        // evenly spaced would mean the exponential draw is broken.
        let gaps: Vec<f64> = a.windows(2).map(|w| (w[1] - w[0]).as_secs_f64()).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        // Exponential: stddev == mean. Uniform spacing: stddev == 0.
        assert!(
            var.sqrt() > mean * 0.5,
            "gap stddev {} vs mean {mean}: not exponential-shaped",
            var.sqrt()
        );
    }

    #[test]
    fn uniform_arrivals_ignore_the_seed() {
        let d = Duration::from_secs(2);
        assert_eq!(
            arrival_schedule_for(Arrivals::Uniform, 50.0, d, 1),
            arrival_schedule(50.0, d)
        );
        assert_eq!(
            arrival_schedule_for(Arrivals::Uniform, 50.0, d, 999),
            arrival_schedule(50.0, d)
        );
    }

    #[test]
    fn plan_is_deterministic_and_respects_the_mix() {
        let sc = scenario::parse("mix.point = 0\nmix.join = 0\nmix.batch = 1\nmix.oversize = 1\n")
            .unwrap();
        let plan = build_plan(&sc, 400);
        assert_eq!(plan, build_plan(&sc, 400));
        let oversize = plan.iter().filter(|i| **i == WorkItem::Oversize).count();
        assert!(
            plan.len() - oversize > 0 && oversize > 0,
            "both shapes present: {oversize}/400 oversize"
        );
        assert!(plan
            .iter()
            .all(|i| matches!(i, WorkItem::Batch { .. } | WorkItem::Oversize)));
    }

    #[test]
    fn hot_fraction_one_pins_every_request_to_doc0() {
        let sc = scenario::parse("docs = 8\nhot_fraction = 1\n").unwrap();
        for item in build_plan(&sc, 200) {
            match item {
                WorkItem::Query { doc, .. } | WorkItem::Batch { doc, .. } => assert_eq!(doc, 0),
                WorkItem::Oversize => {}
            }
        }
    }

    #[test]
    fn trace_csv_round_trips_the_records() {
        let result = RunResult {
            records: vec![
                RequestRecord {
                    scheduled_ns: 0,
                    sent_ns: 10,
                    first_byte_ns: 500,
                    done_ns: 700,
                    outcome: Outcome::Ok,
                },
                RequestRecord {
                    scheduled_ns: 1_000,
                    sent_ns: 1_020,
                    first_byte_ns: 1_020,
                    done_ns: 1_020,
                    outcome: Outcome::Rejected,
                },
            ],
            wall: Duration::from_millis(2),
            connections: 1,
        };
        let csv = trace_csv(&result);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + one row per record");
        assert_eq!(
            lines[0],
            "scheduled_ns,sent_ns,first_byte_ns,done_ns,latency_ns,outcome"
        );
        assert_eq!(lines[1], "0,10,500,700,700,ok");
        assert_eq!(lines[2], "1000,1020,1020,1020,20,rejected");
    }

    #[test]
    fn record_arithmetic_saturates() {
        let r = RequestRecord {
            scheduled_ns: 100,
            sent_ns: 50, // clock skew shouldn't underflow
            first_byte_ns: 40,
            done_ns: 60,
            outcome: Outcome::Ok,
        };
        assert_eq!(r.sched_lag_ns(), 0);
        assert_eq!(r.first_byte_latency_ns(), 0);
        assert_eq!(r.latency_ns(), 0);
    }
}
