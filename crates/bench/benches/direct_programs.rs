//! E9 — the Section 6 while-loop programs: per-operator layered program
//! vs the native forest operator vs the naive definition, and the
//! single-loop chain program with full vs RIG-pruned `All`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tr_bench::{figure_1_instance, nested_chain_instance};
use tr_core::NameId;
use tr_ext::{
    direct_chain_program, direct_chain_program_filtered, direct_including_program,
    directly_including,
};
use tr_rig::{MinimalSetProblem, Rig};

fn bench_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_direct_inclusion_vs_depth");
    for depth in [8usize, 32, 64] {
        let inst = nested_chain_instance(depth);
        let b_set = inst.regions_of_name("B").clone();
        let a_set = inst.regions_of_name("A").clone();
        group.bench_with_input(
            BenchmarkId::new("section6_program", depth),
            &depth,
            |b, _| b.iter(|| direct_including_program(&inst, &b_set, &a_set)),
        );
        group.bench_with_input(BenchmarkId::new("native_forest", depth), &depth, |b, _| {
            b.iter(|| directly_including(&inst, &b_set, &a_set))
        });
    }
    group.finish();

    let rig = Rig::figure_1();
    let schema = rig.schema().clone();
    let chain = vec![
        schema.expect_id("Program"),
        schema.expect_id("Proc"),
        schema.expect_id("Var"),
    ];
    let minimal = MinimalSetProblem::for_chain(rig, &chain)
        .solve_exact()
        .unwrap();
    let keep: Vec<NameId> = minimal
        .iter()
        .copied()
        .chain(chain[1..chain.len() - 1].iter().copied())
        .collect();

    let mut group = c.benchmark_group("e9_chain_program_all_pruning");
    for regions in [5_000usize, 50_000] {
        let inst = figure_1_instance(regions, 12, 3);
        assert_eq!(
            direct_chain_program(&inst, &chain),
            direct_chain_program_filtered(&inst, &chain, &keep)
        );
        group.bench_with_input(BenchmarkId::new("full_all", regions), &regions, |b, _| {
            b.iter(|| direct_chain_program(&inst, &chain))
        });
        group.bench_with_input(BenchmarkId::new("pruned_all", regions), &regions, |b, _| {
            b.iter(|| direct_chain_program_filtered(&inst, &chain, &keep))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_programs);
criterion_main!(benches);
