//! E13 — batch query throughput: one-at-a-time evaluation vs the
//! hash-consed plan (sequential), the parallel wave executor, and the
//! engine's result cache.
//!
//! The batch deliberately repeats sub-expressions across queries (the
//! realistic "dashboard" shape: many queries over the same few views), so
//! plan sharing has something to merge and the cache has something to hit.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tr_core::{
    eval, execute, region, ExecConfig, Expr, Instance, InstanceBuilder, Plan, Pos, Schema,
};
use tr_query::Engine;

/// A two-name instance of `2n` regions: wide `A`s, each with a `B` inside.
fn big_instance(n: usize) -> (Schema, Instance) {
    let schema = Schema::new(["A", "B"]);
    let mut b = InstanceBuilder::new(schema.clone());
    for i in 0..n as Pos {
        b = b.add("A", region(i * 10, i * 10 + 8));
        b = b.add("B", region(i * 10 + 2, i * 10 + 5));
    }
    (schema, b.build_valid())
}

/// Eight queries sharing `B ⊂ A` and `A ⊃ B` sub-expressions.
fn batch(schema: &Schema) -> Vec<Expr> {
    let a = Expr::name(schema.expect_id("A"));
    let b = Expr::name(schema.expect_id("B"));
    let b_in_a = b.clone().included_in(a.clone());
    let a_has_b = a.clone().including(b.clone());
    vec![
        b_in_a.clone(),
        b_in_a.clone().union(a_has_b.clone()),
        b_in_a.clone().intersect(b.clone()),
        a_has_b.clone(),
        a_has_b.clone().diff(b_in_a.clone()),
        a.clone().before(b.clone()),
        a.clone().before(b.clone()).union(b_in_a.clone()),
        b.after(a),
    ]
}

fn bench_batch(c: &mut Criterion) {
    let (schema, inst) = big_instance(100_000);
    let queries = batch(&schema);

    let mut group = c.benchmark_group("e13_batch_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(queries.len() as u64));

    // Baseline: each query evaluated independently, tree-walk, one thread.
    group.bench_function("eval_per_query", |bench| {
        bench.iter(|| queries.iter().map(|e| eval(e, &inst)).collect::<Vec<_>>())
    });

    // Hash-consed plan, still one thread: measures pure work sharing.
    group.bench_function("plan_sequential", |bench| {
        bench.iter(|| {
            let mut plan = Plan::new();
            let roots = plan.lower_batch(queries.iter());
            execute(&plan, &inst, &ExecConfig::sequential()).take(&roots)
        })
    });

    // Shared plan on the wave executor with parallel kernels.
    group.bench_function("plan_parallel", |bench| {
        let cfg = ExecConfig::default();
        bench.iter(|| {
            let mut plan = Plan::new();
            let roots = plan.lower_batch(queries.iter());
            execute(&plan, &inst, &cfg).take(&roots)
        })
    });

    group.finish();

    // The engine path: a primed result cache answers a repeated batch
    // without touching the executor at all.
    let text = "<doc><sec>alpha beta</sec><sec>gamma <note>beta</note></sec></doc>".repeat(2_000);
    let engine = Engine::from_sgml(&format!("<all>{text}</all>")).unwrap();
    let engine_queries: Vec<&str> = vec![
        r#"sec matching "beta""#,
        r#"sec matching "beta" minus (sec containing note)"#,
        "sec containing note",
        r#"(sec matching "beta") intersect (sec containing note)"#,
        "note within sec",
        r#"sec matching "beta" union (note within sec)"#,
        "doc containing sec",
        "note within doc",
    ];
    let mut group = c.benchmark_group("e13_engine_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(engine_queries.len() as u64));
    group.bench_function("cold", |bench| {
        bench.iter(|| {
            engine.clear_result_cache();
            engine.query_batch(&engine_queries).unwrap()
        })
    });
    engine.clear_result_cache();
    engine.query_batch(&engine_queries).unwrap(); // prime
    group.bench_function("cached", |bench| {
        bench.iter(|| engine.query_batch(&engine_queries).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
