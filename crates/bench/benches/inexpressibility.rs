//! E6/E7 — the exhaustive expression sweeps behind the Theorem 5.1/5.3
//! experiments: how fast can we refute a size bound?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tr_ext::{both_included_probes, direct_inclusion_probes, sweep};

fn bench_sweeps(c: &mut Criterion) {
    let fig2_probes = direct_inclusion_probes(&[6, 8]);
    let fig2_schema = tr_markup::figure_2_schema();
    let fig3_probes = both_included_probes(&[1]);
    let fig3_schema = tr_markup::figure_3_schema();

    let mut group = c.benchmark_group("e6_e7_sweeps");
    group.sample_size(10);
    for ops in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new("fig2_direct_inclusion", ops),
            &ops,
            |b, &ops| {
                b.iter(|| {
                    let r = sweep(&fig2_schema, ops, &fig2_probes);
                    assert_eq!(r.matching, 0);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fig3_both_included", ops),
            &ops,
            |b, &ops| {
                b.iter(|| {
                    let r = sweep(&fig3_schema, ops, &fig3_probes);
                    assert_eq!(r.matching, 0);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
