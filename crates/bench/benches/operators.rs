//! E2 — structural operator latency, fast engine vs the literal
//! Definition 2.3 baseline (the PAT "very efficient evaluation" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tr_bench::operator_workload;
use tr_core::{naive, ops};

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_operators_fast");
    for n in [1_000usize, 10_000, 100_000] {
        let (r, s) = operator_workload(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("includes", n), &n, |b, _| {
            b.iter(|| ops::includes(&r, &s))
        });
        group.bench_with_input(BenchmarkId::new("included_in", n), &n, |b, _| {
            b.iter(|| ops::included_in(&r, &s))
        });
        group.bench_with_input(BenchmarkId::new("precedes", n), &n, |b, _| {
            b.iter(|| ops::precedes(&r, &s))
        });
        group.bench_with_input(BenchmarkId::new("follows", n), &n, |b, _| {
            b.iter(|| ops::follows(&r, &s))
        });
        group.bench_with_input(BenchmarkId::new("union", n), &n, |b, _| {
            b.iter(|| r.union(&s))
        });
        group.bench_with_input(BenchmarkId::new("intersect", n), &n, |b, _| {
            b.iter(|| r.intersect(&s))
        });
        group.bench_with_input(BenchmarkId::new("difference", n), &n, |b, _| {
            b.iter(|| r.difference(&s))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e2_operators_naive_baseline");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let (r, s) = operator_workload(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("includes", n), &n, |b, _| {
            b.iter(|| naive::includes(&r, &s))
        });
        group.bench_with_input(BenchmarkId::new("included_in", n), &n, |b, _| {
            b.iter(|| naive::included_in(&r, &s))
        });
        group.bench_with_input(BenchmarkId::new("precedes", n), &n, |b, _| {
            b.iter(|| naive::precedes(&r, &s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
