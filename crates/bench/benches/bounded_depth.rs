//! E8 — Propositions 5.2/5.4: the bounded-case constructions. Expression
//! size (and evaluation time) explodes with the bound, while the native
//! operators stay flat — the cost of staying inside the algebra.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tr_bench::{flat_bi_instance, nested_chain_instance};
use tr_core::{eval, Expr, Schema};
use tr_ext::{both_included, both_included_expr, direct_including_expr, directly_including};

fn bench_bounded(c: &mut Criterion) {
    let schema = Schema::new(["A", "B"]);
    let qa = Expr::name(schema.expect_id("A"));
    let qb = Expr::name(schema.expect_id("B"));

    let mut group = c.benchmark_group("e8_direct_inclusion_bounded");
    for depth in [2usize, 4, 6] {
        let e = direct_including_expr(&qa, &qb, &schema, depth);
        let inst = nested_chain_instance(2 * depth);
        group.bench_with_input(BenchmarkId::new("algebra_expr", depth), &depth, |b, _| {
            b.iter(|| eval(&e, &inst))
        });
        group.bench_with_input(BenchmarkId::new("native", depth), &depth, |b, _| {
            b.iter(|| {
                directly_including(&inst, inst.regions_of_name("A"), inst.regions_of_name("B"))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e8_both_included_bounded");
    for width in [2usize, 4, 8] {
        let inst = flat_bi_instance(width / 2, 99);
        let s = inst.schema().clone();
        let e = both_included_expr(
            &Expr::name(s.expect_id("C")),
            &Expr::name(s.expect_id("A")),
            &Expr::name(s.expect_id("B")),
            width,
        );
        group.bench_with_input(BenchmarkId::new("algebra_expr", width), &width, |b, _| {
            b.iter(|| eval(&e, &inst))
        });
        group.bench_with_input(BenchmarkId::new("native", width), &width, |b, _| {
            b.iter(|| {
                both_included(
                    inst.regions_of_name("C"),
                    inst.regions_of_name("A"),
                    inst.regions_of_name("B"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bounded);
criterion_main!(benches);
