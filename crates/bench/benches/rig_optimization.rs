//! E1 — the Section 2.2 RIG rewrite: `e1 = Name ⊂ Proc_header ⊂ Proc ⊂
//! Program` vs its optimized form `e2`, on generated program files.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tr_bench::program_workload;
use tr_core::eval;
use tr_rig::{Chain, ChainDir, ChainItem, Rig};

fn bench_rig_optimization(c: &mut Criterion) {
    let rig = Rig::figure_1();
    let schema = rig.schema().clone();
    let e1 = Chain {
        dir: ChainDir::IncludedIn,
        items: ["Name", "Proc_header", "Proc", "Program"]
            .iter()
            .map(|n| ChainItem::bare(schema.expect_id(n)))
            .collect(),
    }
    .to_expr();
    let e2 = Chain::from_expr(&e1).unwrap().optimize(&rig).to_expr();

    let mut group = c.benchmark_group("e1_rig_optimization");
    for procs in [1_000usize, 10_000] {
        let (_, inst) = program_workload(procs, 42);
        assert_eq!(eval(&e1, &inst), eval(&e2, &inst));
        group.bench_with_input(BenchmarkId::new("e1_unoptimized", procs), &procs, |b, _| {
            b.iter(|| eval(&e1, &inst))
        });
        group.bench_with_input(BenchmarkId::new("e2_optimized", procs), &procs, |b, _| {
            b.iter(|| eval(&e2, &inst))
        });
    }
    group.finish();

    // The rewrite itself (planner cost) is microscopic; measure it too.
    c.bench_function("e1_rewrite_cost", |b| {
        b.iter(|| Chain::from_expr(&e1).unwrap().optimize(&rig))
    });
}

criterion_group!(benches, bench_rig_optimization);
criterion_main!(benches);
