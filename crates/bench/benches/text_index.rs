//! E12 — the text substrate: suffix array construction, pattern lookup,
//! and σ_p selection throughput (the PAT word index substitute).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tr_bench::synthetic_text;
use tr_core::WordIndex;
use tr_text::{SuffixArray, SuffixWordIndex};

fn bench_text(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_suffix_array_build");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let text = synthetic_text(n, 5);
        group.throughput(Throughput::Bytes(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| SuffixArray::new(text.clone()))
        });
    }
    group.finish();

    let text = synthetic_text(100_000, 5);
    let sa = SuffixArray::new(text.clone());
    c.bench_function("e12_pattern_range_lookup", |b| {
        b.iter(|| sa.count(b"region"))
    });

    let idx = SuffixWordIndex::new(text);
    idx.occurrences("region"); // prime the memo: steady-state W(r,p) cost
    let regions: Vec<tr_core::Region> = (0..1000u32)
        .map(|i| tr_core::region(i * 97, i * 97 + 49))
        .collect();
    c.bench_function("e12_w_r_p_per_1000_regions", |b| {
        b.iter(|| {
            regions
                .iter()
                .filter(|&&r| idx.matches(r, "region"))
                .count()
        })
    });
}

criterion_group!(benches, bench_text);
criterion_main!(benches);
