//! E4 — Theorem 3.5: deciding emptiness of the reduction expression e_φ
//! costs as much as SAT. DPLL on φ vs witness search over canonical
//! assignment instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use tr_core::eval;
use tr_fmft::{assignment_instance, cnf_to_expr, random_3cnf, reduction_schema};

fn bench_cnf(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2025);
    let mut group = c.benchmark_group("e4_cnf_hardness");
    group.sample_size(10);
    for n in [6usize, 8, 10] {
        let m = (4.3 * n as f64) as usize;
        let cnf = random_3cnf(&mut rng, n, m);
        let schema = reduction_schema(n);
        let e = cnf_to_expr(&cnf, &schema);
        group.bench_with_input(BenchmarkId::new("dpll", n), &n, |b, _| {
            b.iter(|| cnf.satisfiable())
        });
        group.bench_with_input(
            BenchmarkId::new("emptiness_witness_search", n),
            &n,
            |b, _| {
                b.iter(|| {
                    (0u64..1 << n).any(|mask| {
                        let assignment: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
                        !eval(&e, &assignment_instance(&cnf, &schema, &assignment)).is_empty()
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cnf);
criterion_main!(benches);
