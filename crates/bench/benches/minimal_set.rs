//! E10 — Proposition 6.1: the minimal set problem. Exact vs greedy on
//! vertex-cover reductions, and the polynomial min-cut single-pair case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use tr_core::NameId;
use tr_rig::{min_vertex_cut, vertex_cover_to_minimal_set, Rig};

fn bench_minimal_set(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(31);

    let mut group = c.benchmark_group("e10_minimal_set");
    group.sample_size(10);
    for n in [8usize, 12] {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.3) {
                    edges.push((i, j));
                }
            }
        }
        if edges.is_empty() {
            edges.push((0, 1));
        }
        let p = vertex_cover_to_minimal_set(n, &edges);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| p.solve_exact().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| p.solve_greedy().unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e10_min_cut_polynomial");
    for n in [20usize, 40, 80] {
        let names: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
        let schema = tr_core::Schema::new(names);
        let mut rig = Rig::new(schema);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.3) {
                    rig.0.add_edge(NameId::from_index(i), NameId::from_index(j));
                }
            }
        }
        let (u, v) = (NameId::from_index(0), NameId::from_index(n - 1));
        group.bench_with_input(BenchmarkId::new("min_vertex_cut", n), &n, |b, _| {
            b.iter(|| min_vertex_cut(&rig, u, v))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_minimal_set);
criterion_main!(benches);
