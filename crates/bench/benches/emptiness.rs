//! E3 — bounded-model emptiness testing (Theorem 3.4): cost grows
//! exponentially with the expression-derived bounds, as Theorem 3.5
//! predicts for any complete procedure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tr_core::{Expr, Schema};
use tr_fmft::{Bounds, EmptinessChecker};

fn bench_emptiness(c: &mut Criterion) {
    let schema = Schema::new(["A", "B"]);
    let a = || Expr::name(schema.expect_id("A"));
    let b = || Expr::name(schema.expect_id("B"));

    let mut group = c.benchmark_group("e3_emptiness");
    group.sample_size(10);
    for ops in [2usize, 3, 4, 5] {
        let mut sat = b();
        for _ in 0..ops {
            sat = a().including(sat);
        }
        let mut unsat = a();
        for _ in 0..ops - 1 {
            unsat = a().intersect(unsat);
        }
        let unsat = unsat.intersect(b());
        let bounds = Bounds {
            max_nodes: ops + 1,
            max_depth: ops + 1,
        };
        let checker = EmptinessChecker::new(schema.clone(), bounds);
        group.bench_with_input(BenchmarkId::new("unsat_full_sweep", ops), &ops, |bch, _| {
            bch.iter(|| checker.is_empty(&unsat))
        });
        group.bench_with_input(
            BenchmarkId::new("sat_first_witness", ops),
            &ops,
            |bch, _| bch.iter(|| checker.find_witness(&sat).is_some()),
        );
    }
    group.finish();

    // Equivalence testing (the optimizer's primitive).
    let checker = EmptinessChecker::new(
        schema.clone(),
        Bounds {
            max_nodes: 4,
            max_depth: 4,
        },
    );
    let lhs = a().union(b());
    let rhs = b().union(a());
    c.bench_function("e3_equivalence_union_comm", |bch| {
        bch.iter(|| checker.equivalent(&lhs, &rhs))
    });
}

criterion_group!(benches, bench_emptiness);
criterion_main!(benches);
