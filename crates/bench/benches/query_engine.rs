//! User-facing latency: query parsing, planning, and end-to-end execution
//! through the `tr-query` engine on a generated corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use tr_bench::program_workload;
use tr_query::Engine;

fn bench_engine(c: &mut Criterion) {
    let (text, _) = program_workload(2_000, 42);
    let engine = Engine::from_source(&text).expect("valid program");

    let chain = "Name within Proc_header within Proc within Program";
    let sigma = r#"Var matching "x" within Proc"#;
    let extended = r#"Proc directly containing (Proc_body directly containing (Var matching "x"))"#;
    let bi = r#"bi(Proc, Var matching "x", Var matching "y")"#;

    c.bench_function("engine_parse_only", |b| {
        b.iter(|| engine.parse_query(chain).unwrap())
    });
    c.bench_function("engine_plan_explain", |b| {
        b.iter(|| engine.explain(chain).unwrap())
    });
    let mut group = c.benchmark_group("engine_end_to_end");
    for (name, q) in [
        ("chain", chain),
        ("sigma", sigma),
        ("direct", extended),
        ("bi", bi),
    ] {
        group.bench_function(name, |b| b.iter(|| engine.query(q).unwrap()));
    }
    group.finish();

    // Indexing cost (parse + suffix array) for the same corpus.
    let mut group = c.benchmark_group("engine_indexing");
    group.sample_size(10);
    group.bench_function("from_source_2000_procs", |b| {
        b.iter(|| Engine::from_source(&text).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
