//! Regenerates every experiment table in EXPERIMENTS.md (E1–E17), and
//! hosts the CI performance-regression gate.
//!
//! ```text
//! cargo run -p tr-bench --release --bin report            # all experiments
//! cargo run -p tr-bench --release --bin report -- E2 E9   # a subset
//!
//! # the regression gate (see crates/bench/src/gate.rs):
//! report --emit-baseline BENCH_BASELINE.json   # record a new baseline
//! report --check BENCH_BASELINE.json           # fail on >20% regressions
//! report --check BENCH_BASELINE.json --handicap 1.35   # simulate one
//! report --check BENCH_BASELINE.json --inflate-counter exec.nodes
//!                                              # simulate a work regression
//! report --plan-gate                           # cost-based vs structural
//!                                              # lowering, same-run ratio
//! report --stats-json                          # suite results as JSON
//! ```
//!
//! Timings are coarse wall-clock averages — for rigorous statistics use
//! the criterion benches (`cargo bench`); the *shapes* (who wins, how
//! things scale) are what the reproduction tracks.

use rand::prelude::*;
use tr_bench::gate;
use tr_bench::*;
use tr_core::{eval, ops, Expr, NameId, Schema};
use tr_fmft::{Bounds, EmptinessChecker};
use tr_rig::{Chain, ChainDir, ChainItem, MinimalSetProblem, Rig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(code) = run_gate_mode(&mut args) {
        std::process::exit(code);
    }
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    println!("textregion experiment report (paper: Consens & Milo, PODS 1995)");
    println!("================================================================\n");
    if want("E1") {
        e1_rig_optimization();
    }
    if want("E2") {
        e2_operators();
    }
    if want("E3") {
        e3_emptiness();
    }
    if want("E4") {
        e4_cnf_hardness();
    }
    if want("E5") {
        e5_deletion_reduction();
    }
    if want("E6") || want("E7") {
        e6_e7_inexpressibility();
    }
    if want("E8") {
        e8_bounded_constructions();
    }
    if want("E9") {
        e9_programs();
    }
    if want("E10") {
        e10_minimal_set();
    }
    if want("E11") {
        e11_translation();
    }
    if want("E12") {
        e12_text_index();
    }
    if want("E13") {
        e13_nary_extension();
    }
    if want("E14") {
        e14_serve_throughput();
    }
    if want("E15") {
        e15_cache_hit_latency();
    }
    if want("E16") {
        e16_segment_scaling();
    }
    if want("E17") {
        e17_store_and_kernels();
    }
}

/// Handles the gate flags (`--emit-baseline`, `--check`, `--stats-json`,
/// `--handicap`). Returns `Some(exit code)` when a gate mode ran, `None`
/// to fall through to the experiment report.
fn run_gate_mode(args: &mut Vec<String>) -> Option<i32> {
    fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
        let i = args.iter().position(|a| a == flag);
        if let Some(i) = i {
            args.remove(i);
        }
        i.is_some()
    }
    /// Removes `flag` and its value; `Some(None)` means the value was missing.
    fn take_valued(args: &mut Vec<String>, flag: &str) -> Option<Option<String>> {
        let i = args.iter().position(|a| a == flag)?;
        args.remove(i);
        Some((i < args.len() && !args[i].starts_with("--")).then(|| args.remove(i)))
    }

    let handicap = match take_valued(args, "--handicap") {
        Some(Some(v)) => match v.parse::<f64>() {
            Ok(h) if h > 0.0 => h,
            _ => {
                eprintln!("--handicap needs a positive factor, got {v:?}");
                return Some(2);
            }
        },
        Some(None) => {
            eprintln!("--handicap needs a factor (e.g. 1.35)");
            return Some(2);
        }
        None => 1.0,
    };
    let inflate = match take_valued(args, "--inflate-counter") {
        Some(Some(name)) => Some(name),
        Some(None) => {
            eprintln!("--inflate-counter needs a counter name (e.g. exec.segment_waves)");
            return Some(2);
        }
        None => None,
    };
    let emit = take_valued(args, "--emit-baseline");
    let check = take_valued(args, "--check");
    let stats_json = take_switch(args, "--stats-json");
    let plan_gate = take_switch(args, "--plan-gate");
    if plan_gate {
        // The plan-quality leg alone: no baseline file — the verdict is
        // the same-run ratio, so the leg is machine-independent and fast
        // enough to run on every push.
        eprintln!("running plan-quality gate (cost-based vs structural lowering)...");
        let suite = gate::run_plan_quality();
        let (Some(structural), Some(costbased)) = (
            suite.get("plan_structural_cold"),
            suite.get("plan_costbased_cold"),
        ) else {
            eprintln!("plan gate: suite incomplete");
            return Some(2);
        };
        let ratio = costbased.secs / structural.secs;
        let rewrites = costbased
            .counters
            .iter()
            .find(|(n, _)| n == "plan.rewrites_applied")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        eprintln!(
            "  structural {:>10.3} µs   cost-based {:>10.3} µs   ratio {ratio:.3} \
             (max {:.2})   rewrites/batch {rewrites}",
            structural.secs * 1e6,
            costbased.secs * 1e6,
            gate::MAX_PLAN_SLOWDOWN,
        );
        if ratio > gate::MAX_PLAN_SLOWDOWN {
            eprintln!("plan gate: FAIL — cost-based lowering is {ratio:.2}x structural");
            return Some(1);
        }
        eprintln!("plan gate: PASS");
        return Some(0);
    }
    if emit.is_none() && check.is_none() && !stats_json {
        return None;
    }

    eprintln!("running regression-gate suite (handicap {handicap})...");
    let mut suite = gate::run_suite(handicap);
    // `--inflate-counter` is the work-counter analogue of `--handicap`:
    // it multiplies one named counter by 10 across the fresh run so CI
    // can prove the gate's deterministic (counter) failure path fires.
    if let Some(name) = inflate {
        let mut touched = false;
        for b in &mut suite.benches {
            for (k, v) in &mut b.counters {
                if *k == name {
                    *v *= 10;
                    touched = true;
                }
            }
        }
        if !touched {
            eprintln!("--inflate-counter: no bench records counter {name:?}");
            return Some(2);
        }
        eprintln!("inflated counter {name} x10 across the suite");
    }
    if stats_json {
        println!("{}", suite.to_json().pretty());
    }

    if let Some(path) = emit {
        let Some(path) = path else {
            eprintln!("--emit-baseline needs a path");
            return Some(2);
        };
        if let Err(e) = std::fs::write(&path, suite.to_json().pretty() + "\n") {
            eprintln!("cannot write baseline {path}: {e}");
            return Some(2);
        }
        eprintln!("baseline written to {path}");
    }

    if let Some(path) = check {
        let Some(path) = path else {
            eprintln!("--check needs a baseline path");
            return Some(2);
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return Some(2);
            }
        };
        let baseline = match tr_obs::parse_json(&text)
            .map_err(|e| e.to_string())
            .and_then(|j| gate::Suite::from_json(&j))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bad baseline {path}: {e}");
                return Some(2);
            }
        };
        let regressions = gate::check(&suite, &baseline, gate::DEFAULT_TOLERANCE);
        for bench in &suite.benches {
            let base = baseline.get(&bench.name).map(|b| b.secs);
            eprintln!(
                "  {:<24} {:>12.3} µs (baseline {})",
                bench.name,
                bench.secs * 1e6,
                base.map_or("-".into(), |s| format!("{:.3} µs", s * 1e6)),
            );
        }
        if regressions.is_empty() {
            eprintln!(
                "gate: PASS ({} benches within tolerance)",
                suite.benches.len()
            );
        } else {
            eprintln!("gate: FAIL — {} regression(s):", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            return Some(1);
        }
    }
    Some(0)
}

fn us(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:9.3} s ")
    } else if secs >= 1e-3 {
        format!("{:9.3} ms", secs * 1e3)
    } else {
        format!("{:9.3} µs", secs * 1e6)
    }
}

/// E1 (Figure 1 / Section 2.2): the RIG rewrite `e1 → e2` and its payoff.
fn e1_rig_optimization() {
    println!("E1 — RIG-based chain optimization (Figure 1, e1 ≡ e2)");
    println!(
        "{:>9} {:>9} | {:>12} {:>12} {:>8} | same",
        "procs", "regions", "e1 (3 ops)", "e2 (2 ops)", "speedup"
    );
    let rig = Rig::figure_1();
    let schema = rig.schema().clone();
    let chain = |names: &[&str]| {
        Chain {
            dir: ChainDir::IncludedIn,
            items: names
                .iter()
                .map(|n| ChainItem::bare(schema.expect_id(n)))
                .collect(),
        }
        .to_expr()
    };
    let e1 = chain(&["Name", "Proc_header", "Proc", "Program"]);
    let e2 = Chain::from_expr(&e1).unwrap().optimize(&rig).to_expr();
    for procs in [100usize, 1_000, 5_000, 20_000] {
        let (_, inst) = program_workload(procs, 42);
        let iters = (200_000 / procs.max(1)).clamp(3, 300);
        let (t1, r1) = time_avg(iters, || eval(&e1, &inst));
        let (t2, r2) = time_avg(iters, || eval(&e2, &inst));
        println!(
            "{:>9} {:>9} | {} {} {:>7.2}x | {}",
            procs,
            inst.len(),
            us(t1),
            us(t2),
            t1 / t2,
            r1 == r2
        );
    }
    println!("  (e2 = optimizer output; results must be identical on RIG instances)\n");
}

/// E2: operator latency, fast engine vs the literal-definition baseline.
fn e2_operators() {
    println!("E2 — structural operator cost, fast vs naive (PAT's efficiency claim)");
    println!(
        "{:>9} | {:>4} | {:>12} {:>12} {:>9}",
        "|R|=|S|·2", "op", "fast", "naive", "ratio"
    );
    type OpFn = fn(&tr_core::RegionSet, &tr_core::RegionSet) -> tr_core::RegionSet;
    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let (r, s) = operator_workload(n);
        let named: [(&str, OpFn, OpFn); 4] = [
            ("⊃", ops::includes, tr_core::naive::includes),
            ("⊂", ops::included_in, tr_core::naive::included_in),
            ("<", ops::precedes, tr_core::naive::precedes),
            (">", ops::follows, tr_core::naive::follows),
        ];
        for (sym, fast, naive) in named {
            let iters = (2_000_000 / n).clamp(2, 200);
            let (tf, out_fast) = time_avg(iters, || fast(&r, &s));
            if n <= 10_000 {
                let (tn, out_naive) = time_avg(2, || naive(&r, &s));
                assert_eq!(out_fast, out_naive);
                println!(
                    "{n:>9} | {sym:>4} | {} {} {:>8.1}x",
                    us(tf),
                    us(tn),
                    tn / tf
                );
            } else {
                println!(
                    "{n:>9} | {sym:>4} | {} {:>12} {:>9}",
                    us(tf),
                    "(skipped)",
                    "—"
                );
            }
        }
    }
    println!("  (naive is O(|R|·|S|); skipped above 10⁴ to keep the run short)\n");
}

/// E3 (Theorems 3.4/3.6): bounded-model emptiness testing cost growth.
fn e3_emptiness() {
    println!("E3 — emptiness testing cost vs expression size (Thm 3.4; expected exponential)");
    println!(
        "{:>4} {:>6} {:>6} | {:>14} | {:>12} {:>12}",
        "ops", "nodes", "depth", "models visited", "t(unsat)", "t(sat)"
    );
    let schema = Schema::new(["A", "B"]);
    let a = || Expr::name(schema.expect_id("A"));
    let b = || Expr::name(schema.expect_id("B"));
    for ops_n in 1..=5usize {
        // A ⊃ (A ⊃ … ⊃ B): satisfiable, needs a chain witness of ops+1 nodes.
        let mut sat = b();
        for _ in 0..ops_n {
            sat = a().including(sat);
        }
        // (…) ∩ B: a name-disjointness contradiction of the same size.
        let mut unsat = a();
        for _ in 0..ops_n - 1 {
            unsat = a().intersect(unsat);
        }
        let unsat = unsat.intersect(b());
        let bounds = Bounds {
            max_nodes: ops_n + 1,
            max_depth: ops_n + 1,
        };
        let checker = EmptinessChecker::new(schema.clone(), bounds);
        let visited = checker.count_models(&sat);
        let (t_unsat, empty) = time_avg(3, || checker.is_empty(&unsat));
        assert!(empty);
        let (t_sat, found) = time_avg(3, || checker.is_empty(&sat));
        assert!(!found);
        println!(
            "{:>4} {:>6} {:>6} | {:>14} | {} {}",
            ops_n,
            bounds.max_nodes,
            bounds.max_depth,
            visited,
            us(t_unsat),
            us(t_sat)
        );
    }
    println!("  (unsat must sweep the whole space; sat stops at the first witness)\n");
}

/// E4 (Theorem 3.5): the 3-CNF reduction — emptiness inherits SAT's cost.
fn e4_cnf_hardness() {
    println!("E4 — Co-NP-hardness: emptiness of e_φ vs DPLL on φ (agreement + cost)");
    println!(
        "{:>5} {:>7} {:>6} | {:>12} {:>12} | {:>9}",
        "vars", "clauses", "sat?", "t(dpll)", "t(witness)", "|e_φ| ops"
    );
    let mut rng = StdRng::seed_from_u64(2025);
    for n in [4usize, 6, 8, 10, 12, 14] {
        let m = (4.3 * n as f64) as usize;
        let cnf = tr_fmft::random_3cnf(&mut rng, n, m);
        let schema = tr_fmft::reduction_schema(n);
        let e = tr_fmft::cnf_to_expr(&cnf, &schema);
        let (t_dpll, sat) = time_avg(3, || cnf.satisfiable());
        // Witness search over the canonical assignment instances: the
        // NP side of the reduction, 2^n instance evaluations worst case.
        let (t_wit, witnessed) = time_avg(1, || {
            (0u64..1 << n).any(|mask| {
                let assignment: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
                !eval(
                    &e,
                    &tr_fmft::assignment_instance(&cnf, &schema, &assignment),
                )
                .is_empty()
            })
        });
        assert_eq!(sat, witnessed);
        println!(
            "{:>5} {:>7} {:>6} | {} {} | {:>9}",
            n,
            m,
            sat,
            us(t_dpll),
            us(t_wit),
            e.num_ops()
        );
    }
    println!("  (both sides agree on every formula; cost grows exponentially in n)\n");
}

/// E5 (Theorems 4.1/4.4): the deletion/reduction invariances, empirically.
fn e5_deletion_reduction() {
    println!("E5 — deletion & reduction theorems (must be 100% agreement)");
    let schema = Schema::new(["A", "B"]);
    let mut rng = StdRng::seed_from_u64(7);
    let mut trials = 0;
    let mut ok = 0;
    for _ in 0..150 {
        let inst = tr_markup::random_hierarchical_instance(&schema, 20, &["x"], 0.3, &mut rng);
        let e = random_expr(&mut rng, &schema, 4);
        let core = tr_ext::deletion_core(&e, &inst);
        ok += tr_ext::check_deletion_invariance(&e, &inst, &core, 6, &mut rng);
        trials += 6;
    }
    println!("  Theorem 4.1 (deletion):  {ok}/{trials} random S-deleted versions agreed");

    let mut agree = 0;
    let mut total = 0;
    for k in [1usize, 2, 3] {
        let (inst, h) = tr_markup::figure_3_instance(k);
        let reduced = tr_ext::reduce(&inst, h.second_a, h.first_a, &[]).expect("isomorphic");
        tr_ext::for_each_expr(&tr_markup::figure_3_schema(), 2, &mut |e| {
            if e.num_order_ops() > 0 {
                return false;
            }
            total += 1;
            let before = eval(e, &inst);
            let after = eval(e, &reduced);
            let invariant = before.is_empty() == after.is_empty()
                && reduced
                    .all_regions()
                    .iter()
                    .all(|r| before.contains(r) == after.contains(r));
            agree += usize::from(invariant);
            false
        });
    }
    println!("  Theorem 4.4 (reduction): {agree}/{total} order-free expressions invariant under reduce\n");
}

fn random_expr(rng: &mut StdRng, schema: &Schema, ops_n: usize) -> Expr {
    if ops_n == 0 {
        return Expr::name(NameId::from_index(rng.gen_range(0..schema.len())));
    }
    if rng.gen_bool(0.15) {
        return random_expr(rng, schema, ops_n - 1).select("x");
    }
    let split = rng.gen_range(0..ops_n);
    Expr::bin(
        tr_core::BinOp::ALL[rng.gen_range(0..7usize)],
        random_expr(rng, schema, split),
        random_expr(rng, schema, ops_n - 1 - split),
    )
}

/// E6/E7 (Theorems 5.1/5.3): exhaustive inexpressibility sweeps.
fn e6_e7_inexpressibility() {
    println!("E6 — Theorem 5.1: no expression of size ≤ 3 computes B ⊃_d A (Figure 2 probes)");
    println!(
        "{:>4} {:>12} {:>9} {:>12}",
        "ops", "expressions", "matching", "time"
    );
    let probes = tr_ext::direct_inclusion_probes(&[6, 8]);
    let schema = tr_markup::figure_2_schema();
    for ops_n in 0..=3 {
        let (t, r) = time_avg(1, || tr_ext::sweep(&schema, ops_n, &probes));
        println!("{:>4} {:>12} {:>9} {}", r.ops, r.checked, r.matching, us(t));
        assert_eq!(r.matching, 0);
    }
    println!();
    println!("E7 — Theorem 5.3: no expression of size ≤ 3 computes C BI (B, A) (Figure 3 probes)");
    println!(
        "{:>4} {:>12} {:>9} {:>12}",
        "ops", "expressions", "matching", "time"
    );
    let probes = tr_ext::both_included_probes(&[1]);
    let schema = tr_markup::figure_3_schema();
    for ops_n in 0..=3 {
        let (t, r) = time_avg(1, || tr_ext::sweep(&schema, ops_n, &probes));
        println!("{:>4} {:>12} {:>9} {}", r.ops, r.checked, r.matching, us(t));
        assert_eq!(r.matching, 0);
    }
    println!();
}

/// E8 (Propositions 5.2/5.4): the bounded-case constructions — cost of
/// expressing the inexpressible when depth/width is bounded.
fn e8_bounded_constructions() {
    println!("E8 — Prop 5.2: ⊃_d as an algebra expression under bounded nesting depth");
    println!(
        "{:>6} {:>10} | {:>12} {:>12} {:>12} | same",
        "depth", "expr ops", "expr eval", "memo eval", "native ⊃_d"
    );
    let schema = Schema::new(["A", "B"]);
    let (qa, qb) = (
        Expr::name(schema.expect_id("A")),
        Expr::name(schema.expect_id("B")),
    );
    for depth in [1usize, 2, 4, 6, 8] {
        let e = tr_ext::direct_including_expr(&qa, &qb, &schema, depth);
        // 400 independent chains: large enough that operator work (not
        // memo-key hashing) dominates.
        let inst = nested_forest_instance(2 * depth, 400);
        let (t_expr, via_expr) = time_avg(20, || eval(&e, &inst));
        let (t_memo, via_memo) = time_avg(20, || tr_core::eval_memo(&e, &inst));
        let (t_nat, via_native) = time_avg(20, || {
            tr_ext::directly_including(&inst, inst.regions_of_name("A"), inst.regions_of_name("B"))
        });
        let same = via_expr == via_native && via_memo == via_native;
        println!(
            "{:>6} {:>10} | {} {} {} | {}",
            depth,
            e.num_ops(),
            us(t_expr),
            us(t_memo),
            us(t_nat),
            same
        );
    }
    println!("  (expression size grows exponentially with depth; memoizing shared");
    println!("   sub-expressions recovers polynomial evaluation — the native operator");
    println!("   is cheaper still)\n");

    println!("E8b — Prop 5.4: BI as an algebra expression under bounded width");
    println!(
        "{:>6} {:>10} | {:>12} {:>12} | same",
        "width", "expr ops", "expr eval", "native BI"
    );
    for width in [2usize, 4, 6, 8] {
        let inst = flat_bi_instance(width / 2, 99);
        let s = inst.schema().clone();
        let e = tr_ext::both_included_expr(
            &Expr::name(s.expect_id("C")),
            &Expr::name(s.expect_id("A")),
            &Expr::name(s.expect_id("B")),
            width,
        );
        let (t_expr, via_expr) = time_avg(10, || eval(&e, &inst));
        let (t_nat, via_native) = time_avg(10, || {
            tr_ext::both_included(
                inst.regions_of_name("C"),
                inst.regions_of_name("A"),
                inst.regions_of_name("B"),
            )
        });
        println!(
            "{:>6} {:>10} | {} {} | {}",
            width,
            e.num_ops(),
            us(t_expr),
            us(t_nat),
            via_expr == via_native
        );
    }
    println!();
}

/// E9 (Section 6): the while-loop programs.
fn e9_programs() {
    println!("E9 — Section 6 programs: ⊃_d cost vs nesting depth");
    println!(
        "{:>6} | {:>12} {:>12} {:>12}",
        "depth", "program", "native", "naive ⊃_d"
    );
    for depth in [4usize, 8, 16, 32, 64] {
        let inst = nested_chain_instance(depth);
        let b = inst.regions_of_name("B").clone();
        let a = inst.regions_of_name("A").clone();
        let (t_prog, via_prog) = time_avg(20, || tr_ext::direct_including_program(&inst, &b, &a));
        let (t_nat, via_nat) = time_avg(20, || tr_ext::directly_including(&inst, &b, &a));
        let (t_naive, via_naive) = time_avg(5, || {
            tr_ext::direct::naive::directly_including(&inst, &b, &a)
        });
        assert_eq!(via_prog, via_nat);
        assert_eq!(via_prog, via_naive);
        println!(
            "{:>6} | {} {} {}",
            depth,
            us(t_prog),
            us(t_nat),
            us(t_naive)
        );
    }
    println!("  (the program's iteration count is the nesting depth, as the paper says)\n");

    println!("E9b — single-loop chain program, full vs RIG-pruned All (Figure 1 instances)");
    println!(
        "{:>9} | {:>12} {:>12} {:>8} | same",
        "regions", "full All", "pruned All", "speedup"
    );
    let rig = Rig::figure_1();
    let schema = rig.schema().clone();
    let chain = vec![
        schema.expect_id("Program"),
        schema.expect_id("Proc"),
        schema.expect_id("Var"),
    ];
    let minimal = MinimalSetProblem::for_chain(rig.clone(), &chain)
        .solve_exact()
        .expect("feasible");
    let keep: Vec<NameId> = minimal
        .iter()
        .copied()
        .chain(chain[1..chain.len() - 1].iter().copied())
        .collect();
    for regions in [500usize, 5_000, 50_000] {
        let inst = figure_1_instance(regions, 12, 3);
        let iters = (200_000 / regions).clamp(3, 100);
        let (t_full, full) = time_avg(iters, || tr_ext::direct_chain_program(&inst, &chain));
        let (t_pruned, pruned) = time_avg(iters, || {
            tr_ext::direct_chain_program_filtered(&inst, &chain, &keep)
        });
        println!(
            "{:>9} | {} {} {:>7.2}x | {}",
            inst.len(),
            us(t_full),
            us(t_pruned),
            t_full / t_pruned,
            full == pruned
        );
    }
    println!(
        "  (pruned All uses the minimal-set solution {:?})\n",
        minimal.len()
    );
}

/// E10 (Proposition 6.1): the minimal set problem.
fn e10_minimal_set() {
    println!("E10 — minimal set problem: exact vs greedy on vertex-cover reductions");
    println!(
        "{:>6} {:>6} | {:>7} {:>7} {:>7} | {:>12} {:>12}",
        "verts", "edges", "VC", "exact", "greedy", "t(exact)", "t(greedy)"
    );
    let mut rng = StdRng::seed_from_u64(31);
    for n in [6usize, 9, 12, 15, 18] {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.3) {
                    edges.push((i, j));
                }
            }
        }
        if edges.is_empty() {
            edges.push((0, 1));
        }
        let p = tr_rig::vertex_cover_to_minimal_set(n, &edges);
        let vc = tr_rig::min_vertex_cover_brute(n, &edges);
        let (t_exact, exact) = time_avg(1, || p.solve_exact().expect("feasible"));
        let (t_greedy, greedy) = time_avg(1, || p.solve_greedy().expect("feasible"));
        assert_eq!(exact.len(), vc);
        assert!(p.covers(&greedy));
        println!(
            "{:>6} {:>6} | {:>7} {:>7} {:>7} | {} {}",
            n,
            edges.len(),
            vc,
            exact.len(),
            greedy.len(),
            us(t_exact),
            us(t_greedy)
        );
    }
    println!("  (exact == brute-force vertex cover, per the reduction; greedy may overshoot)\n");

    println!("E10b — polynomial single-pair case via min-cut (random DAG RIGs)");
    println!(
        "{:>6} {:>8} | {:>7} | {:>12}",
        "names", "edges", "cut", "t(min-cut)"
    );
    for n in [10usize, 20, 40, 80] {
        let names: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
        let schema = Schema::new(names);
        let mut rig = Rig::new(schema.clone());
        let mut edges = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.3) {
                    rig.0.add_edge(NameId::from_index(i), NameId::from_index(j));
                    edges += 1;
                }
            }
        }
        let (u, v) = (NameId::from_index(0), NameId::from_index(n - 1));
        let (t, cut) = time_avg(3, || tr_rig::min_vertex_cut(&rig, u, v));
        println!("{:>6} {:>8} | {:>7} | {}", n, edges, cut.len(), us(t));
    }
    println!();
}

/// E11 (Proposition 3.3): algebra ⇄ restricted formula round trips.
fn e11_translation() {
    println!("E11 — Proposition 3.3: algebra ⇄ restricted FMFT round trips");
    let schema = Schema::new(["A", "B"]);
    let patterns: Vec<String> = vec!["x".into()];
    let mut rng = StdRng::seed_from_u64(12);
    let mut agree = 0;
    let total = 500;
    for _ in 0..total {
        let ops_n = rng.gen_range(1..6);
        let e = random_expr(&mut rng, &schema, ops_n);
        let inst = tr_markup::random_hierarchical_instance(&schema, 25, &["x"], 0.3, &mut rng);
        let phi = tr_fmft::expr_to_formula(&e, &patterns);
        let back = tr_fmft::formula_to_expr(&phi, &schema, &patterns);
        let direct = eval(&e, &inst);
        let model = tr_fmft::Model::from_instance(&inst, &["x"]);
        let mask = tr_fmft::eval_expr_on_model(&e, &model);
        let forest = inst.forest();
        let model_agrees = forest.iter().all(|(u, r, _)| direct.contains(r) == mask[u]);
        let round_trip_agrees = eval(&back, &inst) == direct;
        agree += usize::from(model_agrees && round_trip_agrees);
    }
    println!(
        "  {agree}/{total} random (expression, instance) pairs agreed across both directions\n"
    );
}

/// E13 (Section 7): the n-ary extension expresses the inexpressible —
/// at a join-shaped price the native operators avoid.
fn e13_nary_extension() {
    println!("E13 — Section 7 extension: ⊃_d and BI as n-ary join expressions");
    println!(
        "{:>9} | {:>12} {:>12} | {:>12} {:>12} | same",
        "regions", "⊃_d n-ary", "⊃_d native", "BI n-ary", "BI native"
    );
    let schema = Schema::new(["A", "B", "C"]);
    let direct = tr_nary::direct_including_expr(schema.expect_id("C"), schema.expect_id("A"));
    let bi = tr_nary::both_included_expr(
        schema.expect_id("C"),
        schema.expect_id("A"),
        schema.expect_id("B"),
    );
    for n in [20usize, 60, 120] {
        let inst = flat_bi_instance(n, 7);
        let (t_nd, nd) = time_avg(3, || direct.eval(&inst).to_set());
        let (t_vd, vd) = time_avg(20, || {
            tr_ext::directly_including(&inst, inst.regions_of_name("C"), inst.regions_of_name("A"))
        });
        let (t_nb, nb) = time_avg(3, || bi.eval(&inst).to_set());
        let (t_vb, vb) = time_avg(20, || {
            tr_ext::both_included(
                inst.regions_of_name("C"),
                inst.regions_of_name("A"),
                inst.regions_of_name("B"),
            )
        });
        println!(
            "{:>9} | {} {} | {} {} | {}",
            inst.len(),
            us(t_nd),
            us(t_vd),
            us(t_nb),
            us(t_vb),
            nd == vd && nb == vb
        );
    }
    println!("  (the joins materialize O(n²)/O(n³) intermediates — expressible ≠ cheap,");
    println!("   which is why Section 6's loop programs remain the practical route)\n");
}

/// E14: the serve layer — end-to-end request throughput over loopback
/// TCP as concurrency grows. Not gated: absolute numbers swing with the
/// host's scheduler; the *shape* (scaling until the worker pool
/// saturates) is what the table documents.
///
/// Closed-loop, and honestly so: each connection issues its next request
/// only after the previous reply, and a shed (`rejected`) or expired
/// (`timeout`) reply is **counted, not retried** — folding retries into
/// the total used to overstate throughput exactly when the server was
/// saturated. `attempted/s` is the rate the clients offered under that
/// closed loop; `ok/s` is what the server actually completed. For true
/// open-loop offered rates (arrivals that do not wait for replies) see
/// E18 / `tr-bencher`.
fn e14_serve_throughput() {
    use tr_serve::{Catalog, Client, Server, ServerConfig};

    println!("E14 — tr-serve: request throughput vs concurrent connections");
    println!(
        "{:>6} | {:>9} {:>12} | {:>11} {:>9} | {:>8} {:>7}",
        "conns", "attempted", "wall", "attempted/s", "ok/s", "rejected", "expired"
    );
    // A mid-sized synthetic play: enough regions that queries do real
    // work, small enough that the table regenerates in seconds.
    let mut text = String::from("<play>");
    for act in 0..20 {
        text.push_str("<act>");
        for sp in 0..40 {
            text.push_str(&format!(
                "<speech>speak {} words of scene {} and verse {}</speech>",
                ["love", "death", "york", "crown"][sp % 4],
                act,
                sp
            ));
        }
        text.push_str("</act>");
    }
    text.push_str("</play>");
    let mut catalog = Catalog::new();
    catalog.insert(
        "play",
        tr_query::Engine::from_sgml(&text).expect("valid synthetic corpus"),
    );
    let server = Server::start(catalog, "127.0.0.1:0", ServerConfig::default())
        .expect("ephemeral port bind");
    let addr = server.local_addr();

    const QUERIES: [&str; 4] = [
        r#"speech matching "love""#,
        "speech within act",
        r#"act containing (speech matching "crown")"#,
        "speech",
    ];
    for conns in [1usize, 2, 4, 8, 16] {
        let per_conn = 150;
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let (mut ok, mut rejected, mut expired) = (0u64, 0u64, 0u64);
                    for i in 0..per_conn {
                        let q = QUERIES[(c + i) % QUERIES.len()];
                        // Every outcome is part of the measured story:
                        // count shed/expired replies rather than retrying
                        // them, or saturation silently inflates the total.
                        match client.query("play", q) {
                            Ok(_) => ok += 1,
                            Err(e) if e.is_rejected() => rejected += 1,
                            Err(e) if e.code() == Some("timeout") => expired += 1,
                            Err(e) => panic!("serve bench request failed: {e}"),
                        }
                    }
                    (ok, rejected, expired)
                })
            })
            .collect();
        let (mut ok, mut rejected, mut expired) = (0u64, 0u64, 0u64);
        for h in handles {
            let (o, r, x) = h.join().expect("bench client");
            ok += o;
            rejected += r;
            expired += x;
        }
        let wall = start.elapsed().as_secs_f64();
        let attempted = (conns * per_conn) as f64;
        println!(
            "{:>6} | {:>9} {} | {:>11.0} {:>9.0} | {:>8} {:>7}",
            conns,
            conns * per_conn,
            us(wall),
            attempted / wall,
            ok as f64 / wall,
            rejected,
            expired,
        );
    }
    server.shutdown();
    println!("  (loopback TCP, default config: workers = min(cores, 8), queue 128.");
    println!("   Repeated queries are engine result-cache hits, so the wire and");
    println!("   thread hand-offs dominate: the table reports protocol overhead,");
    println!("   not query evaluation. attempted/s = ok/s whenever nothing is");
    println!("   shed; a gap between the columns is the saturation signal the");
    println!("   old retry loop used to hide. Open-loop rates: E18/tr-bencher.)\n");
}

/// E15: the result-cache hit path. With Arc-backed columnar storage a
/// hit is fingerprint + lookup + handle clone — O(1) in result size —
/// so the "hot hit" column should stay flat as the document (and the
/// cached result) grows. The last column repeats the hit through
/// [`tr_query::SessionViews`], pricing the per-session view merge that
/// the server's `query_with` path pays before the cache lookup.
fn e15_cache_hit_latency() {
    use tr_query::{Engine, SessionViews};

    println!("E15 — result-cache hit latency (zero-copy handle clone)");
    println!(
        "{:>7} | {:>9} | {:>12} {:>12} {:>12}",
        "procs", "|result|", "cold", "hot hit", "hit+views"
    );
    let q = "Name within Proc_header within Proc within Program";
    for procs in [200usize, 2_000, 8_000] {
        let (text, _) = program_workload(procs, 42);
        let engine = Engine::from_source(&text)
            .expect("generated programs parse")
            .with_exec_config(tr_core::ExecConfig {
                threads: 2,
                kernel_cutoff: tr_core::par::DEFAULT_CUTOFF,
            });
        let (t_cold, hits) = time_avg(1, || engine.query(q).expect("gate query runs"));
        let (t_hot, _) = time_avg(2_000, || engine.query(q).expect("gate query runs"));
        let mut session = SessionViews::new();
        engine
            .define_session_view(&mut session, "hdrs", "Proc_header within Proc")
            .expect("view definition parses");
        engine.query_with(&session, q).expect("gate query runs");
        let (t_view, _) = time_avg(2_000, || {
            engine.query_with(&session, q).expect("gate query runs")
        });
        println!(
            "{:>7} | {:>9} | {} {} {}",
            procs,
            hits.len(),
            us(t_cold),
            us(t_hot),
            us(t_view),
        );
    }
    println!("  (a hit returns a clone of the cached handle — a refcount bump,");
    println!("   no region copies, so latency is flat in result size; the views");
    println!("   column adds the session-view merge done before the lookup)\n");
}

/// E16: the segmented corpus engine. One SGML document is partitioned
/// into N position-range segments; every plan node then evaluates per
/// segment (boundary-window operands, serial kernels) with the segments
/// fanned across threads and the results re-glued by ordered merge. The
/// oracle — enforced by proptests — is that the output is byte-identical
/// at every N; this table reports what the parallelism buys.
fn e16_segment_scaling() {
    use tr_query::Engine;

    let threads = tr_core::par::available_threads().min(8);
    println!("E16 — segmented execution: cold batch time vs segment count");
    println!(
        "  ({} threads; identical results at every N — same document, same queries)",
        threads
    );
    println!(
        "{:>10} | {:>8} | {:>12} {:>8} | same",
        "sections", "N", "cold batch", "speedup"
    );
    const QUERIES: [&str; 5] = [
        r#"sec matching "algebra""#,
        "note within sec",
        r#"sec containing (note matching "region")"#,
        "p within sec",
        r#"(sec containing note) intersect (sec matching "query")"#,
    ];
    for sections in [500usize, 3_000] {
        let text = sgml_workload(sections, 42);
        let make = |n: usize| {
            Engine::from_sgml(&text)
                .expect("generated SGML parses")
                .with_exec_config(tr_core::ExecConfig {
                    threads,
                    kernel_cutoff: tr_core::par::DEFAULT_CUTOFF,
                })
                .with_segments(n)
        };
        let baseline_engine = make(1);
        let baseline = baseline_engine
            .query_batch(&QUERIES)
            .expect("E16 queries run");
        let mut t1 = 0.0;
        for n in [1usize, 2, 4, 8, 16] {
            let engine = make(n);
            let (t, out) = time_avg(8, || {
                engine.clear_result_cache();
                engine.query_batch(&QUERIES).expect("E16 queries run")
            });
            if n == 1 {
                t1 = t;
            }
            println!(
                "{:>10} | {:>8} | {} {:>7.2}x | {}",
                sections,
                n,
                us(t),
                t1 / t,
                out == baseline
            );
        }
    }
    println!("  (N = 1 is the unsegmented executor; larger N trades merge overhead");
    println!("   for per-segment parallelism, so the sweet spot tracks core count.");
    println!("   The oracle column re-checks byte-identity on every row.)\n");
}

/// E12: the text substrate (the PAT-engine substitute).
fn e12_text_index() {
    println!("E12 — suffix-array word index: build and query cost");
    println!(
        "{:>10} | {:>12} {:>14} {:>14} | {:>8}",
        "bytes", "build", "cold lookup", "W(r,p) x1000", "hits"
    );
    for n in [10_000usize, 100_000, 1_000_000] {
        let text = synthetic_text(n, 5);
        let (t_build, idx) = time_avg(1, || tr_text::SuffixWordIndex::new(text.clone()));
        // First (un-memoized) occurrence-list computation for a pattern.
        let start = std::time::Instant::now();
        let hits = idx.occurrences("region").len();
        let t_occ = start.elapsed().as_secs_f64();
        let regions: Vec<tr_core::Region> = (0..1000)
            .map(|i| tr_core::region(i * 97 % (n as u32 - 50), i * 97 % (n as u32 - 50) + 49))
            .collect();
        let (t_w, _) = time_avg(5, || {
            regions
                .iter()
                .filter(|&&r| tr_core::WordIndex::matches(&idx, r, "region"))
                .count()
        });
        println!(
            "{:>10} | {} {} {} | {:>8}",
            n,
            us(t_build),
            us(t_occ),
            us(t_w),
            hits
        );
    }
    println!("  (W(r,p) is a binary search after the first memoized lookup — PAT-style)\n");
}

/// E17: the raw-speed floor — store v3 mapped opens vs the streaming
/// decoder, and the chunked (SIMD-shaped) kernels vs forced-scalar.
fn e17_store_and_kernels() {
    println!("E17a — store open: v3 mapped vs v2 streaming decode");
    println!(
        "{:>9} | {:>10} | {:>12} {:>12} {:>8}",
        "regions", "file", "mmap open", "decode open", "speedup"
    );
    let dir = std::env::temp_dir().join(format!("tr_e17_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("E17 temp dir");
    for n in [100_000usize, 1_000_000] {
        let (text, inst) = store_workload(n);
        let v3 = dir.join(format!("doc_{n}_v3.trx"));
        let v2 = dir.join(format!("doc_{n}_v2.trx"));
        tr_store::save_document(&v3, &text, &inst, None).expect("v3 save");
        tr_store::save_document_v2(&v2, &text, &inst, None).expect("v2 save");
        let bytes = std::fs::metadata(&v3).expect("v3 written").len();
        // The mapped open verifies the header and hashes each column on
        // first touch, but never decodes the suffix array or text — the
        // decode path rebuilds the whole document before answering.
        let (t_map, store) = time_avg(3, || {
            let store = tr_store::MappedStore::open(&v3).expect("v3 mapped open");
            for i in 0..store.manifest().names.len() {
                store.regions(i).expect("column verifies");
            }
            store
        });
        std::hint::black_box(store);
        let (t_dec, doc) = time_avg(3, || tr_store::load_document_auto(&v2).expect("v2 decode"));
        std::hint::black_box(doc);
        println!(
            "{:>9} | {:>7.1} MB | {} {} {:>7.1}x",
            n,
            bytes as f64 / 1e6,
            us(t_map),
            us(t_dec),
            t_dec / t_map
        );
    }
    std::fs::remove_dir_all(&dir).ok();
    println!("  (mapped open is O(header) + column hashing; decode is O(file) —");
    println!("   suffix array, text, and every column pass through the codec)\n");

    println!("E17b — operator kernels: forced-scalar vs chunked (lanes of 8)");
    println!(
        "{:>9} | {:>7} | {:>12} {:>12} {:>8} | same",
        "|R|", "op", "scalar", "chunked", "speedup"
    );
    use tr_core::kernel::{set_mode, Mode};
    type OpFn = fn(&tr_core::RegionSet, &tr_core::RegionSet) -> tr_core::RegionSet;
    for n in [100_000usize, 1_000_000] {
        let (parents, children) = operator_workload(n);
        // Few wide partners, each spanning ~1000 rows: the `included_in`
        // sweep sees long constant-window runs, the chunked kernel's
        // designed case. The paired workload above is the adversarial
        // one: one partner per row, so every run is a scalar tail.
        let spans = tr_core::RegionSet::from_sorted(
            (0..(n as tr_core::Pos / 1000).max(1))
                .map(|j| tr_core::region(j * 10_000, j * 10_000 + 9_999))
                .collect(),
        );
        let cases: [(&str, OpFn, &tr_core::RegionSet, &tr_core::RegionSet); 4] = [
            ("⊂ short", ops::included_in, &children, &parents),
            ("⊂ long", ops::included_in, &parents, &spans),
            ("<", ops::precedes, &parents, &children),
            (">", ops::follows, &parents, &children),
        ];
        for (sym, op, a, b) in cases {
            let iters = (2_000_000 / n).clamp(2, 50);
            set_mode(Mode::ForceScalar);
            let (t_sc, out_sc) = time_avg(iters, || op(a, b));
            set_mode(Mode::ForceChunked);
            let (t_ch, out_ch) = time_avg(iters, || op(a, b));
            set_mode(Mode::Auto);
            println!(
                "{:>9} | {:>7} | {} {} {:>7.2}x | {}",
                a.len(),
                sym,
                us(t_sc),
                us(t_ch),
                t_sc / t_ch,
                out_sc == out_ch
            );
        }
    }
    println!("  (the chunked kernels compute 8-wide branchless comparison masks;");
    println!("   Auto mode follows the `simd` crate feature — default on. `⊂ short`");
    println!("   is one partner per row — every run lands on the scalar tail, so");
    println!("   chunked costs scalar. `includes` is a pure merge sweep and never");
    println!("   touches the mask kernels.)\n");
}
