//! The CI performance-regression gate.
//!
//! A small suite of named *hot-path* benchmarks (operator kernels, the
//! batch engine cold and cached, text index construction) measured with
//! wall-clock timing **and** deterministic work counters read from the
//! `tr_obs` registry. `report --emit-baseline` writes the suite's results
//! as JSON (the committed `BENCH_BASELINE.json`); `report --check` re-runs
//! the suite and fails when a bench got more than [`DEFAULT_TOLERANCE`]
//! slower than the baseline, or does more than that much extra work.
//!
//! Two guards make the timing comparison survive CI-machine variance:
//!
//! * every run includes a fixed CPU-bound `calibrate` bench, and the
//!   checker rescales all baseline times by the observed calibration
//!   ratio before applying the tolerance — a uniformly slower machine
//!   does not trip the gate, a genuinely slower hot path does;
//! * the work counters (plan nodes executed, cache hits, patterns
//!   computed) have no noise at all, so algorithmic regressions — a
//!   broken cache, lost plan sharing — fail deterministically even when
//!   timing happens to absorb them.

use crate::{operator_workload, program_workload, synthetic_text};
use tr_core::{ops, ExecConfig};
use tr_obs::Json;
use tr_query::Engine;

/// Default failure threshold: 20% slower (or 20% more work) than baseline.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Baseline/result schema version (bump when bench definitions change).
/// v2: columnar `RegionSet` storage — adds the `cache_hit_hot` bench and
/// the `engine.cache.bytes_avoided` / `exec.base_zero_copy` counters.
/// v3: segmented execution — adds the `segment_scaling` bench and the
/// `corpus.segments` / `exec.segment_waves` counters (and the engine
/// benches now run segmented, since their documents exceed one segment).
/// v4: mmap-backed store v3 + chunked kernels — adds the
/// `store_open_cold_1m` / `store_open_decode_1m` benches with the
/// [`MIN_MMAP_SPEEDUP`] ratio rule, and the `exec.kernel_simd` /
/// `exec.kernel_scalar_tail` / `store.mmap_opens` /
/// `store.decode_fallbacks` counters.
/// v5: cost-based planner — adds a fusable query to [`GATE_QUERIES`],
/// the `plan_structural_cold` / `plan_costbased_cold` benches with the
/// [`MAX_PLAN_SLOWDOWN`] ratio rule, and the `plan.rewrites_applied`
/// counter.
pub const SUITE_VERSION: u64 = 5;

/// The mapped-open promise as a *ratio*, immune to machine speed: a v3
/// mapped cold open (`store_open_cold_1m`) must be at least this many
/// times faster than the v2 streaming decode of the same document
/// (`store_open_decode_1m`), measured in the same run.
pub const MIN_MMAP_SPEEDUP: f64 = 5.0;

/// The plan-quality promise, also a same-run ratio: the cost-based
/// planner (`plan_costbased_cold`) may cost at most this factor of
/// structural lowering (`plan_structural_cold`) on the tracked suite —
/// i.e. rewrite search and segmentation choice must pay for themselves,
/// never plan a tracked query materially slower than the old fixed
/// heuristics. Planning itself is memoized per expression, so the
/// steady-state overhead is a memo lookup; the headroom absorbs timer
/// noise between two sub-millisecond loops, not regressions — a planner
/// gone wrong (the failure this rule exists for) is integer factors
/// slower, not 25%.
pub const MAX_PLAN_SLOWDOWN: f64 = 1.25;

/// One measured hot-path bench.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Stable bench name (baseline keys).
    pub name: String,
    /// Per-iteration wall time in seconds.
    pub secs: f64,
    /// Deterministic work counters for one execution (obs registry
    /// deltas), sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// A full suite run (or a parsed baseline).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Suite {
    /// Results in suite order.
    pub benches: Vec<BenchResult>,
}

impl Suite {
    /// Looks up a bench by name.
    pub fn get(&self, name: &str) -> Option<&BenchResult> {
        self.benches.iter().find(|b| b.name == name)
    }

    /// The suite as JSON (the `BENCH_BASELINE.json` format).
    pub fn to_json(&self) -> Json {
        let benches = self
            .benches
            .iter()
            .map(|b| {
                let mut counters = Json::obj();
                for (k, v) in &b.counters {
                    counters.set(k, Json::from(*v));
                }
                Json::obj()
                    .with("name", Json::from(b.name.as_str()))
                    .with("secs", Json::from(b.secs))
                    .with("counters", counters)
            })
            .collect();
        Json::obj()
            .with("version", Json::from(SUITE_VERSION))
            .with("benches", Json::Arr(benches))
    }

    /// Parses the [`Suite::to_json`] format.
    pub fn from_json(j: &Json) -> Result<Suite, String> {
        let version = j
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("missing version")?;
        if version != SUITE_VERSION {
            return Err(format!(
                "baseline version {version} != suite version {SUITE_VERSION}; \
                 refresh with --emit-baseline"
            ));
        }
        let mut benches = Vec::new();
        for b in j
            .get("benches")
            .and_then(Json::as_arr)
            .ok_or("missing benches")?
        {
            let name = b
                .get("name")
                .and_then(Json::as_str)
                .ok_or("bench missing name")?
                .to_owned();
            let secs = b
                .get("secs")
                .and_then(Json::as_f64)
                .ok_or("bench missing secs")?;
            let mut counters = Vec::new();
            if let Some(pairs) = b.get("counters").and_then(Json::as_obj) {
                for (k, v) in pairs {
                    counters.push((k.clone(), v.as_u64().ok_or("bad counter value")?));
                }
            }
            benches.push(BenchResult {
                name,
                secs,
                counters,
            });
        }
        Ok(Suite { benches })
    }
}

/// Counters whose deltas are recorded per bench: deterministic under a
/// fixed [`ExecConfig`], machine-independent, and each guarding a real
/// optimization (plan sharing, the result cache, pattern memoization).
const TRACKED_COUNTERS: [&str; 16] = [
    "plan.rewrites_applied",
    "engine.queries",
    "engine.cache.hits",
    "engine.cache.misses",
    "engine.cache.bytes_avoided",
    "corpus.segments",
    "exec.nodes",
    "exec.base_zero_copy",
    "exec.kernel_simd",
    "exec.kernel_scalar_tail",
    "exec.rmq_built",
    "exec.pm_built",
    "exec.segment_waves",
    "store.mmap_opens",
    "store.decode_fallbacks",
    "text.pattern.computed",
];

fn counter_deltas(before: &[(String, u64)]) -> Vec<(String, u64)> {
    let after = tr_obs::counter_values();
    let mut out = Vec::new();
    for (name, now) in after {
        if !TRACKED_COUNTERS.contains(&name.as_str()) {
            continue;
        }
        let was = before
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        if now > was {
            out.push((name, now - was));
        }
    }
    out
}

/// The fixed CPU-bound calibration workload: ~4 ms of serial integer
/// mixing, dependent enough that nothing vectorizes or folds away. Both
/// gates normalize with it — this perf gate rescales baseline times by
/// the observed ratio, and the load gate (`tr-bencher check`) scales its
/// p99 budgets the same way — so the two agree on what "a slower
/// machine" means.
pub fn calibration_workload() -> u64 {
    let mut acc = 0u64;
    for i in 0..20_000_000u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

/// Best-of-9 seconds for [`calibration_workload`] — the number a
/// baseline's `calibrate` entry records, measured fresh.
pub fn calibration_secs() -> f64 {
    time_min(9, &mut || std::hint::black_box(calibration_workload()))
}

/// Best-of-`iters` wall time. The *minimum* is the estimator here, not
/// the mean: scheduling noise and frequency scaling only ever add time,
/// so the min converges on the true cost and keeps run-to-run variance
/// far below the gate's tolerance.
fn time_min<T>(iters: usize, f: &mut impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Times `f` and captures its tracked-counter delta over one execution.
fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> BenchResult {
    // Warm up and capture counters over exactly one execution, so the
    // recorded work is per-run, not per-suite.
    f();
    let before = tr_obs::counter_values();
    f();
    let counters = counter_deltas(&before);
    let secs = time_min(iters, &mut f);
    BenchResult {
        name: name.to_owned(),
        secs,
        counters,
    }
}

/// The mixed query batch the engine benches run (heavy sub-expression
/// sharing; all names from the Figure 1 schema, `"x"` from the generator's
/// variable vocabulary).
pub const GATE_QUERIES: [&str; 7] = [
    "Name within Proc_header within Proc within Program",
    r#"Var matching "x""#,
    r#"Proc containing (Var matching "x")"#,
    "Proc_header within Proc",
    r#"(Proc containing (Var matching "x")) intersect (Proc_header within Proc)"#,
    "Var within Proc_body",
    // Fusable under the synthesized rule set: two `containing` filters
    // over the same base collapse to one pass, so this query is where
    // the cost-based planner visibly earns its keep.
    r#"(Proc containing (Var matching "x")) intersect (Proc containing Proc_header)"#,
];

/// Runs the hot-path suite. `handicap` multiplies every measured time
/// (1.0 for honest runs; >1 simulates a regression so the gate's failure
/// path can be exercised end to end).
pub fn run_suite(handicap: f64) -> Suite {
    let mut benches = Vec::new();

    // A fixed CPU-bound workload for cross-machine normalization; its
    // time is never gated, only used to rescale the others. Long enough
    // (~4 ms) that timer noise is negligible against it.
    benches.push(bench("calibrate", 9, || {
        std::hint::black_box(calibration_workload())
    }));

    // Operator kernels over large flat sets (the paper's core operators).
    let (parents, children) = operator_workload(200_000);
    benches.push(bench("op_includes_200k", 20, || {
        ops::includes(&parents, &children)
    }));
    benches.push(bench("op_included_in_200k", 20, || {
        ops::included_in(&children, &parents)
    }));
    benches.push(bench("op_precedes_200k", 20, || {
        ops::precedes(&parents, &children)
    }));

    // The end-to-end engine: parse + plan + execute a mixed batch, cold
    // (cache cleared every run) and fully cached. Threads are pinned so
    // the work counters are machine-independent.
    let (text, _) = program_workload(2_000, 42);
    let engine = || {
        Engine::from_source(&text)
            .expect("generated programs parse")
            .with_exec_config(ExecConfig {
                threads: 2,
                kernel_cutoff: tr_core::par::DEFAULT_CUTOFF,
            })
    };
    let cold = engine();
    benches.push(bench("batch_cold_2k_procs", 10, || {
        cold.clear_result_cache();
        cold.query_batch(&GATE_QUERIES).expect("gate queries run")
    }));
    let cached = engine();
    cached.query_batch(&GATE_QUERIES).expect("gate queries run");
    benches.push(bench("batch_cached_2k_procs", 50, || {
        cached.query_batch(&GATE_QUERIES).expect("gate queries run")
    }));

    // The single-query hot cache-hit path: fingerprint + lookup + handle
    // clone. With columnar storage the clone is O(1), so this bench gates
    // the constant-time promise of the zero-copy representation.
    benches.push(bench("cache_hit_hot", 200, || {
        cached.query(GATE_QUERIES[0]).expect("gate query runs")
    }));

    // Plan quality: the same cold batch under structural lowering vs the
    // cost-based planner, in one run. `check` holds the pair to the
    // MAX_PLAN_SLOWDOWN ratio — the planner must never make a tracked
    // query slower than the fixed heuristics it replaced.
    benches.extend(plan_quality_benches(&text));

    // Segmented execution: corpus construction plus a cold batch on an
    // 8-segment engine. `corpus.segments` and `exec.segment_waves` are
    // pure functions of the workload (never of core count), so this bench
    // deterministically guards both the partitioning heuristic and the
    // per-node wave structure of the segmented executor. One pinned
    // thread: the waves then run inline, so the timing tracks the
    // split/window/merge machinery itself rather than scheduler jitter
    // (the parallel payoff is E16's story, not the gate's).
    let seg_engine = engine()
        .with_exec_config(ExecConfig {
            threads: 1,
            kernel_cutoff: tr_core::par::DEFAULT_CUTOFF,
        })
        .with_segments(8);
    benches.push(bench("segment_scaling", 40, || {
        let corpus = tr_core::Corpus::from_instance(seg_engine.instance(), text.len(), 8);
        seg_engine.clear_result_cache();
        let out = seg_engine
            .query_batch(&GATE_QUERIES)
            .expect("gate queries run");
        (corpus.num_segments(), out)
    }));

    // Text substrate: suffix-array index construction.
    let text_bytes = synthetic_text(262_144, 5);
    benches.push(bench("index_build_256k", 3, || {
        tr_text::SuffixWordIndex::new(text_bytes.clone())
    }));

    // Store open paths over a million-region document: the v3 mapped
    // cold open (manifest + directory decode, then hash-verified
    // zero-decode column views — forced here, so this is the full
    // engine-ready cost) against the v2 streaming decode of the same
    // document. `check` holds the two to the MIN_MMAP_SPEEDUP ratio,
    // which is machine-independent, so the absolute times are gated
    // loosely (tolerance) while the *relationship* is gated hard.
    let (stext, sinst) = crate::store_workload(1_000_000);
    let dir = std::env::temp_dir().join(format!("tr_gate_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("gate temp dir");
    let v3 = dir.join("doc_v3.trx");
    let v2 = dir.join("doc_v2.trx");
    tr_store::save_document(&v3, &stext, &sinst, None).expect("v3 save");
    tr_store::save_document_v2(&v2, &stext, &sinst, None).expect("v2 save");
    benches.push(bench("store_open_cold_1m", 3, || {
        let store = tr_store::MappedStore::open(&v3).expect("v3 mapped open");
        for i in 0..store.manifest().names.len() {
            store.regions(i).expect("column verifies");
        }
        store
    }));
    benches.push(bench("store_open_decode_1m", 3, || {
        tr_store::load_document_auto(&v2).expect("v2 decode open")
    }));
    std::fs::remove_dir_all(&dir).ok();

    // The handicap simulates the *hot paths* regressing on an unchanged
    // machine, so calibration is exempt — otherwise normalization would
    // cancel it out.
    for b in &mut benches {
        if b.name != "calibrate" {
            b.secs *= handicap;
        }
    }
    Suite { benches }
}

/// The two plan-quality benches: an identical cold batch lowered
/// structurally and through the cost-based planner. Before timing, the
/// results are asserted byte-identical — the ratio rule compares speed
/// only because correctness is pinned here (and by the oracle proptests).
fn plan_quality_benches(text: &str) -> Vec<BenchResult> {
    let mk = |mode: tr_core::PlannerMode| {
        Engine::from_source(text)
            .expect("generated programs parse")
            .with_exec_config(ExecConfig {
                threads: 2,
                kernel_cutoff: tr_core::par::DEFAULT_CUTOFF,
            })
            .with_planner_mode(mode)
    };
    let structural = mk(tr_core::PlannerMode::Structural);
    let costbased = mk(tr_core::PlannerMode::CostBased);
    let rewrites0 = tr_obs::counter_value("plan.rewrites_applied");
    let a = structural.query_batch(&GATE_QUERIES).expect("gate queries");
    let b = costbased.query_batch(&GATE_QUERIES).expect("gate queries");
    assert_eq!(a, b, "planner modes must agree byte-for-byte");
    // Planning is memoized per distinct expression, so the rewrite count
    // is a first-batch (cold-plan) delta — deterministic in the rule set
    // and the workload, recorded on the cost-based bench by hand.
    let rewrites = tr_obs::counter_value("plan.rewrites_applied") - rewrites0;
    let mut out = vec![
        bench("plan_structural_cold", 20, || {
            structural.clear_result_cache();
            structural.query_batch(&GATE_QUERIES).expect("gate queries")
        }),
        bench("plan_costbased_cold", 20, || {
            costbased.clear_result_cache();
            costbased.query_batch(&GATE_QUERIES).expect("gate queries")
        }),
    ];
    let cb = &mut out[1];
    cb.counters.retain(|(n, _)| n != "plan.rewrites_applied");
    cb.counters
        .push(("plan.rewrites_applied".to_owned(), rewrites));
    cb.counters.sort();
    out
}

/// Runs only the plan-quality pair (the `report --plan-gate` leg): much
/// faster than the full suite, no baseline needed — the verdict is the
/// same-run [`MAX_PLAN_SLOWDOWN`] ratio that `check` also enforces.
pub fn run_plan_quality() -> Suite {
    let (text, _) = program_workload(2_000, 42);
    Suite {
        benches: plan_quality_benches(&text),
    }
}

/// One gate violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The offending bench.
    pub bench: String,
    /// What regressed (`time` or a counter name).
    pub what: String,
    /// Baseline value (seconds or count; time already normalized).
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} regressed {:.1}% (baseline {:.3e}, current {:.3e})",
            self.bench,
            self.what,
            (self.current / self.baseline - 1.0) * 100.0,
            self.baseline,
            self.current
        )
    }
}

/// Compares a fresh run against a baseline. Returns every violation of
/// `tolerance` (fractional, e.g. 0.2 = 20%). Baseline times are rescaled
/// by the calibration ratio first; counters compare raw.
pub fn check(current: &Suite, baseline: &Suite, tolerance: f64) -> Vec<Regression> {
    let scale = match (current.get("calibrate"), baseline.get("calibrate")) {
        (Some(c), Some(b)) if b.secs > 0.0 => c.secs / b.secs,
        _ => 1.0,
    };
    let mut out = Vec::new();
    for base in &baseline.benches {
        if base.name == "calibrate" {
            continue;
        }
        let Some(cur) = current.get(&base.name) else {
            out.push(Regression {
                bench: base.name.clone(),
                what: "missing from current run".into(),
                baseline: base.secs,
                current: 0.0,
            });
            continue;
        };
        let allowed = base.secs * scale * (1.0 + tolerance);
        if cur.secs > allowed {
            out.push(Regression {
                bench: base.name.clone(),
                what: "time".into(),
                baseline: base.secs * scale,
                current: cur.secs,
            });
        }
        for (name, base_v) in &base.counters {
            let cur_v = cur
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            if cur_v as f64 > *base_v as f64 * (1.0 + tolerance) {
                out.push(Regression {
                    bench: base.name.clone(),
                    what: name.clone(),
                    baseline: *base_v as f64,
                    current: cur_v as f64,
                });
            }
        }
    }
    // The mapped-open ratio rule (v4): evaluated on the *current* run
    // alone — both benches share the machine and the moment, so no
    // calibration is needed and no baseline drift can mask a regression
    // of the zero-decode path back toward a full decode.
    if let (Some(cold), Some(decode)) = (
        current.get("store_open_cold_1m"),
        current.get("store_open_decode_1m"),
    ) {
        if cold.secs > 0.0 && decode.secs / cold.secs < MIN_MMAP_SPEEDUP {
            out.push(Regression {
                bench: "store_open_cold_1m".into(),
                what: format!("mmap speedup below {MIN_MMAP_SPEEDUP}x"),
                baseline: MIN_MMAP_SPEEDUP,
                current: decode.secs / cold.secs,
            });
        }
    }
    // The plan-quality ratio rule (v5), same-run for the same reason:
    // the cost-based planner must not lower the tracked batch slower
    // than structural lowering does, whatever the machine.
    if let (Some(structural), Some(costbased)) = (
        current.get("plan_structural_cold"),
        current.get("plan_costbased_cold"),
    ) {
        if structural.secs > 0.0 && costbased.secs / structural.secs > MAX_PLAN_SLOWDOWN {
            out.push(Regression {
                bench: "plan_costbased_cold".into(),
                what: format!("cost-based plans slower than structural x{MAX_PLAN_SLOWDOWN}"),
                baseline: MAX_PLAN_SLOWDOWN,
                current: costbased.secs / structural.secs,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    type Entry<'a> = (&'a str, f64, &'a [(&'a str, u64)]);

    fn suite(entries: &[Entry<'_>]) -> Suite {
        Suite {
            benches: entries
                .iter()
                .map(|(name, secs, counters)| BenchResult {
                    name: (*name).to_owned(),
                    secs: *secs,
                    counters: counters
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), *v))
                        .collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn json_round_trip() {
        let s = suite(&[
            ("calibrate", 1e-3, &[]),
            ("op", 2.5e-4, &[("exec.nodes", 12)]),
        ]);
        let parsed = Suite::from_json(&tr_obs::parse_json(&s.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut j = suite(&[]).to_json();
        j.set("version", Json::from(999u64));
        assert!(Suite::from_json(&j).unwrap_err().contains("version"));
    }

    #[test]
    fn within_tolerance_passes() {
        let base = suite(&[("calibrate", 1.0, &[]), ("op", 1.0, &[("exec.nodes", 10)])]);
        let cur = suite(&[("calibrate", 1.0, &[]), ("op", 1.15, &[("exec.nodes", 10)])]);
        assert!(check(&cur, &base, 0.2).is_empty());
    }

    #[test]
    fn time_regression_fails() {
        let base = suite(&[("calibrate", 1.0, &[]), ("op", 1.0, &[])]);
        let cur = suite(&[("calibrate", 1.0, &[]), ("op", 1.3, &[])]);
        let regs = check(&cur, &base, 0.2);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].what, "time");
        assert!(regs[0].to_string().contains("op"));
    }

    #[test]
    fn calibration_rescues_a_uniformly_slower_machine() {
        let base = suite(&[("calibrate", 1.0, &[]), ("op", 1.0, &[])]);
        // Everything 2x slower (slower CI runner), hot path unchanged
        // relative to calibration: passes.
        let cur = suite(&[("calibrate", 2.0, &[]), ("op", 2.1, &[])]);
        assert!(check(&cur, &base, 0.2).is_empty());
        // Hot path 2x slower *beyond* the machine factor: fails.
        let cur = suite(&[("calibrate", 2.0, &[]), ("op", 4.2, &[])]);
        assert_eq!(check(&cur, &base, 0.2).len(), 1);
    }

    #[test]
    fn counter_regression_fails_deterministically() {
        let base = suite(&[("op", 1.0, &[("engine.cache.hits", 6), ("exec.nodes", 10)])]);
        // Same speed, but the plan stopped sharing: 2x the nodes.
        let cur = suite(&[("op", 1.0, &[("engine.cache.hits", 6), ("exec.nodes", 20)])]);
        let regs = check(&cur, &base, 0.2);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].what, "exec.nodes");
    }

    #[test]
    fn mmap_speedup_ratio_is_enforced() {
        // 10x faster than the decode open: the ratio rule is satisfied.
        let ok = suite(&[
            ("store_open_cold_1m", 1e-3, &[]),
            ("store_open_decode_1m", 1e-2, &[]),
        ]);
        assert!(check(&ok, &ok, DEFAULT_TOLERANCE).is_empty());
        // Only 4x faster: every time matches its baseline exactly, so
        // nothing is "slower" — but the ratio rule still fires, because
        // the mapped open lost its zero-decode advantage.
        let bad = suite(&[
            ("store_open_cold_1m", 2.5e-3, &[]),
            ("store_open_decode_1m", 1e-2, &[]),
        ]);
        let regs = check(&bad, &bad, DEFAULT_TOLERANCE);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].what.contains("speedup"), "{}", regs[0]);
    }

    #[test]
    fn plan_slowdown_ratio_is_enforced() {
        // Cost-based marginally faster: fine.
        let ok = suite(&[
            ("plan_structural_cold", 1e-2, &[]),
            ("plan_costbased_cold", 9e-3, &[]),
        ]);
        assert!(check(&ok, &ok, DEFAULT_TOLERANCE).is_empty());
        // Cost-based 50% slower than structural in the same run: the
        // ratio rule fires even though every time matches its baseline.
        let bad = suite(&[
            ("plan_structural_cold", 1e-2, &[]),
            ("plan_costbased_cold", 1.5e-2, &[]),
        ]);
        let regs = check(&bad, &bad, DEFAULT_TOLERANCE);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].what.contains("cost-based"), "{}", regs[0]);
    }

    #[test]
    fn missing_bench_fails() {
        let base = suite(&[("op", 1.0, &[])]);
        let cur = suite(&[]);
        assert_eq!(check(&cur, &base, 0.2).len(), 1);
    }

    #[test]
    fn simulated_regression_trips_the_gate_end_to_end() {
        // A miniature end-to-end run of the real suite machinery: the
        // handicap multiplies measured times, exactly what CI's gate
        // self-test step does with `--handicap`.
        let base = suite(&[("calibrate", 1.0, &[]), ("op", 1.0, &[])]);
        let mut cur = base.clone();
        for b in &mut cur.benches {
            if b.name != "calibrate" {
                b.secs *= 1.5; // handicap applied to gated benches
            }
        }
        assert!(!check(&cur, &base, DEFAULT_TOLERANCE).is_empty());
    }
}
