//! Shared workload builders and timing helpers for the benchmark harness.
//!
//! The criterion benches under `benches/` measure steady-state latency per
//! experiment; the `report` binary (`src/bin/report.rs`) regenerates the
//! EXPERIMENTS.md tables in one run with coarse (but honest) wall-clock
//! timing.

pub mod gate;

use rand::prelude::*;
use tr_core::{region, Instance, InstanceBuilder, Pos, RegionSet, Schema};
use tr_markup::{random_rig_instance, ProgramSpec, RigInstanceConfig};
use tr_rig::Rig;

/// Times `f` by running it `iters` times and returning the per-iteration
/// average in seconds. `f`'s result is returned (from the last run) so the
/// compiler cannot discard the work.
pub fn time_avg<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(iters >= 1);
    let mut last = f(); // warm-up (also primes caches/allocations)
    let start = std::time::Instant::now();
    for _ in 0..iters {
        last = std::hint::black_box(f());
    }
    (start.elapsed().as_secs_f64() / iters as f64, last)
}

/// A flat (non-nested) region set of `n` regions of width `w`, starting at
/// `offset` and spaced `stride` apart.
pub fn flat_set(n: usize, offset: Pos, w: Pos, stride: Pos) -> RegionSet {
    RegionSet::from_sorted(
        (0..n as Pos)
            .map(|i| region(offset + i * stride, offset + i * stride + w))
            .collect(),
    )
}

/// A pair of interleaved region sets for the operator benchmarks (E2):
/// `parents` are wide regions, `children` sit inside every other parent.
pub fn operator_workload(n: usize) -> (RegionSet, RegionSet) {
    let parents = flat_set(n, 0, 8, 10);
    let children = RegionSet::from_sorted(
        (0..n as Pos)
            .filter(|i| i % 2 == 0)
            .map(|i| region(i * 10 + 2, i * 10 + 5))
            .collect(),
    );
    (parents, children)
}

/// A deeply nested two-name instance: a single chain of `depth` regions
/// alternating A/B (the Figure 2 shape), for the direct-inclusion program
/// benchmarks (E9).
pub fn nested_chain_instance(depth: usize) -> Instance {
    tr_markup::figure_2_instance(depth)
}

/// A forest of `copies` independent alternating chains, each `depth`
/// levels deep — a realistically sized workload for the bounded-depth
/// constructions (E8).
pub fn nested_forest_instance(depth: usize, copies: usize) -> Instance {
    let schema = Schema::new(["A", "B"]);
    let mut b = InstanceBuilder::new(schema);
    let span = 2 * depth as Pos + 2;
    for c in 0..copies as Pos {
        let base = c * (span + 2);
        for lvl in 0..depth as Pos {
            let name = if lvl % 2 == 0 { "B" } else { "A" };
            b = b.add(name, region(base + lvl, base + span - lvl));
        }
    }
    b.build_valid()
}

/// A wide-and-deep random instance satisfying the Figure 1 RIG, rooted at
/// `Program`, with about `regions` regions (E1/E9 realistic workload).
pub fn figure_1_instance(regions: usize, max_depth: usize, seed: u64) -> Instance {
    let rig = Rig::figure_1();
    let mut cfg = RigInstanceConfig::new(rig.schema(), regions);
    cfg.roots = vec![rig.schema().expect_id("Program")];
    cfg.max_depth = max_depth;
    cfg.max_children = 6;
    random_rig_instance(&rig, &cfg, &mut StdRng::seed_from_u64(seed))
}

/// A generated program source of roughly `procs` procedures (E1 text-based
/// workload), plus its parsed instance.
pub fn program_workload(procs: usize, seed: u64) -> (String, Instance<tr_text::SuffixWordIndex>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = ProgramSpec::random(&mut rng, procs, 6, 3);
    let text = spec.render();
    let inst = tr_markup::parse_program(&text).expect("generated programs parse");
    (text, inst)
}

/// Synthetic English-ish text of `n` bytes for the text-index benchmarks
/// (E12): Zipf-ish words so patterns have realistic hit counts.
pub fn synthetic_text(n: usize, seed: u64) -> Vec<u8> {
    const WORDS: [&str; 16] = [
        "the",
        "region",
        "algebra",
        "text",
        "query",
        "index",
        "tree",
        "node",
        "pattern",
        "search",
        "structure",
        "document",
        "word",
        "suffix",
        "engine",
        "data",
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n + 16);
    while out.len() < n {
        // Zipf-ish: favor low indices.
        let pick = (rng.gen_range(0.0f64..1.0).powi(2) * WORDS.len() as f64) as usize;
        out.extend_from_slice(WORDS[pick.min(WORDS.len() - 1)].as_bytes());
        out.push(b' ');
    }
    out.truncate(n);
    out
}

/// A store-sized single-name document for the v3 open benchmarks (gate
/// `store_open_*_1m`, E17): `n` regions laid out as groups of four
/// nested spans at stride 8 — `l = (i/4)*8`, `r = l + 7 - i%4` — over
/// ~2 MB of synthetic text, indexed with a real suffix array so the
/// saved file carries full-size suffix-array and column sections.
pub fn store_workload(n: usize) -> (String, Instance<tr_text::SuffixWordIndex>) {
    let text = String::from_utf8(synthetic_text(2 << 20, 5)).expect("synthetic text is ASCII");
    let mut lefts: Vec<Pos> = Vec::with_capacity(n);
    let mut rights: Vec<Pos> = Vec::with_capacity(n);
    for i in 0..n as Pos {
        let l = (i / 4) * 8;
        lefts.push(l);
        rights.push(l + 7 - (i % 4));
    }
    let set = RegionSet::from_columns(lefts, rights);
    let word = tr_text::SuffixWordIndex::new(text.clone());
    let inst =
        Instance::build(Schema::new(["R"]), vec![set], word).expect("nested groups nest cleanly");
    (text, inst)
}

/// A generated SGML-lite document of `sections` sections for the
/// segmentation benchmarks (E16): each `<sec>` holds a few paragraphs of
/// Zipf-ish words with occasional `<note>` insets, so the position space
/// is wide, the markup is hierarchical, and pattern hits spread across
/// every segment. Deterministic in `seed`.
pub fn sgml_workload(sections: usize, seed: u64) -> String {
    const WORDS: [&str; 12] = [
        "the", "region", "algebra", "text", "query", "index", "tree", "node", "pattern", "search",
        "word", "engine",
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::with_capacity(sections * 256);
    out.push_str("<doc>");
    for _ in 0..sections {
        out.push_str("<sec>");
        for _ in 0..rng.gen_range(1..4) {
            out.push_str("<p>");
            for _ in 0..rng.gen_range(8..40) {
                let pick = (rng.gen_range(0.0f64..1.0).powi(2) * WORDS.len() as f64) as usize;
                out.push_str(WORDS[pick.min(WORDS.len() - 1)]);
                out.push(' ');
            }
            if rng.gen_bool(0.3) {
                out.push_str("<note>");
                out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
                out.push_str("</note>");
            }
            out.push_str("</p>");
        }
        out.push_str("</sec>");
    }
    out.push_str("</doc>");
    out
}

/// A row of `n` sibling C regions each containing an A and a B leaf (in
/// random order) — the flat family for both-included benchmarks (E8).
pub fn flat_bi_instance(n: usize, seed: u64) -> Instance {
    let schema = Schema::new(["A", "B", "C"]);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new(schema);
    let mut pos: Pos = 0;
    for _ in 0..n {
        let c = region(pos, pos + 8);
        b = b.add("C", c);
        if rng.gen_bool(0.5) {
            b = b
                .add("A", region(pos + 1, pos + 2))
                .add("B", region(pos + 4, pos + 5));
        } else {
            b = b
                .add("B", region(pos + 1, pos + 2))
                .add("A", region(pos + 4, pos + 5));
        }
        pos += 10;
    }
    b.build_valid()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        let (p, c) = operator_workload(100);
        assert_eq!(p.len(), 100);
        assert_eq!(c.len(), 50);
        assert_eq!(tr_core::ops::includes(&p, &c).len(), 50);

        let inst = nested_chain_instance(16);
        assert_eq!(inst.nesting_depth(), 16);

        let forest = nested_forest_instance(6, 10);
        assert_eq!(forest.nesting_depth(), 6);
        assert_eq!(forest.len(), 60);

        let inst = figure_1_instance(200, 8, 1);
        assert!(tr_rig::satisfies_rig(&inst, &Rig::figure_1()));

        let (_, inst) = program_workload(20, 2);
        assert!(!inst.is_empty());

        let text = synthetic_text(1000, 3);
        assert_eq!(text.len(), 1000);

        let bi = flat_bi_instance(10, 4);
        assert_eq!(bi.regions_of_name("C").len(), 10);

        let sgml = sgml_workload(50, 7);
        assert_eq!(sgml, sgml_workload(50, 7), "deterministic in seed");
        let engine = tr_query::Engine::from_sgml(&sgml).expect("generated SGML parses");
        assert_eq!(engine.query("sec").unwrap().len(), 50);
        assert!(!engine.query("note within sec").unwrap().is_empty());
    }

    #[test]
    fn time_avg_returns_result() {
        let (secs, v) = time_avg(3, || 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
