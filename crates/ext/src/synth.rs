//! Ruler-style rewrite-rule synthesis: enumerate → conjecture → verify.
//!
//! The loop that produced (and regenerates) `RULES.txt`:
//!
//! 1. **Enumerate** every pattern-free expression up to a size bound
//!    over a three-name schema, reusing [`crate::enumerate::for_each_expr`]
//!    — the same machinery the inexpressibility sweeps run. A name `R_i`
//!    plays the role of metavariable `?a`/`?b`/`?c`.
//! 2. **Conjecture** by characteristic vectors: evaluate every
//!    expression on a fixed battery of random region-set assignments
//!    (dense, empty, and aliased variables all represented) and bucket
//!    by the hash of the result vector. Expressions sharing a bucket
//!    *might* be equal; each is paired with its bucket's canonical
//!    (smallest) member.
//! 3. **Verify** each surviving conjecture against the quadratic naive
//!    oracle on fresh seeded assignments via
//!    [`tr_core::rules::verify_identity`] — the same protocol the
//!    regeneration test applies to every shipped rule. Collisions and
//!    coincidences die here; only identities ship.
//!
//! The output is deliberately *not* auto-committed: `RULES.txt` is a
//! reviewed artifact, and the tests in this module hold it to the loop —
//! every shipped rule must verify, and every shipped rule whose sides
//! fit the enumeration bound must be rediscovered from scratch.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use tr_core::rules::{self, Pat, MAX_VARS};
use tr_core::{region, Expr, RegionSet, Schema, NAIVE};

/// Tuning for one synthesis run.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Maximum operations per expression side.
    pub max_ops: usize,
    /// Random assignments in the conjecture battery.
    pub envs: usize,
    /// Seed for the battery (verification derives a distinct stream).
    pub seed: u64,
    /// Oracle rounds each conjecture must survive.
    pub verify_rounds: usize,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            max_ops: 2,
            envs: 10,
            seed: 0xC0DE,
            verify_rounds: 64,
        }
    }
}

/// A synthesized identity (name not yet assigned — naming is the
/// reviewer's job when a rule is promoted into `RULES.txt`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SynthRule {
    /// Left side (the larger / non-canonical form).
    pub lhs: Pat,
    /// Right side (the bucket's canonical form).
    pub rhs: Pat,
}

impl std::fmt::Display for SynthRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} == {}", self.lhs, self.rhs)
    }
}

/// What a synthesis run did, for experiment reports.
#[derive(Clone, Debug)]
pub struct SynthReport {
    /// Expressions enumerated across all sizes.
    pub enumerated: u64,
    /// Distinct characteristic-vector buckets.
    pub buckets: usize,
    /// Conjectures sent to the oracle (post variable-canonicalization
    /// dedup).
    pub conjectured: usize,
    /// Conjectures the oracle refuted — fingerprint coincidences.
    pub refuted: usize,
    /// The surviving verified identities.
    pub rules: Vec<SynthRule>,
}

/// Runs the enumerate → conjecture → verify loop.
pub fn synthesize(cfg: &SynthConfig) -> SynthReport {
    let schema = Schema::new(["a", "b", "c"]);
    let envs = battery(cfg.envs, cfg.seed);

    // Enumerate and bucket by characteristic vector.
    let mut enumerated = 0u64;
    let mut buckets: BTreeMap<u64, Vec<Expr>> = BTreeMap::new();
    for ops in 0..=cfg.max_ops {
        crate::enumerate::for_each_expr(&schema, ops, &mut |e| {
            enumerated += 1;
            let key = cvec_key(e, &envs);
            buckets.entry(key).or_default().push(e.clone());
            false
        });
    }

    // Pair every bucket member with the bucket's canonical form.
    let mut conjectures: BTreeSet<SynthRule> = BTreeSet::new();
    for members in buckets.values() {
        let canonical = members
            .iter()
            .min_by_key(|e| (e.num_ops(), e.to_string()))
            .expect("buckets are non-empty");
        for other in members {
            if other == canonical {
                continue;
            }
            if let Some(rule) = conjecture(other, canonical) {
                conjectures.insert(rule);
            }
        }
    }

    // Verify against the oracle on a fresh stream.
    let mut rules = Vec::new();
    let mut refuted = 0usize;
    let conjectured = conjectures.len();
    for c in conjectures {
        if rules::verify_identity(&c.lhs, &c.rhs, cfg.seed ^ 0x5EED_CAFE, cfg.verify_rounds) {
            rules.push(c);
        } else {
            refuted += 1;
        }
    }
    SynthReport {
        enumerated,
        buckets: buckets.len(),
        conjectured,
        refuted,
        rules,
    }
}

/// Renders synthesized rules in the `RULES.txt` body format (names left
/// as `synth-N` placeholders for review).
pub fn to_rules_txt(rules: &[SynthRule]) -> String {
    let mut out = String::new();
    for (i, r) in rules.iter().enumerate() {
        out.push_str(&format!("synth-{i}: {} == {}\n", r.lhs, r.rhs));
    }
    out
}

/// The conjecture battery: random assignments of region sets to the
/// three metavariables — empty sets, aliased variables (strict
/// inclusion kills reflexivity conjectures only on aliased inputs), and
/// overlapping subsets of a shared region pool so that cross-variable
/// coincidences are routine and disjointness-based fingerprint
/// collisions split early. Same adversarial shape as the verifier's
/// stream, but a different generator and seed, so conjecture and
/// verification are independent evidence.
fn battery(n: usize, seed: u64) -> Vec<[RegionSet; MAX_VARS]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n.max(1))
        .map(|round| {
            // The first rounds are deterministic corner cases: all
            // empty, then all aliased to one dense set.
            if round == 0 {
                return [RegionSet::new(), RegionSet::new(), RegionSet::new()];
            }
            if round == 1 {
                let spine: Vec<_> = (0..6).map(|k| region(k * 7, k * 7 + 9)).collect();
                let all = RegionSet::from_regions(spine);
                return [all.clone(), all.clone(), all];
            }
            // Same hierarchical-pool shape as the verifier: wide spans
            // with strict sub-regions, plus free-standing regions.
            let mut pool = Vec::with_capacity(24);
            for _ in 0..4 {
                let l = rng.gen_range(0..36u32);
                let len = 8 + rng.gen_range(0..12u32);
                pool.push(region(l, l + len));
                for _ in 0..rng.gen_range(0..4u32) {
                    let cl = l + 1 + rng.gen_range(0..len - 1);
                    let clen = rng.gen_range(0..l + len - cl + 1);
                    pool.push(region(cl, cl + clen));
                }
            }
            for _ in 0..4 {
                let l = rng.gen_range(0..48u32);
                pool.push(region(l, l + rng.gen_range(0..9u32)));
            }
            let mut env: [RegionSet; MAX_VARS] =
                [RegionSet::new(), RegionSet::new(), RegionSet::new()];
            for i in 0..MAX_VARS {
                let roll = rng.gen_range(0..8u32);
                env[i] = if roll == 0 {
                    RegionSet::new()
                } else if roll == 1 && i > 0 {
                    env[rng.gen_range(0..i)].clone()
                } else {
                    let mut regions: Vec<_> = pool
                        .iter()
                        .copied()
                        .filter(|_| rng.gen_range(0..2u32) == 0)
                        .collect();
                    for _ in 0..rng.gen_range(0..4u32) {
                        let l = rng.gen_range(0..48u32);
                        regions.push(region(l, l + rng.gen_range(0..9u32)));
                    }
                    RegionSet::from_regions(regions)
                };
            }
            env
        })
        .collect()
}

/// Hash of the expression's result vector over the battery — equal
/// expressions collide with certainty, unequal ones with vanishing
/// probability (and verification catches the rest).
fn cvec_key(e: &Expr, envs: &[[RegionSet; MAX_VARS]]) -> u64 {
    let pat = expr_to_pat(e);
    let mut h = DefaultHasher::new();
    for env in envs {
        let result = rules::eval_pat(&pat, env, &NAIVE);
        for r in result.to_vec() {
            (r.left(), r.right()).hash(&mut h);
        }
        u64::MAX.hash(&mut h); // env separator
    }
    h.finish()
}

/// Reads an enumerated pattern-free expression as a pattern: name `R_i`
/// is metavariable `i`.
fn expr_to_pat(e: &Expr) -> Pat {
    match e {
        Expr::Name(id) => Pat::var(id.index() as u8),
        Expr::Bin(op, l, r) => Pat::bin(*op, expr_to_pat(l), expr_to_pat(r)),
        Expr::Select(..) => unreachable!("enumeration is pattern-free"),
    }
}

/// Builds the canonical conjecture for a bucket pair: variables renamed
/// by first occurrence (lhs first), `None` when the canonical side uses
/// a variable the other side does not bind (not expressible as a
/// directed rule).
fn conjecture(other: &Expr, canonical: &Expr) -> Option<SynthRule> {
    let lhs = expr_to_pat(other);
    let rhs = expr_to_pat(canonical);
    let mut map: [Option<u8>; MAX_VARS] = [None; MAX_VARS];
    let mut next = 0u8;
    rename(&lhs, &mut map, &mut next);
    // rhs variables must already be bound by the lhs.
    if !vars_of(&rhs).into_iter().all(|v| map[v as usize].is_some()) {
        return None;
    }
    let lhs = apply_rename(&lhs, &map);
    let rhs = apply_rename(&rhs, &map);
    if lhs == rhs {
        return None;
    }
    Some(SynthRule { lhs, rhs })
}

/// α-renames a rule so metavariables are numbered by first occurrence
/// in `lhs` — the canonical naming `RULES.txt` uses. Lets callers
/// compare identities across orientations (flipping a rule permutes
/// which side names the variables first).
pub fn canonical_pair(lhs: &Pat, rhs: &Pat) -> (Pat, Pat) {
    let mut map: [Option<u8>; MAX_VARS] = [None; MAX_VARS];
    let mut next = 0u8;
    rename(lhs, &mut map, &mut next);
    rename(rhs, &mut map, &mut next);
    (apply_rename(lhs, &map), apply_rename(rhs, &map))
}

fn rename(p: &Pat, map: &mut [Option<u8>; MAX_VARS], next: &mut u8) {
    match p {
        Pat::Var(i) => {
            if map[*i as usize].is_none() {
                map[*i as usize] = Some(*next);
                *next += 1;
            }
        }
        Pat::Bin(_, l, r) => {
            rename(l, map, next);
            rename(r, map, next);
        }
    }
}

fn vars_of(p: &Pat) -> Vec<u8> {
    match p {
        Pat::Var(i) => vec![*i],
        Pat::Bin(_, l, r) => {
            let mut v = vars_of(l);
            v.extend(vars_of(r));
            v
        }
    }
}

fn apply_rename(p: &Pat, map: &[Option<u8>; MAX_VARS]) -> Pat {
    match p {
        Pat::Var(i) => Pat::var(map[*i as usize].expect("renamed var")),
        Pat::Bin(op, l, r) => Pat::bin(*op, apply_rename(l, map), apply_rename(r, map)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::rules::{verified_rules, verify_rule};

    /// The regeneration test, part 1: every rule shipped in `RULES.txt`
    /// re-verifies against the naive oracle (and the fast kernels) on a
    /// deep fresh stream. This is the gate that keeps the committed rule
    /// set honest — a rule that stops holding fails CI, not production.
    #[test]
    fn every_shipped_rule_reverifies_against_oracle() {
        let rules = verified_rules();
        assert!(rules.len() >= 10);
        for rule in rules {
            assert!(
                verify_rule(rule, 0x1234_5678, 256),
                "shipped rule `{}` failed oracle verification",
                rule.name
            );
        }
    }

    /// The regeneration test, part 2: run the full synthesis loop at a
    /// bounded size and check that every shipped rule whose sides fit
    /// the bound is *rediscovered* (in either orientation — the
    /// synthesizer orients toward its own canonical form).
    #[test]
    fn bounded_synthesis_rediscovers_shipped_rules() {
        let cfg = SynthConfig::default();
        let report = synthesize(&cfg);
        assert!(report.enumerated > 0);
        assert!(!report.rules.is_empty());
        // Accept either orientation, α-normalized: flipping a rule
        // renumbers its variables, so normalize before comparing.
        let discovered: BTreeSet<(String, String)> = report
            .rules
            .iter()
            .flat_map(|r| {
                let fwd = canonical_pair(&r.lhs, &r.rhs);
                let rev = canonical_pair(&r.rhs, &r.lhs);
                [
                    (fwd.0.to_string(), fwd.1.to_string()),
                    (rev.0.to_string(), rev.1.to_string()),
                ]
            })
            .collect();
        for rule in verified_rules() {
            if rule.lhs.num_ops() > cfg.max_ops || rule.rhs.num_ops() > cfg.max_ops {
                continue;
            }
            let norm = canonical_pair(&rule.lhs, &rule.rhs);
            let key = (norm.0.to_string(), norm.1.to_string());
            assert!(
                discovered.contains(&key),
                "shipped rule `{}` ({} == {}) not rediscovered at max_ops {}",
                rule.name,
                rule.lhs,
                rule.rhs,
                cfg.max_ops
            );
        }
    }

    /// Every conjecture the loop emits — not just the shipped subset —
    /// holds against the oracle on an independent stream.
    #[test]
    fn synthesized_rules_hold_on_independent_stream() {
        let report = synthesize(&SynthConfig {
            max_ops: 2,
            envs: 8,
            seed: 0xFEED,
            verify_rounds: 128,
        });
        for rule in &report.rules {
            assert!(
                rules::verify_identity(&rule.lhs, &rule.rhs, 0xDEAD_BEEF, 256),
                "synthesized rule `{rule}` failed an independent stream"
            );
        }
        // The fingerprint step is doing real work: buckets far fewer
        // than expressions.
        assert!(report.buckets as u64 <= report.enumerated);
    }

    /// False conjectures (fingerprint coincidences) are representable
    /// and die in verification — the loop's safety net is live.
    #[test]
    fn verification_refutes_false_conjectures() {
        use tr_core::BinOp;
        // `?a ⊂ ?b == ?a ⊃ ?b` is false; feed it straight to the
        // verifier the synthesizer uses.
        let lhs = Pat::bin(BinOp::IncludedIn, Pat::var(0), Pat::var(1));
        let rhs = Pat::bin(BinOp::Including, Pat::var(0), Pat::var(1));
        assert!(!rules::verify_identity(&lhs, &rhs, 1, 64));
    }

    #[test]
    fn rules_txt_rendering_is_parseable_shaped() {
        let report = synthesize(&SynthConfig {
            max_ops: 1,
            envs: 8,
            seed: 7,
            verify_rounds: 32,
        });
        let txt = to_rules_txt(&report.rules);
        for line in txt.lines() {
            assert!(line.contains(" == "), "malformed line: {line}");
            assert!(line.starts_with("synth-"));
        }
    }
}
