//! The deletion theorem (Theorem 4.1) — executable version.
//!
//! The theorem: for every expression `e` and instance `I` there is a set
//! `S` of regions, with nesting at most `2·|e|`, such that deleting *any*
//! regions outside `S` changes neither `e`'s emptiness nor the membership
//! of surviving regions. The paper's proof "constructively builds the
//! desired S" by induction; [`deletion_core`] is that construction:
//!
//! * a region name keeps one witness (for emptiness);
//! * a structural semi-join keeps, for every selected region, one witness
//!   on the other side — membership of survivors then only depends on
//!   surviving witnesses, which induction protects;
//! * set operators and selections need nothing beyond their operands'
//!   cores.
//!
//! [`check_deletion_invariance`] verifies the theorem's two statements on
//! randomly chosen `S`-deleted versions — it is the engine behind
//! experiment E5 and the Figure 2 inexpressibility experiment (E6), whose
//! argument is exactly "any bounded-nesting `S` must miss a deep level".

use rand::Rng;
use tr_core::{eval, BinOp, Expr, Instance, Region, RegionSet, WordIndex};

/// A set `S` with the Theorem 4.1 property for `e` on `inst`, built by the
/// proof's induction.
pub fn deletion_core<W: WordIndex>(e: &Expr, inst: &Instance<W>) -> RegionSet {
    let mut core = RegionSet::new();
    build(e, inst, &mut core);
    core
}

fn build<W: WordIndex>(e: &Expr, inst: &Instance<W>, core: &mut RegionSet) -> RegionSet {
    match e {
        Expr::Name(id) => {
            let value = inst.regions_of(*id).clone();
            if let Some(first) = value.iter().next() {
                core.insert(first);
            }
            value
        }
        Expr::Select(p, inner) => {
            let value = inst.select(&build(inner, inst, core), p);
            if let Some(first) = value.iter().next() {
                core.insert(first);
            }
            value
        }
        Expr::Bin(op, l, r) => {
            let lv = build(l, inst, core);
            let rv = build(r, inst, core);
            // Every node keeps one representative of its own result: part
            // (1) of the theorem (emptiness) needs a surviving member, and
            // part (2) (membership invariance, by induction) then keeps it
            // a member. Crucial for difference, whose members are exactly
            // the regions *not* protected as anyone's witness.
            let keep_representative = |out: RegionSet, core: &mut RegionSet| {
                if let Some(first) = out.iter().next() {
                    core.insert(first);
                }
                out
            };
            match op {
                BinOp::Union => keep_representative(lv.union(&rv), core),
                BinOp::Intersect => keep_representative(lv.intersect(&rv), core),
                BinOp::Diff => keep_representative(lv.difference(&rv), core),
                BinOp::Including | BinOp::IncludedIn | BinOp::Before | BinOp::After => {
                    let test: fn(Region, Region) -> bool = match op {
                        BinOp::Including => |x, y| x.includes(y),
                        BinOp::IncludedIn => |x, y| x.included_in(y),
                        BinOp::Before => |x, y| x.precedes(y),
                        _ => |x, y| x.follows(y),
                    };
                    let out = lv.filter(|x| rv.iter().any(|y| test(x, y)));
                    // Keep one witness per selected region so membership
                    // survives arbitrary deletions outside the core.
                    for x in out.iter() {
                        if let Some(w) = rv.iter().find(|&y| test(x, y)) {
                            core.insert(w);
                            core.insert(x);
                        }
                    }
                    out
                }
            }
        }
    }
}

/// Checks Theorem 4.1's two statements for `trials` random `S`-deleted
/// versions of `inst` (each deletes a random subset of the regions outside
/// `keep`). Returns the number of trials that agreed (must equal `trials`).
pub fn check_deletion_invariance<R: Rng>(
    e: &Expr,
    inst: &Instance,
    keep: &RegionSet,
    trials: usize,
    rng: &mut R,
) -> usize {
    let base = eval(e, inst);
    let deletable: Vec<Region> = inst
        .all_regions()
        .iter()
        .filter(|r| !keep.contains(*r))
        .collect();
    let mut ok = 0;
    for _ in 0..trials {
        let doomed: RegionSet = deletable
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.5))
            .collect();
        let smaller = inst.without_regions(&doomed);
        let result = eval(e, &smaller);
        // (1) emptiness preserved; (2) membership preserved for survivors.
        let emptiness_ok = base.is_empty() == result.is_empty();
        let membership_ok = smaller
            .all_regions()
            .iter()
            .all(|r| base.contains(r) == result.contains(r));
        if emptiness_ok && membership_ok {
            ok += 1;
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use tr_core::{region, Expr, InstanceBuilder, NameId, Schema};

    fn schema() -> Schema {
        Schema::new(["A", "B"])
    }

    fn random_instance(rng: &mut StdRng) -> Instance {
        let names = ["A", "B"];
        loop {
            let mut b = InstanceBuilder::new(schema());
            let mut spans = vec![(0u32, 63u32)];
            for _ in 0..rng.gen_range(2..12) {
                let (l, r) = spans[rng.gen_range(0..spans.len())];
                if r - l < 4 {
                    continue;
                }
                let nl = rng.gen_range(l + 1..r);
                let nr = rng.gen_range(nl..r);
                b = b.add(names[rng.gen_range(0..2)], region(nl, nr));
                spans.push((nl, nr));
                if rng.gen_bool(0.3) {
                    b = b.occurrence("x", nl, 1);
                }
            }
            if let Ok(inst) = b.build() {
                return inst;
            }
        }
    }

    fn random_expr(rng: &mut StdRng, ops: usize) -> Expr {
        if ops == 0 {
            return Expr::name(NameId::from_index(rng.gen_range(0..2)));
        }
        if rng.gen_bool(0.15) {
            return random_expr(rng, ops - 1).select("x");
        }
        let split = rng.gen_range(0..ops);
        let l = random_expr(rng, split);
        let r = random_expr(rng, ops - 1 - split);
        Expr::bin(BinOp::ALL[rng.gen_range(0..7)], l, r)
    }

    /// Theorem 4.1, empirically: the constructed core makes every random
    /// S-deleted version agree with the original.
    #[test]
    fn deletion_core_protects_query_results() {
        let mut rng = StdRng::seed_from_u64(67);
        for trial in 0..60 {
            let inst = random_instance(&mut rng);
            let ops = rng.gen_range(1..5);
            let e = random_expr(&mut rng, ops);
            let core = deletion_core(&e, &inst);
            let ok = check_deletion_invariance(&e, &inst, &core, 12, &mut rng);
            assert_eq!(ok, 12, "trial {trial}: expr {e} on {inst:?}, core {core:?}");
        }
    }

    /// Without protecting the core, deletions generally do change results —
    /// the check is not vacuous.
    #[test]
    fn unprotected_deletion_breaks_results() {
        let s = schema();
        let inst = InstanceBuilder::new(s.clone())
            .add("A", region(0, 9))
            .add("B", region(1, 2))
            .build_valid();
        let e = Expr::name(s.expect_id("A")).including(Expr::name(s.expect_id("B")));
        // Deleting the only B flips A's membership.
        let doomed = RegionSet::singleton(region(1, 2));
        let smaller = inst.without_regions(&doomed);
        assert!(!eval(&e, &inst).is_empty());
        assert!(eval(&e, &smaller).is_empty());
        // And the core indeed contains that B.
        assert!(deletion_core(&e, &inst).contains(region(1, 2)));
    }

    #[test]
    fn core_is_small_for_names() {
        let s = schema();
        let inst = InstanceBuilder::new(s.clone())
            .add("A", region(0, 1))
            .add("A", region(3, 4))
            .add("A", region(6, 7))
            .build_valid();
        let core = deletion_core(&Expr::name(s.expect_id("A")), &inst);
        assert_eq!(core.len(), 1, "one witness suffices for emptiness");
    }
}
