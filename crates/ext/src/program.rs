//! The Section 6 programs: direct inclusion computed by embedding the
//! algebra in a host language with `while` and assignment.
//!
//! Three variants, exactly as the paper develops them:
//!
//! * [`direct_including_program`] — the per-operator loop for
//!   `R_1 ⊃_d R_2`, peeling one nesting layer of `R_1` per iteration;
//! * [`direct_chain_program`] — the single-loop evaluation of a whole
//!   chain `R_1 ⊃_d R_2 ⊃_d … ⊃_d R_n`, using the replicated set
//!   `All = ⋃_T T(⊂ T)^{#_e^T}` so one loop suffices;
//! * [`direct_chain_program_filtered`] — the same with the blocker set
//!   restricted to chosen names, enabling the RIG-based pruning of
//!   Section 6 (the minimal set problem, `tr_rig::MinimalSetProblem`).

use tr_core::{ops, Instance, NameId, RegionSet};

/// `R_1 ⊃_d R_2` via the paper's first program. Each iteration handles the
/// current top layer of (remaining) `R_1` regions:
///
/// ```text
/// R1layer := R1 − (R1 ⊂ R1);   R1rest := R1 − R1layer;   result := ∅;
/// All := ⋃_{T ∈ 𝓘} T;
/// while (R1layer ⊃ R2) ≠ ∅ do
///     result := result ∪ (R1layer ⊃ (R2 − (R2 ⊂ All ⊂ R1layer)));
///     R1layer := R1rest − (R1rest ⊂ R1rest);
///     R1rest := R1rest − R1layer;
/// end
/// ```
pub fn direct_including_program<W>(
    inst: &Instance<W>,
    r1: &RegionSet,
    r2: &RegionSet,
) -> RegionSet {
    let all = inst.all_regions();
    let mut layer = r1.difference(&ops::included_in(r1, r1));
    let mut rest = r1.difference(&layer);
    let mut result = RegionSet::new();
    while !ops::includes(&layer, r2).is_empty() {
        // R2 − (R2 ⊂ (All ⊂ R1layer)): R2 regions with no other region
        // between them and a layer region.
        let blockers = ops::included_in(&all, &layer);
        let eligible = r2.difference(&ops::included_in(r2, &blockers));
        result = result.union(&ops::includes(&layer, &eligible));
        layer = rest.difference(&ops::included_in(&rest, &rest));
        rest = rest.difference(&layer);
    }
    result
}

/// `R_1 ⊂_d R_2` by the symmetric program (the paper notes "a similar
/// program can be used"): peel layers of `R_2` (the would-be parents) and
/// keep the `R_1` regions with no region between them and a parent layer.
pub fn direct_included_program<W>(inst: &Instance<W>, r1: &RegionSet, r2: &RegionSet) -> RegionSet {
    let all = inst.all_regions();
    let mut layer = r2.difference(&ops::included_in(r2, r2));
    let mut rest = r2.difference(&layer);
    let mut result = RegionSet::new();
    while !ops::includes(&layer, r1).is_empty() {
        let blockers = ops::included_in(&all, &layer);
        let eligible = r1.difference(&ops::included_in(r1, &blockers));
        result = result.union(&ops::included_in(&eligible, &layer));
        layer = rest.difference(&ops::included_in(&rest, &rest));
        rest = rest.difference(&layer);
    }
    result
}

/// The whole chain `R_1 ⊃_d R_2 ⊃_d … ⊃_d R_n` in a single loop (the
/// paper's second program):
///
/// ```text
/// R1layer := R1 − (R1 ⊂ R1);   R1rest := R1 − R1layer;   result := ∅;
/// All := ⋃_{T ∈ 𝓘} T(⊂ T)^{#_e^T};
/// while R1layer ≠ ∅ do
///     result := result ∪ (R1layer ⊃ R2 ⊃ … ⊃ R_{n−1}
///                          ⊃ (R_n − (R_n ⊂ All ⊂ R1layer)));
///     R1layer := R1rest − (R1rest ⊂ R1rest);
///     R1rest := R1rest − R1layer;
/// end
/// ```
///
/// One deviation from the paper's text: the replicated set
/// `T(⊂ T)^{#_e^T}` is computed *relative to the current layer* (nesting
/// counted among the `T` regions inside the layer) rather than globally.
/// The global formula under-blocks when the chain's head name recurs
/// (e.g. `A ⊃_d A ⊃_d B`: the legitimate interior `A` witness sits at
/// global `A`-depth ≥ 1 simply by being inside the layer, so the global
/// `A ⊂ A` wrongly marks it a blocker), while the layer-relative count is
/// exactly "how many `T` witnesses the chain itself accounts for below
/// the layer". The per-iteration cost is still dominated by inclusion
/// tests against `All`, which is what the minimal-set optimization
/// shrinks.
pub fn direct_chain_program<W>(inst: &Instance<W>, chain: &[NameId]) -> RegionSet {
    let names: Vec<NameId> = inst.schema().ids().collect();
    direct_chain_program_filtered(inst, chain, &names)
}

/// [`direct_chain_program`] with the blocker set restricted to the given
/// names — the hook for the RIG-based pruning of Section 6: `names_for_all`
/// only needs a set intercepting every RIG path between consecutive chain
/// names (a solution of `tr_rig::MinimalSetProblem`), plus the chain's own
/// interior names.
pub fn direct_chain_program_filtered<W>(
    inst: &Instance<W>,
    chain: &[NameId],
    names_for_all: &[NameId],
) -> RegionSet {
    assert!(chain.len() >= 2, "a chain needs at least two names");
    let interior = &chain[1..chain.len() - 1];
    let r1 = inst.regions_of(chain[0]);
    let rn = inst.regions_of(chain[chain.len() - 1]);
    let mut layer = r1.difference(&ops::included_in(r1, r1));
    let mut rest = r1.difference(&layer);
    let mut result = RegionSet::new();
    while !layer.is_empty() {
        // Layer-relative All: for each name T, the T regions inside the
        // layer, nested (among themselves) deeper than the chain's own
        // interior occurrences of T can account for.
        let mut blockers = RegionSet::new();
        for &id in names_for_all {
            let occurrences = interior.iter().filter(|&&t| t == id).count();
            let mut set = ops::included_in(inst.regions_of(id), &layer);
            for _ in 0..occurrences {
                let base = set.clone();
                set = ops::included_in(&set, &base);
            }
            blockers = blockers.union(&set);
        }
        let mut acc = rn.difference(&ops::included_in(rn, &blockers));
        // R1layer ⊃ R2 ⊃ … ⊃ R_{n−1} ⊃ acc, grouped from the right.
        for &name in interior.iter().rev() {
            acc = ops::includes(inst.regions_of(name), &acc);
        }
        result = result.union(&ops::includes(&layer, &acc));
        layer = rest.difference(&ops::included_in(&rest, &rest));
        rest = rest.difference(&layer);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use rand::prelude::*;
    use tr_core::{region, InstanceBuilder, Schema};

    fn schema() -> Schema {
        Schema::new(["A", "B", "C"])
    }

    fn random_instance(rng: &mut StdRng) -> Instance {
        let names = ["A", "B", "C"];
        loop {
            let mut b = InstanceBuilder::new(schema());
            let mut spans = vec![(0u32, 127u32)];
            for _ in 0..rng.gen_range(2..16) {
                let (l, r) = spans[rng.gen_range(0..spans.len())];
                if r - l < 4 {
                    continue;
                }
                let nl = rng.gen_range(l + 1..r);
                let nr = rng.gen_range(nl..r);
                b = b.add(names[rng.gen_range(0..3)], region(nl, nr));
                spans.push((nl, nr));
            }
            if let Ok(inst) = b.build() {
                return inst;
            }
        }
    }

    #[test]
    fn program_matches_native_operator() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..60 {
            let inst = random_instance(&mut rng);
            let a = inst.regions_of_name("A").clone();
            let b = inst.regions_of_name("B").clone();
            assert_eq!(
                direct_including_program(&inst, &a, &b),
                direct::directly_including(&inst, &a, &b),
                "{inst:?}"
            );
            assert_eq!(
                direct_included_program(&inst, &b, &a),
                direct::directly_included(&inst, &b, &a),
                "{inst:?}"
            );
        }
    }

    #[test]
    fn program_handles_self_nesting() {
        // A ⊃ A ⊃ B: only the inner A directly includes B.
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 20))
            .add("A", region(2, 18))
            .add("B", region(5, 6))
            .build_valid();
        let a = inst.regions_of_name("A").clone();
        let b = inst.regions_of_name("B").clone();
        assert_eq!(
            direct_including_program(&inst, &a, &b).to_vec(),
            &[region(2, 18)]
        );
    }

    /// The chain program agrees with composing the native operator
    /// link-by-link: r ∈ result iff ∃ chain r ⊃_d x₂ ⊃_d … ⊃_d x_n.
    #[test]
    fn chain_program_matches_native_composition() {
        let mut rng = StdRng::seed_from_u64(43);
        let s = schema();
        let chains: Vec<Vec<NameId>> = vec![
            vec![s.expect_id("A"), s.expect_id("B")],
            vec![s.expect_id("A"), s.expect_id("B"), s.expect_id("C")],
            vec![s.expect_id("A"), s.expect_id("A"), s.expect_id("B")],
            vec![
                s.expect_id("C"),
                s.expect_id("B"),
                s.expect_id("B"),
                s.expect_id("A"),
            ],
        ];
        for _ in 0..40 {
            let inst = random_instance(&mut rng);
            for chain in &chains {
                let expected = native_chain(&inst, chain);
                assert_eq!(
                    direct_chain_program(&inst, chain),
                    expected,
                    "chain {chain:?} on {inst:?}"
                );
            }
        }
    }

    /// Native right-to-left composition of ⊃_d: at each step keep the
    /// *parents* in the next name that directly include a current witness.
    fn native_chain(inst: &Instance, chain: &[NameId]) -> RegionSet {
        let mut acc = inst.regions_of(chain[chain.len() - 1]).clone();
        for &name in chain[..chain.len() - 1].iter().rev() {
            acc = direct::directly_including(inst, inst.regions_of(name), &acc);
        }
        acc
    }

    #[test]
    fn filtered_all_preserves_results_when_cover_is_valid() {
        // Chain A ⊃_d B: the only names that can block are A, B, C, so the
        // full name set is the sound default…
        let mut rng = StdRng::seed_from_u64(47);
        let s = schema();
        let chain = vec![s.expect_id("A"), s.expect_id("B")];
        let keep_full: Vec<NameId> = s.ids().collect();
        for _ in 0..20 {
            let inst = random_instance(&mut rng);
            let full = direct_chain_program(&inst, &chain);
            assert_eq!(
                direct_chain_program_filtered(&inst, &chain, &keep_full),
                full
            );
        }
        // …and the unsound pruning (dropping C) must actually differ on a
        // witness instance, demonstrating why the minimal set matters.
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 10))
            .add("C", region(1, 9))
            .add("B", region(2, 3))
            .build_valid();
        let full = direct_chain_program(&inst, &chain);
        assert!(full.is_empty(), "C blocks directness");
        let pruned =
            direct_chain_program_filtered(&inst, &chain, &[s.expect_id("A"), s.expect_id("B")]);
        assert_eq!(
            pruned.to_vec(),
            &[region(0, 10)],
            "dropping C loses the blocker"
        );
    }

    #[test]
    fn chain_blockers_account_for_interior_witnesses() {
        // Chain A ⊃_d B ⊃_d C: #_e^B = 1, so the single B on the path is
        // the chain's own witness, not a blocker…
        let s = schema();
        let chain = vec![s.expect_id("A"), s.expect_id("B"), s.expect_id("C")];
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 20))
            .add("B", region(1, 19))
            .add("C", region(3, 4))
            .build_valid();
        assert_eq!(
            direct_chain_program(&inst, &chain).to_vec(),
            &[region(0, 20)]
        );
        // …but a second B nested inside the first breaks directness.
        let inst2 = InstanceBuilder::new(schema())
            .add("A", region(0, 20))
            .add("B", region(1, 19))
            .add("B", region(2, 18))
            .add("C", region(3, 4))
            .build_valid();
        assert!(direct_chain_program(&inst2, &chain).is_empty());
    }

    /// The case that motivates layer-relative blockers: the chain's head
    /// name recurring as an interior name.
    #[test]
    fn chain_with_recurring_head_name() {
        let s = schema();
        let chain = vec![s.expect_id("A"), s.expect_id("A"), s.expect_id("B")];
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 30))
            .add("A", region(2, 28))
            .add("B", region(5, 6))
            .build_valid();
        // A ⊃_d A ⊃_d B holds for the outer A.
        assert_eq!(
            direct_chain_program(&inst, &chain).to_vec(),
            &[region(0, 30)]
        );
        // Inserting a C between the two As breaks the first link.
        let inst2 = InstanceBuilder::new(schema())
            .add("A", region(0, 30))
            .add("C", region(1, 29))
            .add("A", region(2, 28))
            .add("B", region(5, 6))
            .build_valid();
        assert!(direct_chain_program(&inst2, &chain).is_empty());
    }
}
