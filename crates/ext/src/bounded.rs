//! The bounded-case expressibility results: Proposition 5.2 (direct
//! inclusion is expressible when nesting depth is bounded — e.g. under an
//! acyclic RIG) and Proposition 5.4 (both-included is expressible when the
//! number of non-overlapping regions is bounded).
//!
//! Both constructions produce genuine region algebra [`Expr`]s, so the
//! claims are checked by evaluating the generated expressions with the
//! ordinary engine against the native operators of [`crate::direct`].

use tr_core::{BinOp, Expr, Schema};

/// `R_1 ∪ … ∪ R_n` over a schema.
pub fn all_names_expr(schema: &Schema) -> Expr {
    let mut ids = schema.ids();
    let first = Expr::name(ids.next().expect("non-empty schema"));
    ids.fold(first, |acc, id| acc.union(Expr::name(id)))
}

/// Proposition 5.2: an algebra expression computing `Q ⊃_d R` on every
/// instance whose `Q`-nesting depth is at most `depth`.
///
/// Layer decomposition: `layer_1(Q) = Q − (Q ⊂ Q)` is the non-nested top
/// layer, for which the paper's identity applies:
/// `Q ⊃_d R = Q ⊃ (R − (R ⊂ All ⊂ Q))`. Deeper layers are peeled off with
/// `rest = Q ⊂ Q` and handled identically; the result is the union over
/// layers. Expression size grows linearly in `depth` per layer but the
/// `rest` sub-expression doubles, so total size is O(4^depth) — fine for
/// the small depths an acyclic RIG guarantees (its longest path bounds the
/// depth, Section 5.1).
pub fn direct_including_expr(q: &Expr, r: &Expr, schema: &Schema, depth: usize) -> Expr {
    assert!(depth >= 1);
    let all = all_names_expr(schema);
    let mut layers = Vec::with_capacity(depth);
    let mut rest = q.clone();
    for _ in 0..depth {
        // layer = rest − (rest ⊂ rest); next rest = rest ⊂ rest.
        let nested = rest.clone().included_in(rest.clone());
        layers.push(rest.clone().diff(nested.clone()));
        rest = nested;
    }
    let mut out: Option<Expr> = None;
    for layer in layers {
        // layer ⊃ (R − (R ⊂ (All ⊂ layer)))
        let blockers = all.clone().included_in(layer.clone());
        let eligible = r.clone().diff(r.clone().included_in(blockers));
        let term = layer.including(eligible);
        out = Some(match out {
            None => term,
            Some(acc) => acc.union(term),
        });
    }
    out.expect("depth >= 1")
}

/// Proposition 5.2, `⊂_d` direction: `Q ⊂_d R` for instances whose
/// `R`-nesting depth is at most `depth`.
pub fn direct_included_expr(q: &Expr, r: &Expr, schema: &Schema, depth: usize) -> Expr {
    assert!(depth >= 1);
    let all = all_names_expr(schema);
    let mut layers = Vec::with_capacity(depth);
    let mut rest = r.clone();
    for _ in 0..depth {
        let nested = rest.clone().included_in(rest.clone());
        layers.push(rest.clone().diff(nested.clone()));
        rest = nested;
    }
    let mut out: Option<Expr> = None;
    for layer in layers {
        let blockers = all.clone().included_in(layer.clone());
        let eligible = q.clone().diff(q.clone().included_in(blockers));
        let term = eligible.included_in(layer);
        out = Some(match out {
            None => term,
            Some(acc) => acc.union(term),
        });
    }
    out.expect("depth >= 1")
}

/// Proposition 5.4: an algebra expression computing `R BI (S, T)` on every
/// instance where (a) the number of pairwise non-overlapping regions is at
/// most `width`, and (b) the regions of `S ∪ T` are pairwise non-nested
/// (as in the Figure 3 family, where `S`/`T` are leaf annotations).
///
/// Rank decomposition over `U = S ∪ T`: `rank≥1 = U`,
/// `rank≥(i+1) = U ∩ (U > rank≥i)` (the length of the longest
/// `<`-chain of `U`-regions ending at `x`). Under (a) ranks stop at
/// `width`; under (b) distinct `U`-regions are disjoint, so `s < t` iff
/// `rank(s) < rank(t)`. Both-included then becomes the union over rank
/// pairs `i < j` of `(R ⊃ S@i) ∩ (R ⊃ T@j)`… except that intersecting the
/// two `⊃` tests loses the "same witnesses" requirement in general — but
/// **not here**: ranks are global, so if `r ⊃ s` with `rank(s) = i` and
/// `r ⊃ t` with `rank(t) = j > i`, then `s ≠ t`, both are in `U`, both
/// disjoint (b), and `t < s` would force `rank(s) > rank(t)` — hence
/// `s < t` inside `r`.
pub fn both_included_expr(r: &Expr, s: &Expr, t: &Expr, width: usize) -> Expr {
    assert!(width >= 2, "a pair needs width at least 2");
    let u = s.clone().union(t.clone());
    // rank_ge[i] (0-based: rank ≥ i+1).
    let mut rank_ge = Vec::with_capacity(width);
    rank_ge.push(u.clone());
    for i in 1..width {
        let prev = rank_ge[i - 1].clone();
        rank_ge.push(
            u.clone()
                .intersect(Expr::bin(BinOp::After, u.clone(), prev)),
        );
    }
    // exact rank i (1-based) = rank_ge[i-1] − rank_ge[i] (or rank_ge[w-1] for i = w).
    let exact = |i: usize| -> Expr {
        if i < width {
            rank_ge[i - 1].clone().diff(rank_ge[i].clone())
        } else {
            rank_ge[width - 1].clone()
        }
    };
    let mut out: Option<Expr> = None;
    for i in 1..width {
        for j in (i + 1)..=width {
            let term = r
                .clone()
                .including(s.clone().intersect(exact(i)))
                .intersect(r.clone().including(t.clone().intersect(exact(j))));
            out = Some(match out {
                None => term,
                Some(acc) => acc.union(term),
            });
        }
    }
    out.expect("width >= 2")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use rand::prelude::*;
    use tr_core::{eval, region, Instance, InstanceBuilder, Schema};

    fn schema() -> Schema {
        Schema::new(["A", "B", "C"])
    }

    fn random_instance(rng: &mut StdRng, max_regions: usize) -> Instance {
        let names = ["A", "B", "C"];
        loop {
            let mut b = InstanceBuilder::new(schema());
            let mut spans = vec![(0u32, 127u32)];
            for _ in 0..rng.gen_range(1..max_regions) {
                let (l, r) = spans[rng.gen_range(0..spans.len())];
                if r - l < 4 {
                    continue;
                }
                let nl = rng.gen_range(l + 1..r);
                let nr = rng.gen_range(nl..r);
                b = b.add(names[rng.gen_range(0..3)], region(nl, nr));
                spans.push((nl, nr));
            }
            if let Ok(inst) = b.build() {
                return inst;
            }
        }
    }

    #[test]
    fn direct_including_expr_matches_native_within_depth() {
        let s = schema();
        let q = Expr::name(s.expect_id("A"));
        let r = Expr::name(s.expect_id("B"));
        let mut rng = StdRng::seed_from_u64(53);
        let e = direct_including_expr(&q, &r, &s, 8);
        for _ in 0..40 {
            let inst = random_instance(&mut rng, 14);
            assert!(inst.nesting_depth() <= 8, "generator stays within depth");
            let expected = direct::directly_including(
                &inst,
                inst.regions_of_name("A"),
                inst.regions_of_name("B"),
            );
            assert_eq!(eval(&e, &inst), expected, "{inst:?}");
        }
    }

    #[test]
    fn direct_included_expr_matches_native_within_depth() {
        let s = schema();
        let q = Expr::name(s.expect_id("B"));
        let r = Expr::name(s.expect_id("A"));
        let mut rng = StdRng::seed_from_u64(59);
        let e = direct_included_expr(&q, &r, &s, 8);
        for _ in 0..40 {
            let inst = random_instance(&mut rng, 14);
            let expected = direct::directly_included(
                &inst,
                inst.regions_of_name("B"),
                inst.regions_of_name("A"),
            );
            assert_eq!(eval(&e, &inst), expected, "{inst:?}");
        }
    }

    #[test]
    fn insufficient_depth_misses_deep_layers() {
        let s = schema();
        let q = Expr::name(s.expect_id("A"));
        let r = Expr::name(s.expect_id("B"));
        // A ⊃ A ⊃ B: the inner A directly includes B, but a depth-1
        // expression only sees the top layer.
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 20))
            .add("A", region(2, 18))
            .add("B", region(5, 6))
            .build_valid();
        let shallow = direct_including_expr(&q, &r, &s, 1);
        let deep = direct_including_expr(&q, &r, &s, 2);
        assert!(eval(&shallow, &inst).is_empty());
        assert_eq!(eval(&deep, &inst).to_vec(), &[region(2, 18)]);
    }

    /// Proposition 5.4 on the Figure-3 shape: Cs containing As and Bs as
    /// leaves.
    #[test]
    fn both_included_expr_matches_native_on_flat_families() {
        let s = schema();
        let r = Expr::name(s.expect_id("C"));
        let se = Expr::name(s.expect_id("A"));
        let te = Expr::name(s.expect_id("B"));
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..30 {
            // A row of C regions, each with a random flat mix of A/B leaves.
            let mut b = InstanceBuilder::new(schema());
            let mut pos = 0u32;
            let mut leaves = 0usize;
            for _ in 0..rng.gen_range(1..5) {
                let n_leaves = rng.gen_range(0..4);
                let c = region(pos, pos + 2 + 3 * n_leaves);
                b = b.add("C", c);
                for k in 0..n_leaves {
                    let l = pos + 1 + 3 * k;
                    b = b.add(if rng.gen_bool(0.5) { "A" } else { "B" }, region(l, l + 1));
                    leaves += 1;
                }
                pos = c.right() + 2;
            }
            let inst = b.build_valid();
            let width = leaves.max(2);
            let e = both_included_expr(&r, &se, &te, width);
            let expected = direct::both_included(
                inst.regions_of_name("C"),
                inst.regions_of_name("A"),
                inst.regions_of_name("B"),
            );
            assert_eq!(eval(&e, &inst), expected, "{inst:?}");
        }
    }

    #[test]
    fn both_included_expr_solves_figure_3() {
        let (inst, h) = tr_markup::figure_3_instance(1);
        let s = inst.schema().clone();
        let width = inst.regions_of_name("A").len() + inst.regions_of_name("B").len();
        let e = both_included_expr(
            &Expr::name(s.expect_id("C")),
            &Expr::name(s.expect_id("B")),
            &Expr::name(s.expect_id("A")),
            width,
        );
        assert_eq!(eval(&e, &inst).to_vec(), &[h.middle_c]);
    }
}
