//! Reduction sequences and `k`-reduced versions (Definition 4.3) — the
//! refined machinery behind Theorem 4.4.
//!
//! A *0-reduced* version of `I` is anything obtained by a sequence of
//! `reduce` operations; a *k-reduced* version must additionally come with
//! a `(k−1)`-reduced companion whose region classes certify that enough
//! order information survived. [`apply_reductions`] runs a sequence and
//! composes the mapping `h`; [`verify_k_reduced`] checks the certificate
//! chain.
//!
//! Interpretation note: Definition 4.3's condition compares `r < s` in
//! `I` with `h_k(r) < t` for `t` in the `h_{k−1}`-class of `s`. Read
//! literally (fixed `s`, existential `t`) it is not satisfiable even by
//! the paper's own Figure 3 construction: the region that contains the
//! deleted twin precedes the twin's class representative without
//! preceding the twin. We therefore check the **class-wise** reading over
//! **surviving** regions, in both directions: for every `r ∈ I ∩ I'` and
//! every `h_{k−1}`-class `C`,
//!
//! ```text
//! (∃ s ∈ C: r < s in I)  ⟺  (∃ t ∈ C ∩ I': r < t in I')
//! (∃ s ∈ C: s < r in I)  ⟺  (∃ t ∈ C ∩ I': t < r in I')
//! ```
//!
//! — precedence *to a class* is preserved for every surviving region.
//! (For deleted regions the invariant Proposition 4.5's induction needs
//! is weaker still — sub-expressions with fewer order operations cannot
//! isolate a class, only coarser definable sets — so no per-class
//! condition on deleted regions is sound to require; the exhaustive
//! Theorem 4.4 sweeps below validate the end-to-end statement.)

use crate::reduce::{reduce, reduce_mapping};
use std::collections::BTreeMap;
use tr_core::{Instance, Region, WordIndex};

/// One reduce step: `(deleted, image)` — the first region's subtree is
/// removed after checking it is isomorphic to the second's.
pub type ReduceStep = (Region, Region);

/// Applies a sequence of reduce steps (each addressed against the
/// *current* instance), returning the final instance and the composed
/// mapping `h` from every region of the original to its survivor. `None`
/// if any step's regions are missing or not isomorphic.
pub fn apply_reductions<W: WordIndex + Clone>(
    inst: &Instance<W>,
    steps: &[ReduceStep],
    patterns: &[&str],
) -> Option<(Instance<W>, BTreeMap<Region, Region>)> {
    let mut current = inst.clone();
    let mut h: BTreeMap<Region, Region> = inst.all_regions().iter().map(|r| (r, r)).collect();
    for &(r1, r2) in steps {
        let next = reduce(&current, r1, r2, patterns)?;
        for image in h.values_mut() {
            *image = reduce_mapping(&current, r1, r2, *image)?;
        }
        current = next;
    }
    Some((current, h))
}

/// Verifies that `levels[0]` describes a `k`-reduced version of `inst`
/// (with `k = levels.len() − 1`): each level must be a valid reduction
/// sequence, and each consecutive pair must satisfy the class-wise order
/// condition above. `levels.last()` is the 0-reduced base (no condition
/// beyond validity).
pub fn verify_k_reduced<W: WordIndex + Clone>(
    inst: &Instance<W>,
    levels: &[Vec<ReduceStep>],
    patterns: &[&str],
) -> bool {
    if levels.is_empty() {
        return false;
    }
    let mut applied = Vec::with_capacity(levels.len());
    for steps in levels {
        match apply_reductions(inst, steps, patterns) {
            Some(pair) => applied.push(pair),
            None => return false,
        }
    }
    let originals: Vec<Region> = inst.all_regions().iter().collect();
    for j in 0..applied.len() - 1 {
        let (reduced, h_k) = &applied[j]; // the deeper (k-level) version I'
        let (_, h_km1) = &applied[j + 1]; // its (k−1)-reduced companion I''
                                          // h_{k−1}-classes over the original regions.
        let mut classes: BTreeMap<Region, Vec<Region>> = BTreeMap::new();
        for &r in &originals {
            classes.entry(h_km1[&r]).or_default().push(r);
        }
        for &r in &originals {
            let hr = h_k[&r];
            if hr != r {
                continue; // deleted region: see the module docs
            }
            for class in classes.values() {
                let lhs_fwd = class.iter().any(|&s| r.precedes(s));
                let rhs_fwd = class
                    .iter()
                    .filter(|&&t| reduced.contains(t))
                    .any(|&t| hr.precedes(t));
                if lhs_fwd != rhs_fwd {
                    return false;
                }
                let lhs_bwd = class.iter().any(|&s| s.precedes(r));
                let rhs_bwd = class
                    .iter()
                    .filter(|&&t| reduced.contains(t))
                    .any(|&t| t.precedes(hr));
                if lhs_bwd != rhs_bwd {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::eval;
    use tr_markup::figure_3_instance;

    /// The Theorem 5.3 certificate: `I' = reduce(I, a'', a')` is 1-reduced,
    /// witnessed by `I'' = reduce(I', mid_C, next_C)`.
    fn figure_3_levels(k: usize) -> (Instance, Vec<Vec<ReduceStep>>) {
        let (inst, h) = figure_3_instance(k);
        let cs = inst.regions_of_name("C");
        let mid_idx = cs.iter().position(|c| c == h.middle_c).unwrap();
        let next_c = cs.iter().nth(mid_idx + 1).unwrap();
        let level_k = vec![(h.second_a, h.first_a)];
        let level_km1 = vec![(h.second_a, h.first_a), (h.middle_c, next_c)];
        (inst, vec![level_k, level_km1])
    }

    #[test]
    fn apply_composes_mappings() {
        let (inst, levels) = figure_3_levels(1);
        let (reduced, h) = apply_reductions(&inst, &levels[1], &[]).expect("valid chain");
        // After both reduces, the middle C's regions land in the next C.
        let (_, handles) = figure_3_instance(1);
        let img = h[&handles.middle_c];
        assert_ne!(img, handles.middle_c);
        assert!(reduced.contains(img));
        assert_eq!(reduced.name_of(img), inst.name_of(handles.middle_c));
        // Untouched regions map to themselves.
        let first_c = inst.regions_of_name("C").iter().next().unwrap();
        assert_eq!(h[&first_c], first_c);
    }

    #[test]
    fn apply_rejects_bad_steps() {
        let (inst, h) = figure_3_instance(1);
        // Reducing an A onto a B is not an isomorphism.
        let b = inst.regions_of_name("B").iter().next().unwrap();
        assert!(apply_reductions(&inst, &[(h.first_a, b)], &[]).is_none());
        // Unknown regions fail too.
        assert!(apply_reductions(&inst, &[(tr_core::region(9000, 9001), b)], &[]).is_none());
    }

    /// The proof of Theorem 5.3, step "all we have to show": the Figure 3
    /// reduction chain is a valid 1-reduced certificate.
    #[test]
    fn figure_3_chain_is_1_reduced() {
        for k in [1usize, 2] {
            let (inst, levels) = figure_3_levels(k);
            assert!(verify_k_reduced(&inst, &levels, &[]), "k = {k}");
        }
    }

    /// A reduction that destroys order information is *not* certified:
    /// use the middle-C reduce alone as the top level with itself as
    /// companion base — deleting a whole C changes which classes precede
    /// what relative to the single-step version.
    #[test]
    fn broken_certificates_are_rejected() {
        let (inst, h) = figure_3_instance(1);
        let cs = inst.regions_of_name("C");
        let mid_idx = cs.iter().position(|c| c == h.middle_c).unwrap();
        let next_c = cs.iter().nth(mid_idx + 1).unwrap();
        // Top level: delete the A twin. Companion: delete a *different,
        // unrelated* pair (first C onto second C) — classes don't line up.
        let first_c = cs.iter().next().unwrap();
        let second_c = cs.iter().nth(1).unwrap();
        let levels = vec![vec![(h.middle_c, next_c)], vec![(first_c, second_c)]];
        assert!(!verify_k_reduced(&inst, &levels, &[]));
        // And an empty certificate is rejected outright.
        assert!(!verify_k_reduced(&inst, &[], &[]));
    }

    /// Theorem 4.4 through the certificate: expressions with at most one
    /// order operation are invariant across the certified 1-reduced
    /// version — exhaustively for all expressions up to 2 operations.
    #[test]
    fn theorem_4_4_holds_for_k_1() {
        let (inst, levels) = figure_3_levels(2);
        assert!(verify_k_reduced(&inst, &levels, &[]));
        let (reduced, _) = apply_reductions(&inst, &levels[0], &[]).unwrap();
        let schema = tr_markup::figure_3_schema();
        let mut checked = 0u32;
        for ops in 0..=2 {
            crate::enumerate::for_each_expr(&schema, ops, &mut |e| {
                if e.num_order_ops() > 1 {
                    return false; // k = 1 only covers one order operation
                }
                checked += 1;
                let before = eval(e, &inst);
                let after = eval(e, &reduced);
                assert_eq!(before.is_empty(), after.is_empty(), "{e}");
                for r in reduced.all_regions().iter() {
                    assert_eq!(before.contains(r), after.contains(r), "{e} at {r}");
                }
                false
            });
        }
        assert!(checked > 2000, "sweep must be substantial (got {checked})");
    }
}
