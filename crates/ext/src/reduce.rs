//! The `reduce` operation and region isomorphism (Definitions 4.2/4.3),
//! the machinery behind the reduction theorem (Theorem 4.4) and the
//! both-included inexpressibility proof (Theorem 5.3).
//!
//! Definition 4.2: `S_r` is the set of regions containing `r` together
//! with the regions included in `r`; two regions are *isomorphic w.r.t.
//! P* when a 1-1 mapping between their `S`-sets preserves inclusion,
//! precedence, region names, and pattern truth. `reduce(I, r₁, r₂)` tests
//! isomorphism and deletes `r₁`'s side.
//!
//! Interpretation note: read literally, deleting all of `S_{r₁}` would
//! delete `r₁`'s ancestors — which are *shared* with `r₂` whenever the two
//! regions are siblings (the only case the paper exercises, in the proof
//! of Theorem 5.3, where the text also says the result "contains all the
//! regions of I except r''"). We therefore implement the evidently
//! intended semantics: after checking the `S`-set isomorphism, delete
//! `r₁` and the regions included in it (its subtree), keeping the shared
//! ancestors.

use tr_core::{Instance, Region, RegionSet, WordIndex};

/// True if `r1` and `r2` are isomorphic w.r.t. `patterns` in `inst`
/// (Definition 4.2): their ancestor chains match level-by-level and their
/// subtrees are order-isomorphic, where matching nodes must agree on
/// region name and on `W(·, p)` for every `p ∈ patterns`.
pub fn isomorphic<W: WordIndex>(
    inst: &Instance<W>,
    r1: Region,
    r2: Region,
    patterns: &[&str],
) -> bool {
    let forest = inst.forest();
    let (Some(i1), Some(i2)) = (forest.index_of(r1), forest.index_of(r2)) else {
        return false;
    };
    // Ancestors (nearest first) must match in name and pattern truth.
    let chain = |mut i: usize| {
        let mut out = Vec::new();
        while let Some(p) = forest.parent(i) {
            out.push(p);
            i = p;
        }
        out
    };
    let (c1, c2) = (chain(i1), chain(i2));
    if c1.len() != c2.len() {
        return false;
    }
    for (&a, &b) in c1.iter().zip(&c2) {
        if !labels_match(inst, forest.node(a), forest.node(b), patterns) {
            return false;
        }
    }
    // Subtrees must be order-isomorphic.
    subtree_isomorphic(inst, &forest, i1, i2, patterns)
}

fn labels_match<W: WordIndex>(
    inst: &Instance<W>,
    a: (Region, tr_core::NameId),
    b: (Region, tr_core::NameId),
    patterns: &[&str],
) -> bool {
    a.1 == b.1
        && patterns
            .iter()
            .all(|p| inst.word_index().matches(a.0, p) == inst.word_index().matches(b.0, p))
}

fn subtree_isomorphic<W: WordIndex>(
    inst: &Instance<W>,
    forest: &tr_core::Forest,
    i1: usize,
    i2: usize,
    patterns: &[&str],
) -> bool {
    if !labels_match(inst, forest.node(i1), forest.node(i2), patterns) {
        return false;
    }
    let (k1, k2) = (forest.children(i1), forest.children(i2));
    k1.len() == k2.len()
        && k1
            .iter()
            .zip(k2)
            .all(|(&a, &b)| subtree_isomorphic(inst, forest, a, b, patterns))
}

/// `reduce(I, r₁, r₂)`: if the two regions are isomorphic w.r.t.
/// `patterns`, returns `I` with `r₁`'s subtree (including `r₁`) deleted;
/// otherwise `None`.
pub fn reduce<W: WordIndex + Clone>(
    inst: &Instance<W>,
    r1: Region,
    r2: Region,
    patterns: &[&str],
) -> Option<Instance<W>> {
    if r1 == r2 || !isomorphic(inst, r1, r2, patterns) {
        return None;
    }
    let doomed: RegionSet = inst
        .all_regions()
        .iter()
        .filter(|&x| x == r1 || r1.includes(x))
        .collect();
    Some(inst.without_regions(&doomed))
}

/// The mapping `h` a single reduce defines (Section 4.2): regions of
/// `r₁`'s subtree map to their isomorphic images in `r₂`'s subtree, all
/// other regions map to themselves. Returns `None` for regions not in the
/// original instance.
pub fn reduce_mapping<W: WordIndex>(
    inst: &Instance<W>,
    r1: Region,
    r2: Region,
    query: Region,
) -> Option<Region> {
    if !inst.contains(query) {
        return None;
    }
    if query != r1 && !r1.includes(query) {
        return Some(query);
    }
    // Walk the same child-index path in r2's subtree.
    let forest = inst.forest();
    let (i1, i2) = (forest.index_of(r1)?, forest.index_of(r2)?);
    let mut path = Vec::new();
    let mut cur = forest.index_of(query)?;
    while cur != i1 {
        let p = forest.parent(cur)?;
        let pos = forest.children(p).iter().position(|&c| c == cur)?;
        path.push(pos);
        cur = p;
    }
    let mut dst = i2;
    for &pos in path.iter().rev() {
        dst = *forest.children(dst).get(pos)?;
    }
    Some(forest.node(dst).0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::{eval, region, Expr, InstanceBuilder, Schema};
    use tr_markup::figure_3_instance;

    fn schema() -> Schema {
        Schema::new(["A", "B", "C"])
    }

    #[test]
    fn sibling_leaves_are_isomorphic() {
        let inst = InstanceBuilder::new(schema())
            .add("C", region(0, 9))
            .add("A", region(1, 2))
            .add("A", region(4, 5))
            .build_valid();
        assert!(isomorphic(&inst, region(1, 2), region(4, 5), &[]));
        assert!(isomorphic(&inst, region(4, 5), region(1, 2), &[]));
    }

    #[test]
    fn different_names_or_patterns_break_isomorphism() {
        let inst = InstanceBuilder::new(schema())
            .add("C", region(0, 9))
            .add("A", region(1, 2))
            .add("B", region(4, 5))
            .occurrence("x", 1, 1)
            .build_valid();
        assert!(
            !isomorphic(&inst, region(1, 2), region(4, 5), &[]),
            "names differ"
        );
        let inst2 = InstanceBuilder::new(schema())
            .add("C", region(0, 9))
            .add("A", region(1, 2))
            .add("A", region(4, 5))
            .occurrence("x", 1, 1)
            .build_valid();
        assert!(
            isomorphic(&inst2, region(1, 2), region(4, 5), &[]),
            "no patterns considered"
        );
        assert!(
            !isomorphic(&inst2, region(1, 2), region(4, 5), &["x"]),
            "pattern truth differs"
        );
    }

    #[test]
    fn different_ancestor_chains_break_isomorphism() {
        // One A under C, another under B-under-C.
        let inst = InstanceBuilder::new(schema())
            .add("C", region(0, 19))
            .add("A", region(1, 2))
            .add("B", region(4, 10))
            .add("A", region(5, 6))
            .build_valid();
        assert!(!isomorphic(&inst, region(1, 2), region(5, 6), &[]));
    }

    #[test]
    fn subtree_structure_matters() {
        let inst = InstanceBuilder::new(schema())
            .add("C", region(0, 19))
            .add("A", region(1, 5))
            .add("B", region(2, 3))
            .add("A", region(8, 12))
            .build_valid();
        assert!(
            !isomorphic(&inst, region(1, 5), region(8, 12), &[]),
            "one has a child"
        );
    }

    #[test]
    fn reduce_deletes_one_subtree() {
        let inst = InstanceBuilder::new(schema())
            .add("C", region(0, 19))
            .add("A", region(1, 5))
            .add("B", region(2, 3))
            .add("A", region(8, 12))
            .add("B", region(9, 10))
            .build_valid();
        let out = reduce(&inst, region(1, 5), region(8, 12), &[]).expect("isomorphic");
        assert_eq!(out.len(), 3);
        assert!(out.contains(region(0, 19)), "shared ancestor kept");
        assert!(out.contains(region(8, 12)));
        assert!(!out.contains(region(1, 5)));
        assert!(!out.contains(region(2, 3)), "subtree goes too");
        // Non-isomorphic pair refuses.
        assert!(reduce(&inst, region(2, 3), region(8, 12), &[]).is_none());
        // Self-reduce refuses.
        assert!(reduce(&inst, region(1, 5), region(1, 5), &[]).is_none());
    }

    #[test]
    fn mapping_sends_subtree_to_image() {
        let inst = InstanceBuilder::new(schema())
            .add("C", region(0, 19))
            .add("A", region(1, 5))
            .add("B", region(2, 3))
            .add("A", region(8, 12))
            .add("B", region(9, 10))
            .build_valid();
        let (r1, r2) = (region(1, 5), region(8, 12));
        assert_eq!(
            reduce_mapping(&inst, r1, r2, region(1, 5)),
            Some(region(8, 12))
        );
        assert_eq!(
            reduce_mapping(&inst, r1, r2, region(2, 3)),
            Some(region(9, 10))
        );
        assert_eq!(
            reduce_mapping(&inst, r1, r2, region(0, 19)),
            Some(region(0, 19))
        );
        assert_eq!(
            reduce_mapping(&inst, r1, r2, region(4, 4)),
            None,
            "not a region"
        );
    }

    /// The Theorem 5.3 scenario: reducing the middle C's second A is a
    /// legal reduce, and order-insensitive queries (k = 0) cannot tell the
    /// difference — while the BI semantics (inexpressible) does change.
    #[test]
    fn figure_3_reduce_fools_order_free_queries() {
        let (inst, h) = figure_3_instance(2);
        let reduced = reduce(&inst, h.second_a, h.first_a, &[]).expect("the two As are isomorphic");
        assert_eq!(reduced.len(), inst.len() - 1);
        let s = inst.schema().clone();
        let c = Expr::name(s.expect_id("C"));
        let a = Expr::name(s.expect_id("A"));
        let b = Expr::name(s.expect_id("B"));
        // Some order-free queries: identical answers on both instances for
        // every surviving region (Theorem 4.4 with k = 0).
        for e in [
            c.clone().including(a.clone()),
            c.clone().including(b.clone().including(a.clone())),
            a.clone().included_in(c.clone()),
            c.clone().diff(c.clone().including(a.clone())),
        ] {
            let before = eval(&e, &inst);
            let after = eval(&e, &reduced);
            for r in reduced.all_regions().iter() {
                assert_eq!(before.contains(r), after.contains(r), "query {e}");
            }
            assert_eq!(before.is_empty(), after.is_empty(), "query {e}");
        }
        // The BI semantics *does* change: the middle C loses its B < A pair.
        let bi_before = crate::direct::both_included(
            inst.regions_of_name("C"),
            inst.regions_of_name("B"),
            inst.regions_of_name("A"),
        );
        let bi_after = crate::direct::both_included(
            reduced.regions_of_name("C"),
            reduced.regions_of_name("B"),
            reduced.regions_of_name("A"),
        );
        assert_eq!(bi_before.to_vec(), &[h.middle_c]);
        assert!(bi_after.is_empty());
    }
}
