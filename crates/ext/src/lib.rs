//! # tr-ext — beyond the algebra: direct inclusion and both-included
//!
//! Section 5 of the paper proves the region algebra cannot express
//! *direct inclusion* (`⊃_d`, `⊂_d`) or *both-included* (`BI`); Section 6
//! shows how to support them anyway by embedding the algebra in a host
//! language with loops. This crate implements both sides:
//!
//! * [`direct`] — native evaluation of the three extended operators;
//! * [`program`] — the Section 6 while-loop programs (per-operator,
//!   single-loop chain, RIG-pruned `All` set);
//! * [`bounded`] — the Propositions 5.2/5.4 constructions: genuine
//!   algebra expressions that work under bounded nesting depth / bounded
//!   antichain width;
//! * [`deletion`] — the deletion theorem (4.1) made executable;
//! * [`reduce()`] — the `reduce` operation and region isomorphism (4.2);
//! * [`kreduce`] — reduction sequences and k-reduced certificates (4.3);
//! * [`enumerate`] — exhaustive expression sweeps refuting expressibility
//!   (the executable face of Theorems 5.1/5.3).

#![warn(missing_docs)]

pub mod bounded;
pub mod deletion;
pub mod direct;
pub mod enumerate;
pub mod kreduce;
pub mod program;
pub mod reduce;
pub mod synth;

pub use bounded::{
    all_names_expr, both_included_expr, direct_included_expr, direct_including_expr,
};
pub use deletion::{check_deletion_invariance, deletion_core};
pub use direct::{both_included, directly_included, directly_including};
pub use enumerate::{
    both_included_probes, count_exprs, direct_inclusion_probes, for_each_expr, sweep, Probe,
    SweepResult,
};
pub use kreduce::{apply_reductions, verify_k_reduced, ReduceStep};
pub use program::{
    direct_chain_program, direct_chain_program_filtered, direct_included_program,
    direct_including_program,
};
pub use reduce::{isomorphic, reduce, reduce_mapping};
pub use synth::{synthesize, to_rules_txt, SynthConfig, SynthReport, SynthRule};
