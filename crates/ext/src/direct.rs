//! The extended operators of Section 5, evaluated natively (outside the
//! algebra — Theorems 5.1/5.3 prove the algebra itself cannot express
//! them):
//!
//! * `R ⊃_d S` / `R ⊂_d S` — *direct* inclusion: no other region of the
//!   instance lies in between;
//! * `R BI (S, T)` — *both-included*: regions of `R` containing an `S`
//!   region that precedes a `T` region, with both inside the same `R`
//!   region (the classic "document-scoped" retrieval request).

use tr_core::{Instance, Pos, Region, RegionSet};

/// `R ⊃_d S = {r ∈ R : ∃s ∈ S, r ⊃ s ∧ ¬∃t ∈ I, r ⊃ t ∧ t ⊃ s}`.
///
/// Direct inclusion is relative to *all* regions of the instance `I`, so
/// the instance is a parameter. O(|I|) via the forest view: `r` directly
/// includes `s` iff `r` is `s`'s forest parent.
pub fn directly_including<W>(inst: &Instance<W>, r: &RegionSet, s: &RegionSet) -> RegionSet {
    let forest = inst.forest();
    let mut out = Vec::new();
    for sr in s.iter() {
        if let Some(si) = forest.index_of(sr) {
            if let Some(pi) = forest.parent(si) {
                let (parent, _) = forest.node(pi);
                if r.contains(parent) {
                    out.push(parent);
                }
            }
        }
    }
    RegionSet::from_regions(out)
}

/// `R ⊂_d S = {r ∈ R : ∃s ∈ S, s ⊃ r ∧ ¬∃t ∈ I, s ⊃ t ∧ t ⊃ r}`.
pub fn directly_included<W>(inst: &Instance<W>, r: &RegionSet, s: &RegionSet) -> RegionSet {
    let forest = inst.forest();
    r.filter(|x| {
        forest
            .index_of(x)
            .and_then(|i| forest.parent(i))
            .is_some_and(|pi| s.contains(forest.node(pi).0))
    })
}

/// `R BI (S, T) = {r ∈ R : ∃s ∈ S, ∃t ∈ T, r ⊃ s ∧ r ⊃ t ∧ s < t}`
/// (Section 5.2).
///
/// For each `r`, the `S` regions strictly inside `r` form a contiguous
/// slice of `S`'s sorted order (hierarchical instances have no partial
/// overlap), so the test reduces to "min right endpoint of `S`-inside-`r`
/// < max left endpoint of `T`-inside-`r`", answered with prefix/suffix
/// extrema — O((|R| + |S| + |T|) log) overall.
pub fn both_included(r: &RegionSet, s: &RegionSet, t: &RegionSet) -> RegionSet {
    if r.is_empty() || s.is_empty() || t.is_empty() {
        return RegionSet::new();
    }
    let s_min_right = PrefixMinRight::new(s);
    let t_max_left: Vec<Pos> = t.iter().map(|x| x.left()).collect();
    r.filter(|x| {
        let Some(min_right) = inside_range(s, x).and_then(|(lo, hi)| s_min_right.min(lo, hi))
        else {
            return false;
        };
        // Any T inside x with left > min_right gives a pair s < t. T inside
        // x forms the contiguous range too; its max left is at the end.
        match inside_range(t, x) {
            // The last in-range T region has the largest left endpoint;
            // a pair s < t exists iff it starts after the earliest S end.
            Some((_, hi)) => t_max_left[hi - 1] > min_right,
            None => false,
        }
    })
}

/// The contiguous index range of regions of `set` strictly inside `x`
/// (relies on hierarchy: any region starting inside `x` is nested in it,
/// modulo the shared-left-endpoint case, which is handled by skipping
/// non-included heads).
fn inside_range(set: &RegionSet, x: Region) -> Option<(usize, usize)> {
    let mut lo = set.lower_bound_left(x.left());
    let hi = set.upper_bound_left(x.right());
    // Regions with left == left(x) are inside x only if strictly shorter;
    // they are sorted right-descending, so skip the oversized head.
    while lo < hi && !x.includes(set.get(lo)) {
        lo += 1;
    }
    (lo < hi).then_some((lo, hi))
}

/// Prefix-min over right endpoints restricted to arbitrary subranges —
/// a sparse table like `tr_core::ops::MinRightRmq`, rebuilt here to avoid
/// exposing core internals.
struct PrefixMinRight {
    table: Vec<Vec<Pos>>,
}

impl PrefixMinRight {
    fn new(s: &RegionSet) -> PrefixMinRight {
        let base: Vec<Pos> = s.iter().map(|r| r.right()).collect();
        let n = base.len();
        let mut table = vec![base];
        let mut k = 1;
        while (1 << k) <= n {
            let half = 1 << (k - 1);
            let prev = &table[k - 1];
            table.push(
                (0..=n - (1 << k))
                    .map(|i| prev[i].min(prev[i + half]))
                    .collect(),
            );
            k += 1;
        }
        PrefixMinRight { table }
    }

    fn min(&self, lo: usize, hi: usize) -> Option<Pos> {
        if lo >= hi {
            return None;
        }
        let k = usize::BITS as usize - 1 - (hi - lo).leading_zeros() as usize;
        Some(self.table[k][lo].min(self.table[k][hi - (1 << k)]))
    }
}

/// Literal-transcription reference implementations, used as oracles.
pub mod naive {
    use super::*;

    /// `R ⊃_d S` by the set-builder definition.
    pub fn directly_including<W>(inst: &Instance<W>, r: &RegionSet, s: &RegionSet) -> RegionSet {
        let all = inst.all_regions();
        r.filter(|x| {
            s.iter()
                .any(|y| x.includes(y) && !all.iter().any(|t| x.includes(t) && t.includes(y)))
        })
    }

    /// `R ⊂_d S` by the set-builder definition.
    pub fn directly_included<W>(inst: &Instance<W>, r: &RegionSet, s: &RegionSet) -> RegionSet {
        let all = inst.all_regions();
        r.filter(|x| {
            s.iter()
                .any(|y| y.includes(x) && !all.iter().any(|t| y.includes(t) && t.includes(x)))
        })
    }

    /// `R BI (S, T)` by the set-builder definition.
    pub fn both_included(r: &RegionSet, s: &RegionSet, t: &RegionSet) -> RegionSet {
        r.filter(|x| {
            s.iter()
                .any(|y| x.includes(y) && t.iter().any(|z| x.includes(z) && y.precedes(z)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::{region, InstanceBuilder, Schema};

    fn schema() -> Schema {
        Schema::new(["A", "B", "C"])
    }

    /// Nested procedures scenario from Section 5.1: a Proc-like A contains
    /// another A; the inner one directly contains the B.
    #[test]
    fn direct_inclusion_skips_ancestors() {
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 20))
            .add("A", region(2, 18))
            .add("B", region(5, 6))
            .build_valid();
        let a = inst.regions_of_name("A");
        let b = inst.regions_of_name("B");
        assert_eq!(directly_including(&inst, a, b).to_vec(), &[region(2, 18)]);
        assert_eq!(directly_included(&inst, b, a).to_vec(), &[region(5, 6)]);
        // The outer A includes B but not directly.
        assert_eq!(tr_core::ops::includes(a, b).len(), 2);
    }

    #[test]
    fn direct_inclusion_respects_interleaved_names() {
        // A ⊃ C ⊃ B: C breaks the directness.
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 10))
            .add("C", region(1, 9))
            .add("B", region(2, 3))
            .build_valid();
        let a = inst.regions_of_name("A");
        let b = inst.regions_of_name("B");
        assert!(directly_including(&inst, a, b).is_empty());
        assert!(directly_included(&inst, b, a).is_empty());
        let c = inst.regions_of_name("C");
        assert_eq!(directly_including(&inst, c, b).to_vec(), &[region(1, 9)]);
    }

    #[test]
    fn both_included_scopes_the_pair() {
        // C1 [ B A ]  C2 [ A B ] — only C2 has A before B.
        let inst = InstanceBuilder::new(schema())
            .add("C", region(0, 9))
            .add("B", region(1, 2))
            .add("A", region(4, 5))
            .add("C", region(20, 29))
            .add("A", region(21, 22))
            .add("B", region(24, 25))
            .build_valid();
        let c = inst.regions_of_name("C");
        let a = inst.regions_of_name("A");
        let b = inst.regions_of_name("B");
        assert_eq!(both_included(c, a, b).to_vec(), &[region(20, 29)]);
        assert_eq!(both_included(c, b, a).to_vec(), &[region(0, 9)]);
    }

    #[test]
    fn both_included_requires_distinct_disjoint_pair() {
        let inst = InstanceBuilder::new(schema())
            .add("C", region(0, 9))
            .add("A", region(1, 5))
            .add("B", region(2, 3))
            .build_valid();
        // B is inside A: no A < B pair inside C.
        let c = inst.regions_of_name("C");
        assert!(both_included(c, inst.regions_of_name("A"), inst.regions_of_name("B")).is_empty());
    }

    #[test]
    fn fast_matches_naive_on_random_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..40 {
            // Random hierarchical instance via interval splitting.
            let mut b = InstanceBuilder::new(schema());
            let names = ["A", "B", "C"];
            let mut spans = vec![(0u32, 63u32)];
            for _ in 0..rng.gen_range(1..12) {
                let (l, r) = spans[rng.gen_range(0..spans.len())];
                if r - l < 4 {
                    continue;
                }
                let nl = rng.gen_range(l + 1..r);
                let nr = rng.gen_range(nl..r);
                b = b.add(names[rng.gen_range(0..3)], region(nl, nr));
                spans.push((nl, nr));
            }
            let Ok(inst) = b.build() else { continue };
            let a = inst.regions_of_name("A").clone();
            let bb = inst.regions_of_name("B").clone();
            let c = inst.regions_of_name("C").clone();
            assert_eq!(
                directly_including(&inst, &a, &bb),
                naive::directly_including(&inst, &a, &bb),
                "⊃_d trial {trial} {inst:?}"
            );
            assert_eq!(
                directly_included(&inst, &bb, &a),
                naive::directly_included(&inst, &bb, &a),
                "⊂_d trial {trial} {inst:?}"
            );
            assert_eq!(
                both_included(&c, &a, &bb),
                naive::both_included(&c, &a, &bb),
                "BI trial {trial} {inst:?}"
            );
        }
    }

    #[test]
    fn empty_inputs() {
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 5))
            .build_valid();
        let a = inst.regions_of_name("A");
        let empty = RegionSet::new();
        assert!(directly_including(&inst, a, &empty).is_empty());
        assert!(directly_included(&inst, &empty, a).is_empty());
        assert!(both_included(a, &empty, a).is_empty());
        assert!(both_included(&empty, a, a).is_empty());
    }
}
