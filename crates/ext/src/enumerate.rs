//! Exhaustive enumeration of region algebra expressions — the engine of
//! the inexpressibility experiments (E6/E7, Theorems 5.1 and 5.3).
//!
//! The theorems say *no* algebra expression computes `⊃_d` or `BI`. For
//! any concrete size bound that is a finite claim, and this module checks
//! it by brute force: enumerate every expression with up to `k`
//! operations and test it against the target semantics on a set of probe
//! instances.
//!
//! Enumeration is restricted to pattern-free expressions, which is
//! without loss of generality here: the probe families carry no pattern
//! occurrences, so on them `σ_p(e) ≡ e − e` (both empty), and every
//! expression with selections is equivalent on the probes to a
//! no-larger expression without them.

use tr_core::{BinOp, Expr, Instance, NameId, RegionSet, Schema};

/// Calls `f` on every pattern-free expression with exactly `ops`
/// operations over `schema`'s names. `f` returning `true` stops the
/// enumeration (and makes this function return `true`).
pub fn for_each_expr(schema: &Schema, ops: usize, f: &mut dyn FnMut(&Expr) -> bool) -> bool {
    let names: Vec<NameId> = schema.ids().collect();
    let mut e = Enumerator { names: &names, f };
    e.go(ops, &mut |s, expr| (s.f)(&expr))
}

/// The number of pattern-free expressions with exactly `ops` operations
/// over `n_names` names: `Catalan(ops) · 7^ops · n^(ops+1)` — reported by
/// experiment E6 so readers can see the search-space growth.
pub fn count_exprs(n_names: usize, ops: usize) -> u64 {
    let catalan = {
        let mut c: u64 = 1;
        for i in 0..ops as u64 {
            c = c * 2 * (2 * i + 1) / (i + 2);
        }
        c
    };
    catalan * 7u64.pow(ops as u32) * (n_names as u64).pow(ops as u32 + 1)
}

struct Enumerator<'a> {
    names: &'a [NameId],
    f: &'a mut dyn FnMut(&Expr) -> bool,
}

impl Enumerator<'_> {
    /// Enumerates expressions with exactly `ops` operations, handing each
    /// to `then` (with `self` threaded through for further nesting).
    fn go(&mut self, ops: usize, then: &mut dyn FnMut(&mut Self, Expr) -> bool) -> bool {
        if ops == 0 {
            for &id in self.names {
                if then(self, Expr::name(id)) {
                    return true;
                }
            }
            return false;
        }
        for split in 0..ops {
            let right_ops = ops - 1 - split;
            let stop = self.go(split, &mut |s, l| {
                s.go(right_ops, &mut |s2, r| {
                    for op in BinOp::ALL {
                        if then(s2, Expr::bin(op, l.clone(), r.clone())) {
                            return true;
                        }
                    }
                    false
                })
            });
            if stop {
                return true;
            }
        }
        false
    }
}

/// A probe: an instance together with the target operator's answer on it.
pub struct Probe {
    /// The probe instance.
    pub instance: Instance,
    /// What the (inexpressible) operator returns on it.
    pub expected: RegionSet,
}

/// The outcome of an exhaustive refutation sweep at one size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepResult {
    /// Expression size (operation count) swept.
    pub ops: usize,
    /// How many expressions were checked.
    pub checked: u64,
    /// How many matched the target on *every* probe (0 proves the bound).
    pub matching: u64,
}

/// Checks every expression with exactly `ops` operations against the
/// probes; an expression "matches" if it reproduces `expected` on all of
/// them. Theorems 5.1/5.3 predict `matching == 0` for the right probe
/// families at every size.
pub fn sweep(schema: &Schema, ops: usize, probes: &[Probe]) -> SweepResult {
    let mut checked = 0u64;
    let mut matching = 0u64;
    for_each_expr(schema, ops, &mut |e| {
        checked += 1;
        if probes
            .iter()
            .all(|p| tr_core::eval(e, &p.instance) == p.expected)
        {
            matching += 1;
        }
        false
    });
    SweepResult {
        ops,
        checked,
        matching,
    }
}

/// The probe family refuting `B ⊃_d A` (Theorem 5.1 / Figure 2):
/// alternating chains of several depths plus their single-deletion
/// variants — by the deletion theorem any bounded expression must answer
/// both the same, while `⊃_d` does not.
pub fn direct_inclusion_probes(depths: &[usize]) -> Vec<Probe> {
    let schema = tr_markup::figure_2_schema();
    let b = schema.expect_id("B");
    let a = schema.expect_id("A");
    let mut probes = Vec::new();
    for &d in depths {
        let inst = tr_markup::figure_2_instance(d);
        let expected =
            crate::direct::directly_including(&inst, inst.regions_of(b), inst.regions_of(a));
        probes.push(Probe {
            instance: inst.clone(),
            expected,
        });
        // Delete one interior A level: the B above it stops directly
        // including an A.
        let chain = tr_markup::figure_2_chain(d);
        for (i, &r) in chain.iter().enumerate() {
            if i % 2 == 1 && i + 1 < chain.len() {
                let smaller = inst.without_regions(&RegionSet::singleton(r));
                let expected = crate::direct::directly_including(
                    &smaller,
                    smaller.regions_of(b),
                    smaller.regions_of(a),
                );
                probes.push(Probe {
                    instance: smaller,
                    expected,
                });
            }
        }
    }
    probes
}

/// The probe family refuting `C BI (B, A)` (Theorem 5.3 / Figure 3):
/// the `4k + 1`-sibling instances plus their reduced versions.
pub fn both_included_probes(ks: &[usize]) -> Vec<Probe> {
    let mut probes = Vec::new();
    for &k in ks {
        let (inst, h) = tr_markup::figure_3_instance(k);
        let expected = crate::direct::both_included(
            inst.regions_of_name("C"),
            inst.regions_of_name("B"),
            inst.regions_of_name("A"),
        );
        let reduced = crate::reduce::reduce(&inst, h.second_a, h.first_a, &[])
            .expect("the middle As are isomorphic");
        let reduced_expected = crate::direct::both_included(
            reduced.regions_of_name("C"),
            reduced.regions_of_name("B"),
            reduced.regions_of_name("A"),
        );
        probes.push(Probe {
            instance: inst,
            expected,
        });
        probes.push(Probe {
            instance: reduced,
            expected: reduced_expected,
        });
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::Schema;

    #[test]
    fn enumeration_counts_match_formula() {
        let schema = Schema::new(["A", "B"]);
        for ops in 0..=2 {
            let mut n = 0u64;
            for_each_expr(&schema, ops, &mut |_| {
                n += 1;
                false
            });
            assert_eq!(n, count_exprs(2, ops), "ops = {ops}");
        }
        assert_eq!(count_exprs(2, 0), 2);
        assert_eq!(count_exprs(2, 1), 28);
        assert_eq!(count_exprs(2, 2), 784);
    }

    #[test]
    fn enumeration_stops_early() {
        let schema = Schema::new(["A", "B"]);
        let mut n = 0;
        let stopped = for_each_expr(&schema, 2, &mut |_| {
            n += 1;
            n == 10
        });
        assert!(stopped);
        assert_eq!(n, 10);
    }

    #[test]
    fn enumeration_is_duplicate_free() {
        let schema = Schema::new(["A", "B"]);
        let mut seen = std::collections::BTreeSet::new();
        for_each_expr(&schema, 2, &mut |e| {
            assert!(seen.insert(e.to_string()), "duplicate {e}");
            false
        });
    }

    /// Theorem 5.1 at size ≤ 2: no expression computes B ⊃_d A on the
    /// Figure 2 probes. (Larger sizes run in the benchmark harness.)
    #[test]
    fn no_small_expression_computes_direct_inclusion() {
        let probes = direct_inclusion_probes(&[6, 8]);
        let schema = tr_markup::figure_2_schema();
        for ops in 0..=2 {
            let result = sweep(&schema, ops, &probes);
            assert_eq!(result.matching, 0, "ops = {ops}");
            assert_eq!(result.checked, count_exprs(2, ops));
        }
    }

    /// Theorem 5.3 at size ≤ 2 over the Figure 3 probes.
    #[test]
    fn no_small_expression_computes_both_included() {
        let probes = both_included_probes(&[1]);
        let schema = tr_markup::figure_3_schema();
        for ops in 0..=2 {
            let result = sweep(&schema, ops, &probes);
            assert_eq!(result.matching, 0, "ops = {ops}");
        }
    }

    /// Sanity: the sweep *can* find a match when the target is expressible
    /// (B ⊃ A itself).
    #[test]
    fn sweep_finds_expressible_targets() {
        let schema = tr_markup::figure_2_schema();
        let (b, a) = (schema.expect_id("B"), schema.expect_id("A"));
        let inst = tr_markup::figure_2_instance(6);
        let expected = tr_core::ops::includes(inst.regions_of(b), inst.regions_of(a));
        let probes = vec![Probe {
            instance: inst,
            expected,
        }];
        let result = sweep(&schema, 1, &probes);
        assert!(
            result.matching >= 1,
            "B ⊃ A is among the size-1 expressions"
        );
    }
}
