//! An SGML-lite parser producing hierarchical region instances.
//!
//! The paper motivates region indexes with marked-up documents ("SGML
//! documents in general"). This parser handles the structural subset that
//! matters for region queries: properly nested `<tag> … </tag>` elements
//! around arbitrary text, plus the syntax real corpora contain —
//! attributes (`<sec id="3">`, kept out of the tag name), comments
//! (`<!-- … -->`, skipped), declarations (`<!DOCTYPE …>`, skipped), and
//! self-closing elements (`<br/>`, a region covering just the tag). Each
//! element becomes a region spanning its whole extent (from the `<` of
//! the open tag to the `>` of the close tag), named by its tag.

use std::collections::BTreeSet;
use std::fmt;
use tr_core::{Instance, Region, RegionSet, Schema};
use tr_text::SuffixWordIndex;

/// Errors from [`parse_sgml`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgmlError {
    /// A `</tag>` without a matching open tag.
    UnmatchedClose {
        /// The tag name.
        tag: String,
        /// Byte offset of the close tag.
        at: usize,
    },
    /// An open tag never closed.
    UnclosedTag {
        /// The tag name.
        tag: String,
        /// Byte offset of the open tag.
        at: usize,
    },
    /// A `<` without a matching `>`.
    MalformedTag {
        /// Byte offset of the `<`.
        at: usize,
    },
}

impl fmt::Display for SgmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgmlError::UnmatchedClose { tag, at } => {
                write!(f, "unmatched </{tag}> at byte {at}")
            }
            SgmlError::UnclosedTag { tag, at } => write!(f, "<{tag}> at byte {at} never closed"),
            SgmlError::MalformedTag { at } => write!(f, "malformed tag at byte {at}"),
        }
    }
}

impl std::error::Error for SgmlError {}

/// Parses SGML-lite markup into a region instance over a suffix-array word
/// index of the *full* document text (tags included — PAT indexes the raw
/// file).
///
/// The schema is derived from the tags present, in first-appearance order.
pub fn parse_sgml(text: &str) -> Result<Instance<SuffixWordIndex>, SgmlError> {
    let bytes = text.as_bytes();
    let mut tags_in_order: Vec<String> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut open: Vec<(String, usize)> = Vec::new();
    let mut regions: Vec<(String, Region)> = Vec::new();

    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        // Comments and declarations are not regions.
        if bytes[i..].starts_with(b"<!--") {
            let end = text[i..]
                .find("-->")
                .map(|p| i + p + 3)
                .ok_or(SgmlError::MalformedTag { at: i })?;
            i = end;
            continue;
        }
        if bytes[i..].starts_with(b"<!") || bytes[i..].starts_with(b"<?") {
            let close = bytes[i..]
                .iter()
                .position(|&b| b == b'>')
                .map(|p| i + p)
                .ok_or(SgmlError::MalformedTag { at: i })?;
            i = close + 1;
            continue;
        }
        let close = bytes[i..]
            .iter()
            .position(|&b| b == b'>')
            .map(|p| i + p)
            .ok_or(SgmlError::MalformedTag { at: i })?;
        let inner = &text[i + 1..close];
        if let Some(tag) = inner.strip_prefix('/') {
            let tag = tag.trim().to_owned();
            match open.pop() {
                Some((t, start)) if t == tag => {
                    regions.push((t, Region::new(start as u32, close as u32)));
                }
                _ => return Err(SgmlError::UnmatchedClose { tag, at: i }),
            }
        } else {
            let self_closing = inner.ends_with('/');
            let inner = inner.strip_suffix('/').unwrap_or(inner);
            // The tag name ends at the first whitespace; the rest is
            // attributes, which region queries reach through σ patterns.
            let tag = inner.split_whitespace().next().unwrap_or("").to_owned();
            if tag.is_empty() {
                return Err(SgmlError::MalformedTag { at: i });
            }
            if seen.insert(tag.clone()) {
                tags_in_order.push(tag.clone());
            }
            if self_closing {
                regions.push((tag, Region::new(i as u32, close as u32)));
            } else {
                open.push((tag, i));
            }
        }
        i = close + 1;
    }
    if let Some((tag, at)) = open.pop() {
        return Err(SgmlError::UnclosedTag { tag, at });
    }

    let schema = Schema::new(tags_in_order);
    let mut sets = vec![Vec::new(); schema.len()];
    for (tag, r) in regions {
        sets[schema.expect_id(&tag).index()].push(r);
    }
    let sets: Vec<RegionSet> = sets.into_iter().map(RegionSet::from_regions).collect();
    let word = SuffixWordIndex::new(text.as_bytes().to_vec());
    Ok(Instance::build(schema, sets, word).expect("properly nested markup yields a hierarchy"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::{eval, Expr};

    #[test]
    fn parses_nested_elements() {
        let doc = "<doc><sec>alpha <sub>beta</sub></sec><sec>gamma</sec></doc>";
        let inst = parse_sgml(doc).unwrap();
        assert_eq!(
            inst.schema().names().collect::<Vec<_>>(),
            vec!["doc", "sec", "sub"]
        );
        assert_eq!(inst.regions_of_name("doc").len(), 1);
        assert_eq!(inst.regions_of_name("sec").len(), 2);
        assert_eq!(inst.nesting_depth(), 3);
    }

    #[test]
    fn regions_support_algebra_queries() {
        let doc = "<doc><sec>alpha</sec><sec>beta</sec></doc>";
        let inst = parse_sgml(doc).unwrap();
        let s = inst.schema().clone();
        // Sections containing the word "beta".
        let q = Expr::name(s.expect_id("sec")).select("beta");
        let out = eval(&q, &inst);
        assert_eq!(out.len(), 1);
        let sec = out.iter().next().unwrap();
        assert!(doc[sec.left() as usize..=sec.right() as usize].contains("beta"));
    }

    #[test]
    fn rejects_mismatched_tags() {
        assert!(matches!(
            parse_sgml("<a><b></a></b>"),
            Err(SgmlError::UnmatchedClose { .. })
        ));
        assert!(matches!(
            parse_sgml("<a>"),
            Err(SgmlError::UnclosedTag { .. })
        ));
        assert!(matches!(
            parse_sgml("<a"),
            Err(SgmlError::MalformedTag { .. })
        ));
        assert!(matches!(
            parse_sgml("<>x</>"),
            Err(SgmlError::MalformedTag { .. })
        ));
    }

    #[test]
    fn empty_document_is_fine() {
        let inst = parse_sgml("no markup at all").unwrap();
        assert!(inst.is_empty());
        assert_eq!(inst.schema().len(), 0);
    }

    #[test]
    fn attributes_comments_and_self_closing() {
        let doc = r#"<!DOCTYPE play><doc id="d1"><!-- front matter --><sec class="a">x<br/>y</sec></doc>"#;
        let inst = parse_sgml(doc).unwrap();
        assert_eq!(
            inst.schema().names().collect::<Vec<_>>(),
            vec!["doc", "sec", "br"],
            "attribute text is not part of the tag name"
        );
        assert_eq!(inst.regions_of_name("br").len(), 1);
        assert_eq!(inst.nesting_depth(), 3);
        // Unterminated comment is an error.
        assert!(parse_sgml("<a><!-- oops</a>").is_err());
        // Attribute content is searchable via σ (PAT indexes the raw file).
        let s = inst.schema().clone();
        let q = tr_core::Expr::name(s.expect_id("sec")).select("class");
        assert_eq!(tr_core::eval(&q, &inst).len(), 1);
    }

    #[test]
    fn self_nested_tags() {
        let inst = parse_sgml("<d>a<d>b</d>c</d>").unwrap();
        assert_eq!(inst.regions_of_name("d").len(), 2);
        assert_eq!(inst.nesting_depth(), 2);
    }
}
