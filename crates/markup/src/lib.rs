//! # tr-markup — producing region instances from documents
//!
//! The paper assumes "a specific set of named regions on the indexed text"
//! (Definition 2.1) without fixing where they come from; in practice they
//! come from markup or language structure. This crate supplies:
//!
//! * [`parse_sgml`] — SGML-lite documents ("SGML documents in general",
//!   Section 2);
//! * [`parse_program`] / [`ProgramSpec`] — the paper's running example: a
//!   toy Pascal-like language whose regions follow the Figure 1 RIG;
//! * [`random_rig_instance`] / [`random_hierarchical_instance`] — synthetic
//!   generators for benchmarks and property tests;
//! * [`figure_2_instance`] / [`figure_3_instance`] — the counter-example
//!   families of Theorems 5.1 and 5.3.

#![warn(missing_docs)]

pub mod families;
pub mod random;
pub mod sgml;
pub mod source;

pub use families::{
    figure_2_chain, figure_2_instance, figure_2_rig, figure_2_schema, figure_3_instance,
    figure_3_rig, figure_3_schema, Figure3,
};
pub use random::{random_hierarchical_instance, random_rig_instance, RigInstanceConfig};
pub use sgml::{parse_sgml, SgmlError};
pub use source::{parse_program, source_schema, ParseError, ProcSpec, ProgramSpec};
