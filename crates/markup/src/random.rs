//! Random hierarchical instance generators.
//!
//! Two flavours: [`random_rig_instance`] grows a forest whose direct
//! inclusions follow a given RIG (for RIG-aware experiments), and
//! [`random_hierarchical_instance`] grows an unconstrained hierarchy (the
//! workhorse of the property tests, which quantify over *all* instances).

use rand::Rng;
use tr_core::{Instance, InstanceBuilder, NameId, Pos, Schema};
use tr_rig::Rig;

/// Shape parameters for [`random_rig_instance`].
#[derive(Debug, Clone)]
pub struct RigInstanceConfig {
    /// Upper bound on the number of regions (generation stops there).
    pub max_regions: usize,
    /// Maximum nesting depth.
    pub max_depth: usize,
    /// Maximum children per region.
    pub max_children: usize,
    /// Names allowed at the top level.
    pub roots: Vec<NameId>,
    /// Pattern vocabulary sprinkled over the regions.
    pub patterns: Vec<String>,
    /// Probability that a region carries an occurrence of some pattern.
    pub pattern_density: f64,
}

impl RigInstanceConfig {
    /// A reasonable default: up to `max_regions` regions, depth 8, fanout
    /// 4, every name allowed at the root, no patterns.
    pub fn new(schema: &Schema, max_regions: usize) -> RigInstanceConfig {
        RigInstanceConfig {
            max_regions,
            max_depth: 8,
            max_children: 4,
            roots: schema.ids().collect(),
            patterns: Vec::new(),
            pattern_density: 0.0,
        }
    }
}

/// Tree skeleton node used during generation.
struct Node {
    name: NameId,
    children: Vec<Node>,
}

impl Node {
    /// Width of the span needed: every node reserves one position on each
    /// side of its children, leaves get width 2.
    fn width(&self) -> u64 {
        2 + self.children.iter().map(Node::width).sum::<u64>()
    }
}

/// Generates a random instance whose direct inclusions all follow `rig`
/// edges and whose roots are drawn from `cfg.roots`. The result always
/// satisfies the RIG (checked by the generator's own tests).
pub fn random_rig_instance<R: Rng>(rig: &Rig, cfg: &RigInstanceConfig, rng: &mut R) -> Instance {
    let mut remaining = cfg.max_regions;
    let mut roots: Vec<Node> = Vec::new();
    while remaining > 0 {
        if cfg.roots.is_empty() {
            break;
        }
        let name = cfg.roots[rng.gen_range(0..cfg.roots.len())];
        let node = grow(rig, cfg, rng, name, 1, &mut remaining);
        roots.push(node);
    }
    place(rig.schema().clone(), roots, cfg, rng)
}

fn grow<R: Rng>(
    rig: &Rig,
    cfg: &RigInstanceConfig,
    rng: &mut R,
    name: NameId,
    depth: usize,
    remaining: &mut usize,
) -> Node {
    *remaining = remaining.saturating_sub(1);
    let mut node = Node {
        name,
        children: Vec::new(),
    };
    if depth >= cfg.max_depth || *remaining == 0 {
        return node;
    }
    let options: Vec<NameId> = rig.successors(name).collect();
    if options.is_empty() {
        return node;
    }
    let n_children = rng.gen_range(0..=cfg.max_children.min(*remaining));
    for _ in 0..n_children {
        if *remaining == 0 {
            break;
        }
        let child = options[rng.gen_range(0..options.len())];
        node.children
            .push(grow(rig, cfg, rng, child, depth + 1, remaining));
    }
    node
}

/// Lays the skeleton out on the number line and builds the instance.
fn place<R: Rng>(
    schema: Schema,
    roots: Vec<Node>,
    cfg: &RigInstanceConfig,
    rng: &mut R,
) -> Instance {
    let mut b = InstanceBuilder::new(schema);
    let mut pos: u64 = 0;
    let mut occurrences: Vec<(String, Pos)> = Vec::new();
    for root in &roots {
        pos = emit(root, pos, &mut b, cfg, rng, &mut occurrences) + 1;
    }
    for (pat, at) in occurrences {
        b.push_occurrence(&pat, at, 1);
    }
    b.build_valid()
}

/// Emits `node` starting at `start`; returns the node's right endpoint.
fn emit<R: Rng>(
    node: &Node,
    start: u64,
    b: &mut InstanceBuilder,
    cfg: &RigInstanceConfig,
    rng: &mut R,
    occurrences: &mut Vec<(String, Pos)>,
) -> u64 {
    let width = node.width();
    let (left, right) = (start, start + width - 1);
    let mut cursor = left + 1;
    for child in &node.children {
        cursor = emit(child, cursor, b, cfg, rng, occurrences) + 1;
    }
    take_region(b, node.name, left, right);
    if !cfg.patterns.is_empty() && rng.gen_bool(cfg.pattern_density) {
        let pat = &cfg.patterns[rng.gen_range(0..cfg.patterns.len())];
        occurrences.push((pat.clone(), left as Pos));
    }
    right
}

fn take_region(b: &mut InstanceBuilder, name: NameId, left: u64, right: u64) {
    let (l, r) = (
        Pos::try_from(left).expect("span fits u32"),
        Pos::try_from(right).expect("span fits u32"),
    );
    b.push_id(name, tr_core::region(l, r));
}

/// Generates an unconstrained random hierarchical instance: a random
/// forest of about `target` regions with names drawn uniformly from the
/// schema, plus random single-position occurrences of `patterns`.
pub fn random_hierarchical_instance<R: Rng>(
    schema: &Schema,
    target: usize,
    patterns: &[&str],
    pattern_density: f64,
    rng: &mut R,
) -> Instance {
    assert!(!schema.is_empty(), "need at least one region name");
    let mut remaining = target.max(1);
    let mut roots = Vec::new();
    while remaining > 0 {
        roots.push(grow_free(schema, rng, 1, &mut remaining));
        if rng.gen_bool(0.3) {
            break;
        }
    }
    let cfg = RigInstanceConfig {
        max_regions: target,
        max_depth: usize::MAX,
        max_children: usize::MAX,
        roots: Vec::new(),
        patterns: patterns.iter().map(|s| s.to_string()).collect(),
        pattern_density,
    };
    place(schema.clone(), roots, &cfg, rng)
}

fn grow_free<R: Rng>(schema: &Schema, rng: &mut R, depth: usize, remaining: &mut usize) -> Node {
    *remaining = remaining.saturating_sub(1);
    let name = NameId::from_index(rng.gen_range(0..schema.len()));
    let mut node = Node {
        name,
        children: Vec::new(),
    };
    // Deeper nodes get fewer children to keep sizes bounded.
    let max_kids = (4usize).saturating_sub(depth / 3).min(*remaining);
    if max_kids == 0 {
        return node;
    }
    for _ in 0..rng.gen_range(0..=max_kids) {
        if *remaining == 0 {
            break;
        }
        node.children
            .push(grow_free(schema, rng, depth + 1, remaining));
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use tr_rig::satisfies_rig;

    #[test]
    fn rig_instances_satisfy_their_rig() {
        let rig = Rig::figure_1();
        let mut rng = StdRng::seed_from_u64(5);
        let mut cfg = RigInstanceConfig::new(rig.schema(), 200);
        cfg.roots = vec![rig.schema().expect_id("Program")];
        for _ in 0..10 {
            let inst = random_rig_instance(&rig, &cfg, &mut rng);
            assert!(satisfies_rig(&inst, &rig));
            assert!(inst.len() <= 200 + 1);
        }
    }

    #[test]
    fn free_instances_are_valid_and_sized() {
        let schema = Schema::new(["A", "B", "C"]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let inst = random_hierarchical_instance(&schema, 50, &["x", "y"], 0.3, &mut rng);
            assert!(!inst.is_empty());
            assert!(inst.len() <= 51);
        }
    }

    #[test]
    fn pattern_occurrences_land_inside_regions() {
        use tr_core::WordIndex;
        let schema = Schema::new(["A"]);
        let mut rng = StdRng::seed_from_u64(1);
        let inst = random_hierarchical_instance(&schema, 30, &["x"], 1.0, &mut rng);
        // Density 1 means every region matches "x" (its own left-end point).
        for (r, _) in inst.all_with_names() {
            assert!(inst.word_index().matches(*r, "x"));
        }
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let schema = Schema::new(["A", "B"]);
        let a = random_hierarchical_instance(&schema, 40, &[], 0.0, &mut StdRng::seed_from_u64(7));
        let b = random_hierarchical_instance(&schema, 40, &[], 0.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
