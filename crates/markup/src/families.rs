//! The paper's counter-example instance families (Figures 2 and 3), used
//! by the inexpressibility proofs of Theorems 5.1 and 5.3 and by
//! experiments E6/E7.

use tr_core::{region, Instance, InstanceBuilder, Region, Schema};
use tr_rig::Rig;

/// Schema of the Figure 2 family: two mutually-nestable names.
pub fn figure_2_schema() -> Schema {
    Schema::new(["A", "B"])
}

/// The Figure 2 RIG: edges `(A, B)` and `(B, A)` (self-nested regions
/// through mutual recursion).
pub fn figure_2_rig() -> Rig {
    Rig::from_edges(figure_2_schema(), [("A", "B"), ("B", "A")])
}

/// The Figure 2 counter-example instance: a single chain of `levels`
/// alternately-named regions, outermost `B`:
///
/// ```text
/// B ⊃ A ⊃ B ⊃ A ⊃ …
/// ```
///
/// Every `B` level directly includes an `A` level (so `B ⊃_d A` selects
/// every non-innermost `B`), and deleting one interior `A` level makes the
/// `B` above it directly include a `B` — changing the answer of `⊃_d`
/// while, by the deletion theorem (4.1), no algebra expression of bounded
/// size can notice a deep enough deletion. See Theorem 5.1.
pub fn figure_2_instance(levels: usize) -> Instance {
    assert!(levels >= 1);
    let mut b = InstanceBuilder::new(figure_2_schema());
    for i in 0..levels {
        let name = if i % 2 == 0 { "B" } else { "A" };
        let i = i as u32;
        b = b.add(name, region(i, 2 * levels as u32 - i));
    }
    b.build_valid()
}

/// The chain regions of [`figure_2_instance`], outermost first.
pub fn figure_2_chain(levels: usize) -> Vec<Region> {
    (0..levels as u32)
        .map(|i| region(i, 2 * levels as u32 - i))
        .collect()
}

/// Schema of the Figure 3 family.
pub fn figure_3_schema() -> Schema {
    Schema::new(["A", "B", "C"])
}

/// The Figure 3 RIG: `C` regions contain `A`s and `B`s.
pub fn figure_3_rig() -> Rig {
    Rig::from_edges(figure_3_schema(), [("C", "A"), ("C", "B")])
}

/// Handles into a [`figure_3_instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure3 {
    /// The middle `C` region — the only one with `B` before an `A`.
    pub middle_c: Region,
    /// The first `A` inside the middle `C` (before the `B`).
    pub first_a: Region,
    /// The second `A` inside the middle `C` (after the `B`) — the region
    /// whose reduction flips the `BI` answer.
    pub second_a: Region,
}

/// The Figure 3 counter-example instance: `4k + 1` sibling `C` regions.
/// Ordinary `C`s contain `A < B`; the middle one contains `A < B < A`.
///
/// `C BI (B, A)` — `C` regions containing a `B` before an `A` — selects
/// exactly the middle `C`. The two `A`s of the middle `C` are isomorphic
/// w.r.t. any pattern set, so `reduce` may delete the second one, after
/// which the middle `C` looks like all the others and drops out of the
/// `BI` answer; Theorem 4.4 shows a bounded expression cannot tell the
/// difference when `k` exceeds its order-operation count. See Theorem 5.3.
pub fn figure_3_instance(k: usize) -> (Instance, Figure3) {
    let n = 4 * k + 1;
    let mid = n / 2;
    let mut b = InstanceBuilder::new(figure_3_schema());
    let mut handles = None;
    let mut pos = 0u32;
    for i in 0..n {
        // Ordinary C: [ A B ] width 8; middle C: [ A B A ] width 11.
        if i == mid {
            let c = region(pos, pos + 10);
            let a1 = region(pos + 1, pos + 2);
            let bb = region(pos + 4, pos + 5);
            let a2 = region(pos + 7, pos + 8);
            b = b.add("C", c).add("A", a1).add("B", bb).add("A", a2);
            handles = Some(Figure3 {
                middle_c: c,
                first_a: a1,
                second_a: a2,
            });
            pos += 12;
        } else {
            let c = region(pos, pos + 7);
            b = b
                .add("C", c)
                .add("A", region(pos + 1, pos + 2))
                .add("B", region(pos + 4, pos + 5));
            pos += 9;
        }
    }
    (
        b.build_valid(),
        handles.expect("n ≥ 1 so the middle exists"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::{eval, Expr, RegionSet};
    use tr_rig::{satisfies_rig, Rog};

    #[test]
    fn figure_2_shape() {
        let inst = figure_2_instance(8);
        assert_eq!(inst.len(), 8);
        assert_eq!(inst.nesting_depth(), 8);
        assert_eq!(inst.regions_of_name("B").len(), 4);
        assert!(satisfies_rig(&inst, &figure_2_rig()));
        let chain = figure_2_chain(8);
        assert_eq!(chain.len(), 8);
        for w in chain.windows(2) {
            assert!(w[0].includes(w[1]));
        }
    }

    #[test]
    fn figure_2_b_including_a() {
        let inst = figure_2_instance(7); // B A B A B A B
        let s = inst.schema().clone();
        let e = Expr::name(s.expect_id("B")).including(Expr::name(s.expect_id("A")));
        // Every B except the innermost includes (transitively) an A.
        assert_eq!(eval(&e, &inst).len(), 3);
    }

    #[test]
    fn figure_3_shape() {
        let k = 2;
        let (inst, h) = figure_3_instance(k);
        assert_eq!(inst.regions_of_name("C").len(), 4 * k + 1);
        assert_eq!(inst.regions_of_name("A").len(), 4 * k + 2);
        assert_eq!(inst.regions_of_name("B").len(), 4 * k + 1);
        assert!(satisfies_rig(&inst, &figure_3_rig()));
        assert!(h.middle_c.includes(h.first_a));
        assert!(h.middle_c.includes(h.second_a));
        assert!(h.first_a.precedes(h.second_a));
        // The ROG of the family. Note direct precedence crosses C
        // boundaries: a C (or the trailing A/B inside it) directly precedes
        // both the next C and that C's leading A, because neither is
        // "between" the other.
        let rog = Rog::from_edges(
            figure_3_schema(),
            [
                ("A", "B"), // A < B inside every C
                ("B", "A"), // B < second A in the middle C
                ("B", "C"), // trailing B < next C
                ("A", "C"), // middle trailing A < next C
                ("A", "A"), // middle trailing A < next C's leading A
                ("C", "C"), // C < next C
                ("C", "A"), // C < next C's leading A
            ],
        );
        assert!(tr_rig::satisfies_rog(&inst, &rog));
        // Dropping the cross-boundary edges must surface a violation.
        let too_small = Rog::from_edges(
            figure_3_schema(),
            [("A", "B"), ("B", "A"), ("B", "C"), ("C", "A")],
        );
        assert!(!tr_rig::satisfies_rog(&inst, &too_small));
    }

    /// Only the middle C has a B preceding an A *within the same C* —
    /// the both-included semantics the algebra cannot express.
    #[test]
    fn figure_3_bi_semantics() {
        let (inst, h) = figure_3_instance(1);
        let bi: RegionSet = inst.regions_of_name("C").filter(|c| {
            inst.regions_of_name("B").iter().any(|b| {
                c.includes(b)
                    && inst
                        .regions_of_name("A")
                        .iter()
                        .any(|a| c.includes(a) && b.precedes(a))
            })
        });
        assert_eq!(bi.to_vec(), &[h.middle_c]);
    }

    /// The naive algebra attempt `C ⊃ (B < A)` over-selects: every C
    /// containing a B that precedes *some* A (possibly in another C).
    #[test]
    fn figure_3_naive_attempt_overselects() {
        let (inst, _) = figure_3_instance(1);
        let s = inst.schema().clone();
        let e = Expr::name(s.expect_id("C"))
            .including(Expr::name(s.expect_id("B")).before(Expr::name(s.expect_id("A"))));
        // All Cs except the last contain a B preceding an A somewhere.
        assert_eq!(eval(&e, &inst).len(), 4);
    }
}
