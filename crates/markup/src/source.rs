//! The paper's running example substrate: source files of a toy
//! Pascal-like language whose region structure is exactly the Figure 1
//! RIG (programs with headers and bodies, recursively nested procedures,
//! variable declarations, names).
//!
//! ```text
//! program Main;
//!   var x;
//!   proc Alpha;
//!     var y;
//!   begin end;
//! begin end.
//! ```
//!
//! [`ProgramSpec`] generates such files (deterministically or randomly,
//! for the benchmarks), and [`parse_program`] parses them back into a
//! region instance over a suffix-array word index.

use rand::Rng;
use std::fmt;
use tr_core::{Instance, Region, RegionSet, Schema};
use tr_text::SuffixWordIndex;

/// The Figure 1 schema, in the paper's order.
pub fn source_schema() -> Schema {
    Schema::new([
        "Program",
        "Prog_header",
        "Prog_body",
        "Proc",
        "Proc_header",
        "Proc_body",
        "Name",
        "Var",
    ])
}

/// A procedure to generate: name, variable names, nested procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcSpec {
    /// The procedure name.
    pub name: String,
    /// Variables declared in the body, in order.
    pub vars: Vec<String>,
    /// Nested procedures, in order.
    pub procs: Vec<ProcSpec>,
}

/// A program to generate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// The program name.
    pub name: String,
    /// Top-level variables.
    pub vars: Vec<String>,
    /// Top-level procedures.
    pub procs: Vec<ProcSpec>,
}

impl ProgramSpec {
    /// Renders the program source text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("program ");
        out.push_str(&self.name);
        out.push_str(";\n");
        render_body(&mut out, &self.vars, &self.procs, 1);
        out.push_str("begin end.\n");
        out
    }

    /// Total number of procedures (at any nesting level).
    pub fn num_procs(&self) -> usize {
        fn count(p: &ProcSpec) -> usize {
            1 + p.procs.iter().map(count).sum::<usize>()
        }
        self.procs.iter().map(count).sum()
    }

    /// A random program with roughly `target_procs` procedures nested up
    /// to `max_depth` levels, each scope declaring up to `max_vars`
    /// variables drawn from a small vocabulary (so selections like
    /// `σ_"x"(Var)` have many hits).
    pub fn random<R: Rng>(
        rng: &mut R,
        target_procs: usize,
        max_depth: usize,
        max_vars: usize,
    ) -> ProgramSpec {
        let mut counter = 0usize;
        let mut budget = target_procs;
        let mut procs = Vec::new();
        // Keep opening top-level procedure groups until the budget is spent,
        // so large targets actually materialize.
        while budget > 0 {
            let before = budget;
            procs.extend(random_procs(
                rng,
                &mut budget,
                &mut counter,
                1,
                max_depth,
                max_vars,
            ));
            if budget == before {
                // The coin flips declined; force one procedure to guarantee progress.
                budget -= 1;
                counter += 1;
                procs.push(ProcSpec {
                    name: format!("p{counter}"),
                    vars: random_vars(rng, max_vars),
                    procs: Vec::new(),
                });
            }
        }
        ProgramSpec {
            name: "main".into(),
            vars: random_vars(rng, max_vars),
            procs,
        }
    }
}

const VAR_VOCAB: [&str; 6] = ["x", "y", "z", "count", "total", "tmp"];

fn random_vars<R: Rng>(rng: &mut R, max_vars: usize) -> Vec<String> {
    let n = if max_vars == 0 {
        0
    } else {
        rng.gen_range(0..=max_vars)
    };
    (0..n)
        .map(|_| VAR_VOCAB[rng.gen_range(0..VAR_VOCAB.len())].to_owned())
        .collect()
}

fn random_procs<R: Rng>(
    rng: &mut R,
    budget: &mut usize,
    counter: &mut usize,
    depth: usize,
    max_depth: usize,
    max_vars: usize,
) -> Vec<ProcSpec> {
    let mut procs = Vec::new();
    while *budget > 0 && rng.gen_bool(0.7) {
        *budget -= 1;
        *counter += 1;
        let name = format!("p{counter}");
        let nested = if depth < max_depth {
            random_procs(rng, budget, counter, depth + 1, max_depth, max_vars)
        } else {
            Vec::new()
        };
        procs.push(ProcSpec {
            name,
            vars: random_vars(rng, max_vars),
            procs: nested,
        });
    }
    procs
}

fn render_body(out: &mut String, vars: &[String], procs: &[ProcSpec], indent: usize) {
    let pad = "  ".repeat(indent);
    for v in vars {
        out.push_str(&pad);
        out.push_str("var ");
        out.push_str(v);
        out.push_str(";\n");
    }
    for p in procs {
        out.push_str(&pad);
        out.push_str("proc ");
        out.push_str(&p.name);
        out.push_str(";\n");
        render_body(out, &p.vars, &p.procs, indent + 1);
        out.push_str(&pad);
        out.push_str("begin end;\n");
    }
}

/// Errors from [`parse_program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was expected.
    pub expected: &'static str,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses a toy-language source file into a region instance with the
/// Figure 1 schema, over a suffix-array word index of the source text.
pub fn parse_program(text: &str) -> Result<Instance<SuffixWordIndex>, ParseError> {
    let mut p = Parser {
        text: text.as_bytes(),
        pos: 0,
        out: vec![Vec::new(); 8],
    };
    p.program()?;
    p.skip_ws();
    if p.pos != p.text.len() {
        return Err(ParseError {
            expected: "end of input",
            at: p.pos,
        });
    }
    let schema = source_schema();
    let sets: Vec<RegionSet> = p.out.into_iter().map(RegionSet::from_regions).collect();
    let word = SuffixWordIndex::new(text.as_bytes().to_vec());
    Ok(Instance::build(schema, sets, word).expect("parser output is hierarchical"))
}

// Set indexes, matching `source_schema()` order.
const PROGRAM: usize = 0;
const PROG_HEADER: usize = 1;
const PROG_BODY: usize = 2;
const PROC: usize = 3;
const PROC_HEADER: usize = 4;
const PROC_BODY: usize = 5;
const NAME: usize = 6;
const VAR: usize = 7;

struct Parser<'a> {
    text: &'a [u8],
    pos: usize,
    out: Vec<Vec<Region>>,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.text.len() && self.text[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn keyword(&mut self, kw: &'static str) -> Result<usize, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.text[self.pos..].starts_with(kw.as_bytes())
            && !self
                .text
                .get(self.pos + kw.len())
                .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += kw.len();
            Ok(start)
        } else {
            Err(ParseError {
                expected: kw,
                at: self.pos,
            })
        }
    }

    fn peek_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        self.text[self.pos..].starts_with(kw.as_bytes())
            && !self
                .text
                .get(self.pos + kw.len())
                .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
    }

    fn punct(&mut self, c: u8) -> Result<usize, ParseError> {
        self.skip_ws();
        if self.text.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(self.pos - 1)
        } else {
            Err(ParseError {
                expected: "punctuation",
                at: self.pos,
            })
        }
    }

    /// Parses an identifier; returns its span.
    fn ident(&mut self) -> Result<(usize, usize), ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .text
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(ParseError {
                expected: "identifier",
                at: self.pos,
            });
        }
        Ok((start, self.pos - 1))
    }

    fn emit(&mut self, set: usize, left: usize, right: usize) {
        self.out[set].push(Region::new(left as u32, right as u32));
    }

    fn program(&mut self) -> Result<(), ParseError> {
        let start = self.keyword("program")?;
        let (n_l, n_r) = self.ident()?;
        self.emit(NAME, n_l, n_r);
        self.emit(PROG_HEADER, start, n_r);
        self.punct(b';')?;
        let body_span = self.body()?;
        let dot = self.punct(b'.')?;
        self.emit(PROG_BODY, body_span.0, body_span.1);
        self.emit(PROGRAM, start, dot);
        Ok(())
    }

    /// Parses declarations followed by `begin end`; returns the body span
    /// (first declaration or `begin` through the end of `end`).
    fn body(&mut self) -> Result<(usize, usize), ParseError> {
        self.skip_ws();
        let body_start = self.pos;
        loop {
            if self.peek_keyword("var") {
                let v_start = self.keyword("var")?;
                self.ident()?;
                let semi = self.punct(b';')?;
                self.emit(VAR, v_start, semi);
            } else if self.peek_keyword("proc") {
                self.procedure()?;
            } else {
                break;
            }
        }
        self.keyword("begin")?;
        let end_start = self.keyword("end")?;
        Ok((body_start, end_start + "end".len() - 1))
    }

    fn procedure(&mut self) -> Result<(), ParseError> {
        let start = self.keyword("proc")?;
        let (n_l, n_r) = self.ident()?;
        self.emit(NAME, n_l, n_r);
        self.emit(PROC_HEADER, start, n_r);
        self.punct(b';')?;
        let body_span = self.body()?;
        let semi = self.punct(b';')?;
        self.emit(PROC_BODY, body_span.0, body_span.1);
        self.emit(PROC, start, semi);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use tr_core::{eval, Expr};

    fn nested_spec() -> ProgramSpec {
        ProgramSpec {
            name: "main".into(),
            vars: vec!["x".into()],
            procs: vec![ProcSpec {
                name: "alpha".into(),
                vars: vec!["y".into()],
                procs: vec![ProcSpec {
                    name: "beta".into(),
                    vars: vec!["x".into()],
                    procs: vec![],
                }],
            }],
        }
    }

    #[test]
    fn render_and_parse_round_trip_counts() {
        let spec = nested_spec();
        let text = spec.render();
        let inst = parse_program(&text).unwrap();
        assert_eq!(inst.regions_of_name("Program").len(), 1);
        assert_eq!(inst.regions_of_name("Proc").len(), 2);
        assert_eq!(inst.regions_of_name("Var").len(), 3);
        assert_eq!(
            inst.regions_of_name("Name").len(),
            3,
            "program + 2 proc names"
        );
        assert_eq!(inst.regions_of_name("Prog_header").len(), 1);
        assert_eq!(inst.regions_of_name("Proc_body").len(), 2);
    }

    #[test]
    fn paper_query_finds_procedure_names() {
        let text = nested_spec().render();
        let inst = parse_program(&text).unwrap();
        let s = inst.schema().clone();
        // e2 = Name ⊂ Proc_header ⊂ Program
        let e2 = Expr::name(s.expect_id("Name")).included_in(
            Expr::name(s.expect_id("Proc_header")).included_in(Expr::name(s.expect_id("Program"))),
        );
        let out = eval(&e2, &inst);
        assert_eq!(out.len(), 2, "the two procedure names");
        for r in out.iter() {
            let name = &text[r.left() as usize..=r.right() as usize];
            assert!(name == "alpha" || name == "beta");
        }
    }

    #[test]
    fn sigma_var_selects_by_variable_name() {
        let text = nested_spec().render();
        let inst = parse_program(&text).unwrap();
        let s = inst.schema().clone();
        let q = Expr::name(s.expect_id("Var")).select("x");
        assert_eq!(eval(&q, &inst).len(), 2, "x is declared twice");
        let q = Expr::name(s.expect_id("Var")).select("y");
        assert_eq!(eval(&q, &inst).len(), 1);
    }

    #[test]
    fn parse_errors_carry_positions() {
        assert!(parse_program("proc oops; begin end;").is_err());
        assert!(
            parse_program("program a; begin end").is_err(),
            "missing final dot"
        );
        assert!(parse_program("program a; var ; begin end.").is_err());
        let trailing = parse_program("program a; begin end. extra");
        assert!(matches!(
            trailing,
            Err(ParseError {
                expected: "end of input",
                ..
            })
        ));
    }

    #[test]
    fn empty_bodies_are_regions_too() {
        let inst = parse_program("program a; begin end.").unwrap();
        assert_eq!(inst.regions_of_name("Prog_body").len(), 1);
        assert_eq!(inst.regions_of_name("Var").len(), 0);
    }

    #[test]
    fn random_programs_always_parse() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let target = rng.gen_range(0..30);
            let spec = ProgramSpec::random(&mut rng, target, 4, 3);
            let text = spec.render();
            let inst = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(inst.regions_of_name("Proc").len(), spec.num_procs());
        }
    }
}
