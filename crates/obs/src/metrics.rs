//! The process-wide metrics registry: named atomic counters and
//! fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Histogram`]) are `Arc`s into the global
//! registry: look one up once (a mutex + map probe), then record through
//! it with plain atomic operations — hot paths cache handles in a
//! `OnceLock` so steady-state cost is one `fetch_add`.
//!
//! Histograms use fixed power-of-two buckets (bucket *i* counts values in
//! `[2^(i-1), 2^i)`), which needs no configuration, costs one atomic
//! increment to record, and resolves an order-of-magnitude-spread metric
//! like nanosecond latencies to ~2x precision — enough for the regression
//! gate and `--stats-json` reporting this layer exists for.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of power-of-two histogram buckets (`u64` values have bit
/// lengths 0..=64).
pub const BUCKETS: usize = 65;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket (power-of-two) histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: its bit length (0 for 0).
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 if none).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 if none).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate quantile (`0.0..=1.0`): the upper bound of the bucket
    /// holding the q-th sample. Accurate to the bucket's factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Quantile with sub-bucket linear interpolation: the q-th sample's
    /// bucket is located exactly (bucket counts are exact), then the
    /// value is interpolated inside the bucket's `(lower, upper]` range
    /// by the sample's rank among that bucket's samples. The top bucket
    /// is clamped to the observed max, so `quantile_interp(1.0)` never
    /// exceeds a value that was actually recorded. Resolution is the
    /// bucket's factor of two at worst — tight enough for tail-latency
    /// gating, where budgets carry far more slack than one bucket.
    pub fn quantile_interp(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let upper = bucket_bound(i).min(self.max()) as f64;
                let lower = (if i == 0 { 0 } else { bucket_bound(i - 1) } as f64).min(upper);
                let frac = (target - seen) as f64 / c as f64;
                return lower + (upper - lower) * frac;
            }
            seen += c;
        }
        self.max() as f64
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_bound(i), n))
            })
            .collect()
    }

    fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .with("count", Json::from(self.count()))
            .with("sum", Json::from(self.sum()))
            .with("mean", Json::from(self.mean()))
            .with("p50", Json::from(self.quantile_interp(0.5).round() as u64))
            .with("p95", Json::from(self.quantile_interp(0.95).round() as u64))
            .with("p99", Json::from(self.quantile_interp(0.99).round() as u64))
            .with("max", Json::from(self.max()));
        let buckets = self
            .nonzero_buckets()
            .into_iter()
            .map(|(le, n)| Json::Arr(vec![Json::from(le), Json::from(n)]))
            .collect();
        j.set("buckets", Json::Arr(buckets));
        j
    }
}

/// A named collection of counters and histograms.
///
/// Use the process-wide instance via [`counter`] / [`histogram`] /
/// [`snapshot`]; independent registries exist only for tests.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_owned(), Arc::clone(&h));
        h
    }

    /// Current counter values, sorted by name (zero-valued ones included).
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of every metric as a JSON object with `counters` and
    /// `histograms` sections.
    pub fn snapshot(&self) -> Json {
        let mut counters = Json::obj();
        for (name, v) in self.counter_values() {
            counters.set(&name, Json::from(v));
        }
        let mut histograms = Json::obj();
        for (name, h) in self
            .histograms
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
        {
            histograms.set(name, h.to_json());
        }
        Json::obj()
            .with("counters", counters)
            .with("histograms", histograms)
    }
}

fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-wide counter named `name` (created on first use).
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// The process-wide histogram named `name` (created on first use).
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// JSON snapshot of the process-wide registry.
pub fn snapshot() -> Json {
    global().snapshot()
}

/// Current values of every process-wide counter, sorted by name.
pub fn counter_values() -> Vec<(String, u64)> {
    global().counter_values()
}

/// The current value of one process-wide counter (0 if never touched).
pub fn counter_value(name: &str) -> u64 {
    counter(name).get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("x").get(), 5);
        assert_eq!(r.counter_values(), vec![("x".into(), 5)]);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // value → bucket: 0→0, 1→1, 2..3→2, 4..7→3, …
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Inclusive upper bounds match.
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(3), 7);
        assert_eq!(bucket_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 40, u64::MAX] {
            assert!(v <= bucket_bound(bucket_of(v)), "{v}");
        }
    }

    #[test]
    fn histogram_statistics() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-9);
        // p50 is within the bucket of the 2nd sample (value 2, bucket ≤3).
        assert!(h.quantile(0.5) <= 3);
        // p100 caps at the observed max, not the bucket bound (127).
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(Histogram::default().quantile(0.9), 0, "empty histogram");
    }

    #[test]
    fn interpolated_quantiles_stay_in_the_oracle_bucket() {
        // The defining property (the bencher's reducer leans on it): the
        // interpolated quantile lands inside the bucket that holds the
        // exact (sorted-vec) quantile, for any sample distribution.
        let samples: Vec<u64> = (0..500u64).map(|i| i * i % 4093).collect();
        let h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            let est = h.quantile_interp(q);
            let b = bucket_of(oracle);
            let lower = if b == 0 { 0 } else { bucket_bound(b - 1) } as f64;
            let upper = bucket_bound(b).min(h.max()) as f64;
            assert!(
                est >= lower && est <= upper,
                "q={q}: est {est} outside oracle bucket [{lower}, {upper}] (oracle {oracle})"
            );
        }
    }

    #[test]
    fn interpolation_is_monotone_and_clamped() {
        let h = Histogram::default();
        for v in [3u64, 5, 6, 7, 200, 210, 220, 230] {
            h.record(v);
        }
        let mut prev = 0.0;
        for i in 0..=20 {
            let est = h.quantile_interp(i as f64 / 20.0);
            assert!(est >= prev, "quantile must be monotone in q");
            prev = est;
        }
        // The top is clamped to the observed max, not the bucket bound (255).
        assert!(h.quantile_interp(1.0) <= 230.0);
        assert_eq!(Histogram::default().quantile_interp(0.99), 0.0);
        // A single sample: every quantile is that sample's bucket, clamped.
        let one = Histogram::default();
        one.record(100);
        assert!(one.quantile_interp(0.5) <= 100.0 && one.quantile_interp(0.5) > 63.0);
    }

    #[test]
    fn histogram_bucket_counts() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 8] {
            h.record(v);
        }
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 2), (3, 2), (15, 1)],
            "buckets: 0; 1,1; 2,3; 8"
        );
    }

    #[test]
    fn snapshot_shape() {
        let r = Registry::new();
        r.counter("hits").add(3);
        r.histogram("lat").record(5);
        let snap = r.snapshot();
        assert_eq!(
            snap.get("counters").unwrap().get("hits").unwrap().as_u64(),
            Some(3)
        );
        let lat = snap.get("histograms").unwrap().get("lat").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(lat.get("sum").unwrap().as_u64(), Some(5));
        // Snapshots serialize and parse back.
        assert!(crate::json::parse(&snap.pretty()).is_ok());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let r = Registry::new();
        let c = r.counter("n");
        let h = r.histogram("h");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }
}
