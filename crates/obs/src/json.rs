//! A minimal JSON value type with a writer and a parser.
//!
//! The workspace builds offline (no serde), but the observability layer
//! needs to *emit* snapshots (`trq --stats-json`, the bench gate's
//! machine-readable report) and to *read* the committed benchmark
//! baseline back. [`Json`] covers exactly that: an ordered object
//! representation, a compact/pretty writer, and a strict recursive-descent
//! parser for the subset of JSON the workspace produces (which is all of
//! standard JSON minus exotic number forms like `1e999`).

use std::fmt;

/// A JSON value. Objects preserve insertion order so snapshots diff
/// cleanly under version control.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a key in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(pairs) => {
                if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    pairs.push((key.to_owned(), value));
                }
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(pairs) => write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                let (k, v) = &pairs[i];
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                v.write(out, ind);
            }),
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN; degrade explicitly
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// A parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Json::obj()
            .with("name", Json::from("bench \"quoted\"\n"))
            .with("count", Json::from(42u64))
            .with("ratio", Json::from(1.25))
            .with("items", Json::Arr(vec![Json::Null, Json::Bool(true)]))
            .with("empty", Json::obj());
        for text in [v.to_string(), v.pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn accessors_work() {
        let v = parse(r#"{"a": 3, "b": "x", "c": [1, 2], "d": -1.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-1.5));
        assert_eq!(v.get("d").unwrap().as_u64(), None, "negative is not u64");
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn set_replaces_in_place() {
        let mut v = Json::obj().with("k", Json::from(1u64));
        v.set("k", Json::from(2u64));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(2));
        assert_eq!(v.as_obj().unwrap().len(), 1);
    }

    #[test]
    fn unicode_survives() {
        let v = Json::from("héllo → 世界");
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(parse(r#""\u0041""#).unwrap(), Json::from("A"));
    }
}
