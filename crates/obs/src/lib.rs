//! # tr-obs — zero-dependency observability for the textregion engine
//!
//! The build environment has no registry access, so instead of `tracing` +
//! `metrics` + `serde_json` this crate implements the minimal slice the
//! workspace needs, with no dependencies at all:
//!
//! * **[`mod@span`]**: hierarchical wall-clock spans with monotonic timings
//!   (per-thread nesting, bounded ring of recent root traces);
//! * **[`metrics`]**: a process-wide registry of atomic [`Counter`]s and
//!   fixed power-of-two-bucket [`Histogram`]s;
//! * **[`json`]**: an ordered [`Json`] value with writer *and* parser, so
//!   snapshots can be emitted by `trq --stats-json` and read back by the
//!   benchmark regression gate.
//!
//! Everything is always-on and cheap: recording is a handful of relaxed
//! atomics, and the instrumented crates cache metric handles in
//! `OnceLock`s so the registry map is probed once per process.
//!
//! ```
//! let requests = tr_obs::counter("doc.requests");
//! requests.inc();
//! {
//!     let _phase = tr_obs::span("doc.phase");
//!     tr_obs::histogram("doc.latency_ns").record(1280);
//! }
//! let snap = tr_obs::snapshot(); // counters + histograms + recent spans
//! assert_eq!(snap.get("counters").unwrap().get("doc.requests").unwrap().as_u64(), Some(1));
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod span;

pub use json::{parse as parse_json, Json, JsonError};
pub use metrics::{
    counter, counter_value, counter_values, histogram, Counter, Histogram, Registry,
};
pub use span::{clear_recent, last_root, recent_roots, span, timed, FinishedSpan, SpanGuard};

/// One JSON snapshot of the whole observability state: the metric
/// registry (counters + histograms) plus recent root span traces.
pub fn snapshot() -> Json {
    metrics::snapshot().with(
        "spans",
        Json::Arr(recent_roots().iter().map(FinishedSpan::to_json).collect()),
    )
}

/// [`snapshot`], pretty-printed.
pub fn snapshot_json() -> String {
    snapshot().pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_combines_metrics_and_spans() {
        counter("lib.test.counter").add(2);
        timed("lib.test.span", || {});
        let snap = snapshot();
        assert!(snap.get("counters").is_some());
        assert!(snap.get("histograms").is_some());
        let spans = snap.get("spans").unwrap().as_arr().unwrap();
        assert!(spans
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some("lib.test.span")));
        // The full snapshot is valid JSON.
        assert!(parse_json(&snapshot_json()).is_ok());
    }
}
