//! Hierarchical timing spans.
//!
//! A [`span`] guard marks a region of work on the current thread; spans
//! opened while another is active nest under it. When a span finishes its
//! wall time lands in the metrics histogram `span.<name>`, and when a
//! *root* span finishes, its whole tree is pushed into a bounded
//! process-wide ring of recent traces ([`recent_roots`]) for JSON export.
//!
//! Timings are monotonic: all timestamps come from one process-wide
//! [`Instant`] epoch, so a child's `start_ns` is always ≥ its parent's
//! and offsets are comparable across spans in one trace.
//!
//! Nesting is per-thread by design: work an instrumented function fans
//! out to worker threads is attributed to the calling thread's covering
//! span, while per-item costs on the workers go to plain histograms
//! (see `tr_core::exec`), which aggregate across threads for free.

use crate::json::Json;
use crate::metrics;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum root traces retained in the recent ring.
const RECENT_CAP: usize = 32;

/// A completed span: name, when it started (ns since the process epoch),
/// how long it ran, and the spans nested inside it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FinishedSpan {
    /// The name passed to [`span`].
    pub name: &'static str,
    /// Start time in nanoseconds since the process-wide epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Child spans, in completion order.
    pub children: Vec<FinishedSpan>,
}

impl FinishedSpan {
    /// The span tree as JSON.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .with("name", Json::from(self.name))
            .with("start_ns", Json::from(self.start_ns))
            .with("duration_ns", Json::from(self.duration_ns));
        if !self.children.is_empty() {
            j.set(
                "children",
                Json::Arr(self.children.iter().map(FinishedSpan::to_json).collect()),
            );
        }
        j
    }

    /// Finds the first descendant (or self) with this name, depth-first.
    pub fn find(&self, name: &str) -> Option<&FinishedSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

struct Frame {
    name: &'static str,
    start: Instant,
    start_ns: u64,
    children: Vec<FinishedSpan>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn recent() -> &'static Mutex<VecDeque<FinishedSpan>> {
    static RECENT: OnceLock<Mutex<VecDeque<FinishedSpan>>> = OnceLock::new();
    RECENT.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Opens a span named `name` on the current thread. The span closes when
/// the returned guard drops.
#[must_use = "a span guard measures until it is dropped"]
pub fn span(name: &'static str) -> SpanGuard {
    let depth = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(Frame {
            name,
            start: Instant::now(),
            start_ns: epoch().elapsed().as_nanos() as u64,
            children: Vec::new(),
        });
        stack.len()
    });
    SpanGuard { depth }
}

/// Closes its span on drop. See [`span`].
pub struct SpanGuard {
    /// 1-based depth of this guard's frame; dropping closes any deeper
    /// frames first, so out-of-order drops cannot corrupt the stack.
    depth: usize,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            while stack.len() >= self.depth {
                let frame = stack.pop().expect("frame at guard depth");
                let finished = FinishedSpan {
                    name: frame.name,
                    start_ns: frame.start_ns,
                    duration_ns: frame.start.elapsed().as_nanos() as u64,
                    children: frame.children,
                };
                metrics::histogram(&format!("span.{}", finished.name)).record(finished.duration_ns);
                match stack.last_mut() {
                    Some(parent) => parent.children.push(finished),
                    None => {
                        let mut ring = recent().lock().unwrap_or_else(|p| p.into_inner());
                        if ring.len() == RECENT_CAP {
                            ring.pop_front();
                        }
                        ring.push_back(finished);
                    }
                }
            }
        });
    }
}

/// Times `f` under a span named `name`.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _guard = span(name);
    f()
}

/// The most recent completed root spans, oldest first (bounded ring).
pub fn recent_roots() -> Vec<FinishedSpan> {
    recent()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .cloned()
        .collect()
}

/// The most recent completed root span with this name, if any.
pub fn last_root(name: &str) -> Option<FinishedSpan> {
    recent()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .rev()
        .find(|s| s.name == name)
        .cloned()
}

/// Drops all retained root spans (tests and long-lived processes).
pub fn clear_recent() {
    recent().lock().unwrap_or_else(|p| p.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_time_monotonically() {
        clear_recent();
        {
            let _root = span("t.root");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _child = span("t.child");
                let _grand = span("t.grand");
            }
            let _sibling = span("t.sibling");
        }
        let root = last_root("t.root").expect("root recorded");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "t.child");
        assert_eq!(root.children[0].children[0].name, "t.grand");
        assert_eq!(root.children[1].name, "t.sibling");
        // Monotonic: children start after the parent, fit inside it.
        for c in &root.children {
            assert!(c.start_ns >= root.start_ns);
            assert!(c.duration_ns <= root.duration_ns);
        }
        assert!(root.duration_ns >= 2_000_000, "slept 2ms");
        assert!(root.find("t.grand").is_some());
        assert!(root.find("t.missing").is_none());
    }

    #[test]
    fn span_durations_feed_histograms() {
        let before = metrics::histogram("span.t.metric").count();
        timed("t.metric", || {
            std::thread::sleep(std::time::Duration::from_micros(50))
        });
        let h = metrics::histogram("span.t.metric");
        assert_eq!(h.count(), before + 1);
        assert!(h.max() >= 50_000);
    }

    #[test]
    fn out_of_order_drops_do_not_corrupt_the_stack() {
        clear_recent();
        let root = span("t.ooo_root");
        let a = span("t.ooo_a");
        let b = span("t.ooo_b");
        drop(a); // closes b first (as a child), then a
        drop(b); // already closed: no-op
        drop(root);
        let root = last_root("t.ooo_root").expect("root recorded");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "t.ooo_a");
        assert_eq!(root.children[0].children[0].name, "t.ooo_b");
    }

    #[test]
    fn threads_get_independent_roots() {
        clear_recent();
        std::thread::scope(|s| {
            let _main = span("t.main");
            s.spawn(|| {
                let _w = span("t.worker");
            })
            .join()
            .unwrap();
        });
        // The worker span finished on its own thread → its own root.
        assert!(last_root("t.worker").is_some());
        let main = last_root("t.main").expect("main recorded");
        assert!(main.children.is_empty());
    }

    #[test]
    fn json_shape() {
        clear_recent();
        timed("t.json", || {
            let _c = span("t.json_child");
        });
        let j = last_root("t.json").unwrap().to_json();
        assert_eq!(j.get("name").unwrap().as_str(), Some("t.json"));
        assert!(j.get("duration_ns").unwrap().as_u64().is_some());
        assert_eq!(j.get("children").unwrap().as_arr().unwrap().len(), 1);
    }
}
