//! `trq` — query text regions from the command line.
//!
//! ```text
//! trq <file> [query]           run one query (REPL on stdin if omitted)
//!
//! options:
//!   --format sgml|source|auto  document format (default: auto-detect;
//!                              persisted .trx indexes are detected by magic)
//!   --save <path>              persist the built index to <path> and exit
//!   --explain                  show the plan instead of running
//!   --limit N                  print at most N hits (default 20)
//! ```
//!
//! REPL commands: `:schema`, `:explain <query>`, `:let <name> = <query>`,
//! `:quit`.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use tr_query::Engine;

struct Options {
    file: Option<String>,
    query: Option<String>,
    format: Format,
    explain: bool,
    limit: usize,
    save: Option<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Auto,
    Sgml,
    Source,
}

fn usage() -> ! {
    eprintln!("usage: trq <file> [query] [--format sgml|source|auto] [--explain] [--limit N]");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        file: None,
        query: None,
        format: Format::Auto,
        explain: false,
        limit: 20,
        save: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("sgml") => Format::Sgml,
                    Some("source") => Format::Source,
                    Some("auto") => Format::Auto,
                    _ => usage(),
                }
            }
            "--explain" => opts.explain = true,
            "--save" => opts.save = Some(args.next().unwrap_or_else(|| usage())),
            "--limit" => {
                opts.limit = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ if opts.file.is_none() => opts.file = Some(arg),
            _ if opts.query.is_none() => opts.query = Some(arg),
            _ => usage(),
        }
    }
    opts
}

fn open_engine(path: &str, format: Format) -> Result<Engine, String> {
    // Persisted indexes are detected by their magic bytes.
    let raw = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if raw.starts_with(tr_store::MAGIC) {
        let doc = tr_store::load_document(path).map_err(|e| e.to_string())?;
        return Ok(Engine::from_parts(doc.text, doc.instance, doc.rig));
    }
    let text = String::from_utf8(raw).map_err(|_| format!("{path} is not UTF-8 text"))?;
    let format = match format {
        Format::Auto => {
            if text.trim_start().starts_with('<') {
                Format::Sgml
            } else {
                Format::Source
            }
        }
        f => f,
    };
    match format {
        Format::Sgml => Engine::from_sgml(&text).map_err(|e| e.to_string()),
        Format::Source => Engine::from_source(&text).map_err(|e| e.to_string()),
        Format::Auto => unreachable!(),
    }
}

fn run_query(engine: &Engine, query: &str, explain: bool, limit: usize) {
    if explain {
        match engine.explain(query) {
            Ok(plan) => println!("{plan}"),
            Err(e) => eprintln!("error: {e}"),
        }
        return;
    }
    match engine.query(query) {
        Ok(hits) => {
            println!("{} hit(s)", hits.len());
            for r in hits.iter().take(limit) {
                let snippet: String = engine
                    .snippet(r)
                    .chars()
                    .take(72)
                    .map(|c| if c == '\n' { ' ' } else { c })
                    .collect();
                println!("  {r}\t{snippet}");
            }
            if hits.len() > limit {
                println!("  … {} more (raise with --limit)", hits.len() - limit);
            }
        }
        Err(e) => eprintln!("error: {e}"),
    }
}

fn repl(mut engine: Engine, limit: usize) {
    println!(
        "indexed {} regions; names: {}",
        engine.instance().len(),
        engine.schema().names().collect::<Vec<_>>().join(", ")
    );
    println!("enter queries (:schema, :explain <q>, :let <name> = <q>, :quit)");
    let stdin = std::io::stdin();
    loop {
        print!("trq> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":schema" {
            for name in engine.schema().names() {
                println!(
                    "  {name}  ({} regions)",
                    engine.instance().regions_of_name(name).len()
                );
            }
            for v in engine.views() {
                println!("  {v}  (view)");
            }
            continue;
        }
        if let Some(q) = line.strip_prefix(":explain ") {
            run_query(&engine, q, true, limit);
            continue;
        }
        if let Some(rest) = line.strip_prefix(":let ") {
            match rest.split_once('=') {
                Some((name, def)) => match engine.define_view(name.trim(), def.trim()) {
                    Ok(()) => println!("view {} defined", name.trim()),
                    Err(e) => eprintln!("error: {e}"),
                },
                None => eprintln!("usage: :let <name> = <query>"),
            }
            continue;
        }
        run_query(&engine, line, false, limit);
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    let Some(file) = &opts.file else { usage() };
    let engine = match open_engine(file, opts.format) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(out) = &opts.save {
        match tr_store::save_document(out, engine.text(), engine.instance(), engine.rig()) {
            Ok(()) => {
                println!("index saved to {out} ({} regions)", engine.instance().len());
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: cannot save {out}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match &opts.query {
        Some(q) => run_query(&engine, q, opts.explain, opts.limit),
        None => repl(engine, opts.limit),
    }
    ExitCode::SUCCESS
}
