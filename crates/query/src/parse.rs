//! The surface syntax: a small PAT-flavoured query language.
//!
//! ```text
//! query    := set
//! set      := struct (("union" | "minus" | "intersect") struct)*      (left-assoc)
//! struct   := postfix (STRUCTOP struct)?                              (right-assoc,
//!              STRUCTOP ∈ within | containing | before | after
//!                        | directly within | directly containing)
//! postfix  := primary ("matching" STRING)*
//! primary  := NAME | STRING | "bi" "(" query "," query "," query ")"
//!           | "(" query ")"
//! ```
//!
//! A bare `STRING` is the pattern's match point set — PAT's second set
//! type — so `"food of love" within line` works directly.
//!
//! Structural operators group from the right with no mixing at one level —
//! matching the paper's convention that `A ⊂ B ⊂ C` means `A ⊂ (B ⊂ C)`;
//! parenthesize to override. `union`/`minus`/`intersect` associate left
//! and bind looser than the structural operators.

use crate::ast::Query;
use std::collections::BTreeMap;
use std::fmt;
use tr_core::Schema;

/// A parse error with a byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the query string.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Str(String),
    LParen,
    RParen,
    Comma,
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            b')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            b',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut raw: Vec<u8> = Vec::new();
                loop {
                    match bytes.get(i) {
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') if matches!(bytes.get(i + 1), Some(b'"') | Some(b'\\')) => {
                            raw.push(bytes[i + 1]);
                            i += 2;
                        }
                        Some(&b) => {
                            raw.push(b);
                            i += 1;
                        }
                        None => {
                            return Err(ParseError {
                                message: "unterminated string".into(),
                                at: start,
                            })
                        }
                    }
                }
                // The input is a &str, so the collected bytes are valid
                // UTF-8 (escapes only ever insert ASCII).
                let s = String::from_utf8(raw).map_err(|_| ParseError {
                    message: "invalid UTF-8 in string".into(),
                    at: start,
                })?;
                out.push((Tok::Str(s), start));
            }
            b if b.is_ascii_alphanumeric() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Ident(input[start..i].to_owned()), start));
            }
            _ => {
                return Err(ParseError {
                    message: format!("unexpected character {:?}", c as char),
                    at: i,
                })
            }
        }
    }
    Ok(out)
}

/// Parses a query against a schema (names are resolved eagerly, so typos
/// surface as parse errors with positions).
pub fn parse(input: &str, schema: &Schema) -> Result<Query, ParseError> {
    parse_with_views(input, schema, &BTreeMap::new())
}

/// Parses a query against a schema plus named *views* (the paper's
/// footnote 1: dynamically defined region sets are treated as views).
/// A view reference expands to its definition's AST inline.
pub fn parse_with_views(
    input: &str,
    schema: &Schema,
    views: &BTreeMap<String, Query>,
) -> Result<Query, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        schema,
        views,
        input_len: input.len(),
        depth: 0,
    };
    let q = p.set()?;
    if p.pos != p.toks.len() {
        return Err(ParseError {
            message: "trailing input".into(),
            at: p.here(),
        });
    }
    Ok(q)
}

/// Maximum recursion depth across structural chains and parentheses.
/// The parser (and everything downstream that walks the AST) recurses,
/// so untrusted input — the server feeds this network bytes — must not
/// be able to drive the stack arbitrarily deep. 512 is far beyond any
/// meaningful query while keeping worst-case stack use a few hundred KB.
const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    schema: &'a Schema,
    views: &'a BTreeMap<String, Query>,
    input_len: usize,
    depth: usize,
}

impl Parser<'_> {
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(ParseError {
                message: format!("query nested deeper than {MAX_DEPTH} levels"),
                at: self.here(),
            });
        }
        Ok(())
    }
    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map_or(self.input_len, |&(_, at)| at)
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.toks.get(self.pos) {
            Some((Tok::Ident(s), _)) => Some(s),
            _ => None,
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if self.peek_ident() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.toks.get(self.pos).map(|(t, _)| t) == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError {
                message: format!("expected {what}"),
                at: self.here(),
            })
        }
    }

    fn set(&mut self) -> Result<Query, ParseError> {
        let mut q = self.structural()?;
        loop {
            if self.eat_ident("union") {
                q = Query::Union(Box::new(q), Box::new(self.structural()?));
            } else if self.eat_ident("minus") {
                q = Query::Minus(Box::new(q), Box::new(self.structural()?));
            } else if self.eat_ident("intersect") {
                q = Query::Intersect(Box::new(q), Box::new(self.structural()?));
            } else {
                return Ok(q);
            }
        }
    }

    fn structural(&mut self) -> Result<Query, ParseError> {
        self.enter()?;
        let out = self.structural_inner();
        self.depth -= 1;
        out
    }

    fn structural_inner(&mut self) -> Result<Query, ParseError> {
        let left = self.postfix()?;
        let make = |ctor: fn(Box<Query>, Box<Query>) -> Query, l: Query, r: Query| {
            ctor(Box::new(l), Box::new(r))
        };
        if self.eat_ident("within") {
            return Ok(make(Query::Within, left, self.structural()?));
        }
        if self.eat_ident("containing") {
            return Ok(make(Query::Containing, left, self.structural()?));
        }
        if self.eat_ident("before") {
            return Ok(make(Query::Before, left, self.structural()?));
        }
        if self.eat_ident("after") {
            return Ok(make(Query::After, left, self.structural()?));
        }
        if self.peek_ident() == Some("directly") {
            let save = self.pos;
            self.pos += 1;
            if self.eat_ident("within") {
                return Ok(make(Query::DirectlyWithin, left, self.structural()?));
            }
            if self.eat_ident("containing") {
                return Ok(make(Query::DirectlyContaining, left, self.structural()?));
            }
            self.pos = save;
            return Err(ParseError {
                message: "expected `within` or `containing` after `directly`".into(),
                at: self.here(),
            });
        }
        Ok(left)
    }

    fn postfix(&mut self) -> Result<Query, ParseError> {
        let mut q = self.primary()?;
        while self.eat_ident("matching") {
            match self.bump() {
                Some(Tok::Str(p)) => q = Query::Matching(p, Box::new(q)),
                _ => {
                    return Err(ParseError {
                        message: "expected a quoted pattern after `matching`".into(),
                        at: self.here(),
                    })
                }
            }
        }
        Ok(q)
    }

    fn primary(&mut self) -> Result<Query, ParseError> {
        self.enter()?;
        let out = self.primary_inner();
        self.depth -= 1;
        out
    }

    fn primary_inner(&mut self) -> Result<Query, ParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::LParen) => {
                let q = self.set()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(q)
            }
            Some(Tok::Str(p)) => Ok(Query::MatchPoints(p)),
            Some(Tok::Ident(name)) if name == "bi" => {
                self.expect(Tok::LParen, "`(` after `bi`")?;
                let r = self.set()?;
                self.expect(Tok::Comma, "`,`")?;
                let s = self.set()?;
                self.expect(Tok::Comma, "`,`")?;
                let t = self.set()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(Query::BothIncluded(Box::new(r), Box::new(s), Box::new(t)))
            }
            Some(Tok::Ident(name)) => match self.schema.id(&name) {
                Some(id) => Ok(Query::Name(id)),
                None => match self.views.get(&name) {
                    Some(view) => Ok(view.clone()),
                    None => Err(ParseError {
                        message: format!(
                            "unknown region name or view {name:?} (schema: {})",
                            self.schema.names().collect::<Vec<_>>().join(", ")
                        ),
                        at,
                    }),
                },
            },
            _ => Err(ParseError {
                message: "expected a region name, a quoted pattern, `bi(…)`, or `(`".into(),
                at,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["Doc", "Sec", "Par"])
    }

    fn p(s: &str) -> Query {
        parse(s, &schema()).unwrap()
    }

    #[test]
    fn structural_chains_group_right() {
        let q = p("Par within Sec within Doc");
        let expect = Query::Within(
            Box::new(Query::Name(schema().expect_id("Par"))),
            Box::new(Query::Within(
                Box::new(Query::Name(schema().expect_id("Sec"))),
                Box::new(Query::Name(schema().expect_id("Doc"))),
            )),
        );
        assert_eq!(q, expect);
    }

    #[test]
    fn set_operators_group_left_and_bind_loose() {
        let q = p("Par within Sec union Doc minus Sec");
        // ((Par within Sec) union Doc) minus Sec
        match q {
            Query::Minus(l, _) => match *l {
                Query::Union(ll, _) => assert!(matches!(*ll, Query::Within(..))),
                other => panic!("expected union, got {other:?}"),
            },
            other => panic!("expected minus, got {other:?}"),
        }
    }

    #[test]
    fn matching_binds_tightest() {
        let q = p("Par matching \"x\" within Sec");
        match q {
            Query::Within(l, _) => assert!(matches!(*l, Query::Matching(..))),
            other => panic!("{other:?}"),
        }
        // Repeated and parenthesized selections.
        assert!(matches!(
            p("Par matching \"x\" matching \"y\""),
            Query::Matching(..)
        ));
        assert!(matches!(
            p("(Par within Sec) matching \"x\""),
            Query::Matching(..)
        ));
    }

    #[test]
    fn directly_variants() {
        assert!(matches!(
            p("Par directly within Sec"),
            Query::DirectlyWithin(..)
        ));
        assert!(matches!(
            p("Sec directly containing Par"),
            Query::DirectlyContaining(..)
        ));
        assert!(parse("Par directly before Sec", &schema()).is_err());
    }

    #[test]
    fn bi_function() {
        let q = p("bi(Doc, Par matching \"x\", Par matching \"y\")");
        assert!(matches!(q, Query::BothIncluded(..)));
    }

    #[test]
    fn utf8_patterns_survive_lexing() {
        let q = p(r#"Par matching "caffè μ-region""#);
        match q {
            Query::Matching(pat, _) => assert_eq!(pat, "caffè μ-region"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn escaped_strings() {
        let q = p(r#"Par matching "say \"hi\"""#);
        match q {
            Query::Matching(p, _) => assert_eq!(p, "say \"hi\""),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_patterns_are_match_point_sets() {
        let q = p(r#""food of love" within Sec"#);
        match q {
            Query::Within(l, _) => assert_eq!(*l, Query::MatchPoints("food of love".into())),
            other => panic!("{other:?}"),
        }
        // …and they still work as selection arguments after `matching`.
        assert!(matches!(p(r#"Par matching "x""#), Query::Matching(..)));
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        // Thousands of open parens must produce an error, not a stack
        // overflow (the server feeds this parser untrusted bytes).
        let hostile = format!("{}Par{}", "(".repeat(20_000), ")".repeat(20_000));
        let err = parse(&hostile, &schema()).unwrap_err();
        assert!(err.message.contains("nested deeper"), "{err}");
        // Long `within` chains recurse too.
        let chain = vec!["Par"; 5_000].join(" within ");
        assert!(parse(&chain, &schema()).is_err());
        // Reasonable nesting is untouched.
        let fine = format!("{}Par{}", "(".repeat(100), ")".repeat(100));
        assert!(parse(&fine, &schema()).is_ok());
        let fine_chain = vec!["Par"; 100].join(" within ");
        assert!(parse(&fine_chain, &schema()).is_ok());
    }

    #[test]
    fn error_positions_and_messages() {
        let err = parse("Par within Nope", &schema()).unwrap_err();
        assert!(err.message.contains("unknown region name"), "{err}");
        assert_eq!(err.at, 11);
        assert!(parse("Par within", &schema()).is_err());
        assert!(parse("(Par", &schema()).is_err());
        assert!(parse("Par )", &schema()).is_err());
        assert!(parse("Par matching x", &schema()).is_err());
        assert!(parse("\"unterminated", &schema()).is_err());
        assert!(parse("Par @ Sec", &schema()).is_err());
    }
}
