//! The end-to-end engine: text in, regions out.
//!
//! [`Engine`] ties together the whole stack: a document is parsed into a
//! hierarchical instance over a suffix-array word index (`tr-markup` +
//! `tr-text`), queries are parsed (`parse`), planned (RIG-based chain
//! optimization from `tr-rig` when a RIG is attached), and evaluated
//! (`tr-core` operators, `tr-ext` for the extended operators).

use crate::ast::Query;
use crate::parse::{parse_with_views, ParseError};
use std::collections::BTreeMap;
use std::fmt;
use tr_core::{Expr, Instance, Region, RegionSet, Schema};
use tr_markup::{parse_program, parse_sgml, ParseError as SourceError, SgmlError};
use tr_rig::Rig;
use tr_text::SuffixWordIndex;

/// Errors surfaced by [`Engine`] entry points.
#[derive(Debug)]
pub enum EngineError {
    /// The query text failed to parse.
    Query(ParseError),
    /// The SGML document failed to parse.
    Sgml(SgmlError),
    /// The source-code document failed to parse.
    Source(SourceError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::Sgml(e) => write!(f, "document error: {e}"),
            EngineError::Source(e) => write!(f, "source error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> EngineError {
        EngineError::Query(e)
    }
}

/// A queryable indexed document.
pub struct Engine {
    text: String,
    instance: Instance<SuffixWordIndex>,
    rig: Option<Rig>,
    views: BTreeMap<String, Query>,
}

impl Engine {
    /// Indexes an SGML-lite document (schema derived from its tags).
    pub fn from_sgml(text: &str) -> Result<Engine, EngineError> {
        let instance = parse_sgml(text).map_err(EngineError::Sgml)?;
        Ok(Engine { text: text.to_owned(), instance, rig: None, views: BTreeMap::new() })
    }

    /// Indexes a toy-language source file (Figure 1 schema), attaching the
    /// Figure 1 RIG so chain queries get optimized automatically.
    pub fn from_source(text: &str) -> Result<Engine, EngineError> {
        let instance = parse_program(text).map_err(EngineError::Source)?;
        Ok(Engine {
            text: text.to_owned(),
            instance,
            rig: Some(Rig::figure_1()),
            views: BTreeMap::new(),
        })
    }

    /// Builds an engine from already-indexed parts (e.g. a persisted
    /// document loaded by `tr-store`). The instance's word index must
    /// cover `text`.
    pub fn from_parts(
        text: String,
        instance: Instance<SuffixWordIndex>,
        rig: Option<Rig>,
    ) -> Engine {
        if let Some(rig) = &rig {
            assert_eq!(rig.schema(), instance.schema(), "RIG schema must match");
        }
        Engine { text, instance, rig, views: BTreeMap::new() }
    }

    /// Attaches a RIG (the instance is *assumed* to satisfy it; use
    /// `tr_rig::check_rig` to verify).
    pub fn with_rig(mut self, rig: Rig) -> Engine {
        assert_eq!(rig.schema(), self.instance.schema(), "RIG schema must match");
        self.rig = Some(rig);
        self
    }

    /// The indexed document text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance<SuffixWordIndex> {
        &self.instance
    }

    /// The schema (region names available to queries).
    pub fn schema(&self) -> &Schema {
        self.instance.schema()
    }

    /// The attached RIG, if any.
    pub fn rig(&self) -> Option<&Rig> {
        self.rig.as_ref()
    }

    /// Parses, plans, and runs a query.
    pub fn query(&self, q: &str) -> Result<RegionSet, EngineError> {
        let ast = parse_with_views(q, self.schema(), &self.views)?;
        // Pure-algebra queries go through the planner (RIG chain
        // optimization); extended queries evaluate the AST directly.
        match (ast.to_expr(), &self.rig) {
            (Some(e), Some(rig)) => Ok(tr_core::eval(&tr_rig::optimize_expr(&e, rig), &self.instance)),
            (Some(e), None) => Ok(tr_core::eval(&e, &self.instance)),
            (None, _) => Ok(ast.eval(&self.instance)),
        }
    }

    /// Explains how a query would run: the compiled algebra expression and
    /// its RIG-optimized form (or a note that it uses extended operators).
    pub fn explain(&self, q: &str) -> Result<String, EngineError> {
        let ast = parse_with_views(q, self.schema(), &self.views)?;
        let schema = self.schema();
        Ok(match ast.to_expr() {
            Some(e) => {
                let mut out = format!("algebra: {}", e.display(schema));
                if let Some(rig) = &self.rig {
                    let opt = tr_rig::optimize_expr(&e, rig);
                    if opt != e {
                        out.push_str(&format!(
                            "\noptimized (w.r.t. RIG): {} [{} → {} ops]",
                            opt.display(schema),
                            e.num_ops(),
                            opt.num_ops()
                        ));
                    } else {
                        out.push_str("\noptimized (w.r.t. RIG): unchanged");
                    }
                }
                out
            }
            None => format!(
                "extended query (outside the region algebra — Theorems 5.1/5.3): {}",
                ast.display(schema)
            ),
        })
    }

    /// Parses a query without running it (for tooling).
    pub fn parse_query(&self, q: &str) -> Result<Query, EngineError> {
        Ok(parse_with_views(q, self.schema(), &self.views)?)
    }

    /// Defines (or replaces) a named view: a query that later queries can
    /// reference like a region name. Views may reference earlier views
    /// (expanded at definition time, so no cycles can form). A view may
    /// not shadow a schema name.
    pub fn define_view(&mut self, name: &str, definition: &str) -> Result<(), EngineError> {
        if self.schema().id(name).is_some() {
            return Err(EngineError::Query(ParseError {
                message: format!("view {name:?} would shadow a region name"),
                at: 0,
            }));
        }
        if !is_identifier(name) {
            return Err(EngineError::Query(ParseError {
                message: format!("invalid view name {name:?}"),
                at: 0,
            }));
        }
        let q = parse_with_views(definition, self.schema(), &self.views)?;
        self.views.insert(name.to_owned(), q);
        Ok(())
    }

    /// The names of the defined views, sorted.
    pub fn views(&self) -> impl Iterator<Item = &str> {
        self.views.keys().map(String::as_str)
    }

    /// The compiled algebra expression for a pure-algebra query.
    pub fn compile(&self, q: &str) -> Result<Option<Expr>, EngineError> {
        Ok(self.parse_query(q)?.to_expr())
    }

    /// The document text covered by a region.
    pub fn snippet(&self, r: Region) -> &str {
        &self.text[r.left() as usize..=(r.right() as usize).min(self.text.len() - 1)]
    }
}

fn is_identifier(name: &str) -> bool {
    !name.is_empty() && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_markup::ProgramSpec;

    fn sgml_engine() -> Engine {
        Engine::from_sgml(
            "<doc><sec>alpha beta</sec><sec>gamma <note>beta</note></sec></doc>",
        )
        .unwrap()
    }

    #[test]
    fn sgml_end_to_end() {
        let e = sgml_engine();
        let out = e.query(r#"sec matching "beta""#).unwrap();
        assert_eq!(out.len(), 2, "both sections contain beta");
        let out = e.query(r#"sec matching "beta" minus (sec containing note)"#).unwrap();
        assert_eq!(out.len(), 1, "only the first has beta outside a note");
        assert!(e.snippet(out.iter().next().unwrap()).contains("alpha"));
    }

    #[test]
    fn source_engine_runs_paper_queries() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let spec = ProgramSpec::random(&mut rng, 10, 3, 2);
        let text = spec.render();
        let e = Engine::from_source(&text).unwrap();
        // The paper's e1 and e2 must agree (the instance satisfies Fig. 1).
        let e1 = e.query("Name within Proc_header within Proc within Program").unwrap();
        let e2 = e.query("Name within Proc_header within Program").unwrap();
        assert_eq!(e1, e2);
        assert_eq!(e1.len(), spec.num_procs());
    }

    #[test]
    fn explain_shows_rig_optimization() {
        let text = "program a; proc b; begin end; begin end.";
        let e = Engine::from_source(text).unwrap();
        let plan = e.explain("Name within Proc_header within Proc within Program").unwrap();
        assert!(plan.contains("optimized"), "{plan}");
        assert!(plan.contains("3 → 2 ops") || plan.contains("→ 2 ops"), "{plan}");
        let plan = e.explain("Proc directly containing Proc_body").unwrap();
        assert!(plan.contains("extended query"), "{plan}");
    }

    #[test]
    fn extended_queries_work_end_to_end() {
        // Nested procs: "find the procedures that define variable x"
        // (Section 5.1) — ⊃ over-selects, ⊃_d is exact.
        let text = "program a; proc outer; proc inner; var x; begin end; begin end; begin end.";
        let e = Engine::from_source(text).unwrap();
        let loose = e
            .query(r#"Proc containing (Proc_body containing (Var matching "x"))"#)
            .unwrap();
        assert_eq!(loose.len(), 2, "the outer proc is selected spuriously");
        let tight = e
            .query(r#"Proc directly containing (Proc_body directly containing (Var matching "x"))"#)
            .unwrap();
        assert_eq!(tight.len(), 1);
        assert!(e.snippet(tight.iter().next().unwrap()).starts_with("proc inner"));
    }

    #[test]
    fn bi_query_end_to_end() {
        // Section 5.2: procedures where the definition of x precedes y.
        // Both procs declare y *before* x, so no proc qualifies — but p's x
        // does precede q's y, which is exactly the cross-procedure trap the
        // naive algebra formulation falls into.
        let text = "program a; proc p; var y; var x; begin end; proc q; var y; var x; begin end; begin end.";
        let e = Engine::from_source(text).unwrap();
        let out = e
            .query(r#"bi(Proc, Var matching "x", Var matching "y")"#)
            .unwrap();
        assert!(out.is_empty(), "no proc has x before y within itself");
        let naive = e
            .query(r#"Proc containing ((Var matching "x") before (Var matching "y"))"#)
            .unwrap();
        assert_eq!(naive.len(), 1, "p selected spuriously via q's y");
        assert!(e.snippet(naive.iter().next().unwrap()).starts_with("proc p"));
        // And a positive case: x before y inside the same proc.
        let text2 = "program a; proc p; var x; var y; begin end; begin end.";
        let e2 = Engine::from_source(text2).unwrap();
        let out2 = e2
            .query(r#"bi(Proc, Var matching "x", Var matching "y")"#)
            .unwrap();
        assert_eq!(out2.len(), 1);
    }

    #[test]
    fn bare_patterns_query_match_points() {
        let e = sgml_engine();
        // The occurrences of "beta" as regions (PAT match point sets)…
        let points = e.query(r#""beta""#).unwrap();
        assert_eq!(points.len(), 2);
        for r in points.iter() {
            assert_eq!(e.snippet(r), "beta");
        }
        // …compose with structural operators.
        assert_eq!(e.query(r#""beta" within note"#).unwrap().len(), 1);
        assert_eq!(e.query(r#"("beta" within sec) minus ("beta" within note)"#).unwrap().len(), 1);
    }

    #[test]
    fn views_expand_like_names() {
        let mut e = sgml_engine();
        e.define_view("beta_secs", r#"sec matching "beta""#).unwrap();
        assert_eq!(e.query("beta_secs").unwrap().len(), 2);
        assert_eq!(
            e.query("beta_secs minus (sec containing note)").unwrap().len(),
            1
        );
        // Views can build on views.
        e.define_view("clean", "beta_secs minus (sec containing note)").unwrap();
        assert_eq!(e.query("clean").unwrap().len(), 1);
        assert_eq!(e.views().collect::<Vec<_>>(), vec!["beta_secs", "clean"]);
        // Shadowing a schema name is rejected.
        assert!(e.define_view("sec", "note").is_err());
        assert!(e.define_view("bad name", "note").is_err());
        // Unknown names still error.
        assert!(e.query("nonexistent_view").is_err());
    }

    #[test]
    fn query_errors_are_reported() {
        let e = sgml_engine();
        assert!(matches!(e.query("nope within doc"), Err(EngineError::Query(_))));
        assert!(Engine::from_sgml("<a><b></a>").is_err());
        assert!(Engine::from_source("not a program").is_err());
    }
}
