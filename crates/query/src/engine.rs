//! The end-to-end engine: text in, regions out.
//!
//! [`Engine`] ties together the whole stack: a document is parsed into a
//! hierarchical instance over a suffix-array word index (`tr-markup` +
//! `tr-text`), queries are parsed (`parse`), planned (RIG-based chain
//! optimization from `tr-rig` when a RIG is attached), and evaluated
//! (`tr-core` operators, `tr-ext` for the extended operators).

use crate::ast::Query;
use crate::parse::{parse_with_views, ParseError};
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use tr_core::{
    choose_segmentation, estimate, execute_range, execute_segmented, execute_with_choices,
    expr_fingerprint, seg, AppliedRewrite, Corpus, CostModel, ExecConfig, Executed, Expr, Instance,
    PartitionError, PartitionExec, PartitionQuery, PartitionSet, Plan, PlannerMode, Pos, Region,
    RegionSet, Schema, Stats, Window,
};
use tr_markup::{parse_program, parse_sgml, ParseError as SourceError, SgmlError};
use tr_rig::Rig;
use tr_text::SuffixWordIndex;

/// Cached handles into the `tr_obs` metrics registry. Every counter here
/// is defined so that, per batch, `engine.cache.hits + engine.cache.misses
/// + engine.extended == engine.queries` — the same identity `BatchStats`
/// satisfies, which `trq --stats-json` and the integration tests check.
struct EngineMetrics {
    /// `engine.batches` / `engine.queries`: batch calls and queries seen.
    batches: Arc<tr_obs::Counter>,
    queries: Arc<tr_obs::Counter>,
    /// `engine.cache.hits` / `engine.cache.misses`: result-cache outcomes
    /// for pure-algebra queries.
    cache_hits: Arc<tr_obs::Counter>,
    cache_misses: Arc<tr_obs::Counter>,
    /// `engine.cache.bytes_avoided`: region-data bytes a cache hit would
    /// have deep-copied under the old owned-vector representation but now
    /// serves as a zero-copy columnar handle (8 bytes per region: two
    /// `u32` endpoints).
    cache_bytes_avoided: Arc<tr_obs::Counter>,
    /// `engine.extended`: queries using extended operators (bypass the
    /// plan and the cache).
    extended: Arc<tr_obs::Counter>,
    /// `engine.nodes_executed`: distinct plan nodes run on the executor.
    nodes_executed: Arc<tr_obs::Counter>,
}

/// Bytes of region data a zero-copy handle shares instead of copying.
fn region_bytes(v: &RegionSet) -> u64 {
    (v.len() * 2 * std::mem::size_of::<tr_core::Pos>()) as u64
}

impl EngineMetrics {
    fn get() -> &'static EngineMetrics {
        static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
        METRICS.get_or_init(|| EngineMetrics {
            batches: tr_obs::counter("engine.batches"),
            queries: tr_obs::counter("engine.queries"),
            cache_hits: tr_obs::counter("engine.cache.hits"),
            cache_misses: tr_obs::counter("engine.cache.misses"),
            cache_bytes_avoided: tr_obs::counter("engine.cache.bytes_avoided"),
            extended: tr_obs::counter("engine.extended"),
            nodes_executed: tr_obs::counter("engine.nodes_executed"),
        })
    }
}

/// Errors surfaced by [`Engine`] entry points.
#[derive(Debug)]
pub enum EngineError {
    /// The query text failed to parse.
    Query(ParseError),
    /// The SGML document failed to parse.
    Sgml(SgmlError),
    /// The source-code document failed to parse.
    Source(SourceError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Query(e) => write!(f, "query error: {e}"),
            EngineError::Sgml(e) => write!(f, "document error: {e}"),
            EngineError::Source(e) => write!(f, "source error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> EngineError {
        EngineError::Query(e)
    }
}

/// What a [`Engine::query_batch`] run did, for observability and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Queries answered straight from the result cache.
    pub cache_hits: usize,
    /// Distinct plan nodes after hash-consing the whole batch.
    pub distinct_nodes: usize,
    /// Plan nodes actually evaluated — equals `distinct_nodes`: each
    /// shared sub-expression runs exactly once per batch.
    pub nodes_evaluated: usize,
    /// Worker threads the executor actually engaged — `1` when the plan
    /// was small enough that the sequential path (or a single worker)
    /// handled it, and `0` if nothing was executed at all (every query
    /// cached or extended).
    pub threads: usize,
}

/// A bounded FIFO cache of query results, keyed by structural expression
/// fingerprint and verified against the stored expression (a 64-bit hash
/// collision degrades to a miss, never a wrong answer).
pub(crate) struct ResultCache {
    capacity: usize,
    map: HashMap<u64, (Expr, RegionSet)>,
    order: VecDeque<u64>,
}

impl ResultCache {
    pub(crate) fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, fp: u64, e: &Expr) -> Option<RegionSet> {
        match self.map.get(&fp) {
            // O(1): a `RegionSet` clone is a refcount bump on the shared
            // columnar buffer, not a copy of the regions.
            Some((stored, v)) if stored == e => Some(v.clone()),
            _ => None,
        }
    }

    fn insert(&mut self, fp: u64, e: Expr, v: RegionSet) {
        if self.map.insert(fp, (e, v)).is_none() {
            self.order.push_back(fp);
            while self.map.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// The cache a mutated engine generation starts with: entries whose
    /// expression still evaluates to the same bytes (per `keep`) carry
    /// over in FIFO order; the rest are dropped. Returns the new cache
    /// plus (kept, dropped) counts.
    pub(crate) fn carried(&self, keep: impl Fn(&Expr) -> bool) -> (ResultCache, usize, usize) {
        let mut out = ResultCache::new(self.capacity);
        let (mut kept, mut dropped) = (0, 0);
        for fp in &self.order {
            if let Some((e, v)) = self.map.get(fp) {
                if keep(e) {
                    out.insert(*fp, e.clone(), v.clone());
                    kept += 1;
                } else {
                    dropped += 1;
                }
            }
        }
        (out, kept, dropped)
    }
}

/// Default capacity of the engine's result cache (distinct queries).
const RESULT_CACHE_CAPACITY: usize = 128;

/// Distinct expressions whose rewrite-search outcome is memoized; at
/// capacity the memo is simply cleared (planning is recomputable, and a
/// server churning through this many distinct query shapes is already
/// paying far more in execution than in planning).
const PLAN_MEMO_CAPACITY: usize = 256;

/// View definitions scoped to one client session, layered over a shared
/// (immutable) [`Engine`].
///
/// A long-lived server shares one engine per document across many
/// connections, but the paper's footnote-1 views are conversational
/// state: each session defines its own. `SessionViews` holds that state
/// outside the engine; pass it to [`Engine::query_with`],
/// [`Engine::explain_with`], or [`Engine::query_batch_with`]. Session
/// definitions shadow engine-level views of the same name.
#[derive(Clone, Debug, Default)]
pub struct SessionViews {
    views: BTreeMap<String, Query>,
}

impl SessionViews {
    /// An empty set of session views.
    pub fn new() -> SessionViews {
        SessionViews::default()
    }

    /// The defined view names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.views.keys().map(String::as_str)
    }

    /// True when no views are defined.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

/// A queryable indexed document.
pub struct Engine {
    pub(crate) text: String,
    pub(crate) instance: Instance<SuffixWordIndex>,
    pub(crate) rig: Option<Rig>,
    pub(crate) views: BTreeMap<String, Query>,
    pub(crate) exec: ExecConfig,
    /// The document's position-range partition. Segment count defaults to
    /// [`seg::segment_count_for`] of the text size — a pure function of
    /// the document, never of the machine — and is execution-only state:
    /// the result-cache fingerprint is the expression structure, so the
    /// same query yields the same bytes at any segment count.
    pub(crate) corpus: Corpus,
    pub(crate) cache: Mutex<ResultCache>,
    /// Monotone edit epoch: 0 at load, +1 per applied mutation batch (see
    /// `Engine::apply_edits`). Lets clients and watchers correlate result
    /// sets with document versions.
    pub(crate) generation: u64,
    /// How pure-algebra expressions become plans: structural lowering as
    /// written, or cost-based rewriting over the verified rule set (the
    /// default). Semantics are identical either way — every rule shipped
    /// through the oracle-verification protocol — so this is a
    /// performance/debugging knob, never a correctness one.
    pub(crate) planner: PlannerMode,
    /// Per-name per-segment cardinalities the planner ranks plans with:
    /// seeded from the store manifest when the document is opened from
    /// disk, recomputed from the instance otherwise — and again after
    /// every applied edit batch, so live mutation keeps them honest.
    pub(crate) stats: Stats,
    /// Kernel cost coefficients for estimation and segmentation choice.
    pub(crate) cost_model: CostModel,
    /// Memoized rewrite-search outcomes, keyed by the fingerprint of the
    /// RIG-optimized expression (verified against the stored expression,
    /// like the result cache). Planning a query is pure in the engine's
    /// stats, so it is paid once per distinct expression, not once per
    /// evaluation — the plan-quality gate holds the cost-based planner
    /// to ~structural lowering speed, and this is what makes that true
    /// on cache-cold batches.
    pub(crate) plan_memo: Mutex<PlanMemo>,
}

/// The plan memo's shape: fingerprint → (the exact expression the entry
/// was planned for, and the (rewritten expression, applied rewrites)
/// outcome to replay).
type PlanMemo = HashMap<u64, (Expr, (Expr, Vec<AppliedRewrite>))>;

impl Engine {
    fn new(text: String, instance: Instance<SuffixWordIndex>, rig: Option<Rig>) -> Engine {
        let corpus =
            Corpus::from_instance(&instance, text.len(), seg::segment_count_for(text.len()));
        let stats = Stats::from_instance(&instance, &corpus);
        Engine {
            text,
            instance,
            rig,
            views: BTreeMap::new(),
            exec: ExecConfig::default(),
            corpus,
            cache: Mutex::new(ResultCache::new(RESULT_CACHE_CAPACITY)),
            generation: 0,
            planner: PlannerMode::default(),
            stats,
            cost_model: CostModel::default(),
            plan_memo: Mutex::new(HashMap::new()),
        }
    }

    /// The document's edit generation: 0 as loaded, incremented once per
    /// applied mutation batch.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Indexes an SGML-lite document (schema derived from its tags).
    pub fn from_sgml(text: &str) -> Result<Engine, EngineError> {
        let instance = parse_sgml(text).map_err(EngineError::Sgml)?;
        Ok(Engine::new(text.to_owned(), instance, None))
    }

    /// Indexes a toy-language source file (Figure 1 schema), attaching the
    /// Figure 1 RIG so chain queries get optimized automatically.
    pub fn from_source(text: &str) -> Result<Engine, EngineError> {
        let instance = parse_program(text).map_err(EngineError::Source)?;
        Ok(Engine::new(
            text.to_owned(),
            instance,
            Some(Rig::figure_1()),
        ))
    }

    /// Builds an engine from a document loaded by `tr-store` — the one
    /// loading path shared by the CLI and the server catalog. The store
    /// manifest's per-name per-segment counts, when present, seed the
    /// planner statistics directly (no re-scan of the region columns).
    pub fn from_stored(doc: tr_store::StoredDocument) -> Engine {
        let mut e = Engine::from_parts(doc.text, doc.instance, doc.rig);
        if let Some(m) = doc.manifest {
            e.stats = Stats::from_counts(m.counts, m.text_bytes);
        }
        e
    }

    /// Builds an engine from already-indexed parts (e.g. a persisted
    /// document loaded by `tr-store`). The instance's word index must
    /// cover `text`.
    pub fn from_parts(
        text: String,
        instance: Instance<SuffixWordIndex>,
        rig: Option<Rig>,
    ) -> Engine {
        if let Some(rig) = &rig {
            assert_eq!(rig.schema(), instance.schema(), "RIG schema must match");
        }
        Engine::new(text, instance, rig)
    }

    /// Overrides the execution settings used by [`Engine::query_batch`]
    /// (thread budget and kernel cutoff).
    pub fn with_exec_config(mut self, cfg: ExecConfig) -> Engine {
        self.exec = cfg;
        self
    }

    /// Overrides the number of position-range segments (see
    /// `tr_core::seg`). Results are byte-identical at any segment count;
    /// this is a tuning/testing knob, not a semantic one.
    pub fn with_segments(mut self, n: usize) -> Engine {
        self.corpus = Corpus::from_instance(&self.instance, self.text.len(), n);
        // Statistics follow the segment grid so per-segment counts stay
        // aligned with the corpus the planner is choosing kernels for —
        // and memoized plans ranked under the old stats are dropped.
        self.stats = Stats::from_instance(&self.instance, &self.corpus);
        self.plan_memo
            .get_mut()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
        self
    }

    /// The number of position-range segments queries execute over.
    pub fn segment_count(&self) -> usize {
        self.corpus.num_segments()
    }

    /// Overrides how expressions are planned ([`PlannerMode::CostBased`]
    /// by default). Structural mode reproduces the historical lower-as-
    /// written behavior; results are byte-identical either way.
    pub fn with_planner_mode(mut self, mode: PlannerMode) -> Engine {
        self.planner = mode;
        self.plan_memo
            .get_mut()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
        self
    }

    /// The active planner mode.
    pub fn planner_mode(&self) -> PlannerMode {
        self.planner
    }

    /// The planner's cardinality statistics for this document.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Replaces the planner statistics wholesale. Statistics only rank
    /// plans — every candidate is verified-equivalent — so results are
    /// byte-identical no matter how wrong the numbers are; only speed is
    /// at stake. This is the adversarial knob the "stats lie" tests turn.
    pub fn with_stats(mut self, stats: Stats) -> Engine {
        self.stats = stats;
        self.plan_memo
            .get_mut()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
        self
    }

    /// Attaches a RIG (the instance is *assumed* to satisfy it; use
    /// `tr_rig::check_rig` to verify).
    pub fn with_rig(mut self, rig: Rig) -> Engine {
        assert_eq!(
            rig.schema(),
            self.instance.schema(),
            "RIG schema must match"
        );
        self.rig = Some(rig);
        self
    }

    /// The indexed document text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance<SuffixWordIndex> {
        &self.instance
    }

    /// The schema (region names available to queries).
    pub fn schema(&self) -> &Schema {
        self.instance.schema()
    }

    /// The attached RIG, if any.
    pub fn rig(&self) -> Option<&Rig> {
        self.rig.as_ref()
    }

    /// Parses, plans, and runs a query.
    pub fn query(&self, q: &str) -> Result<RegionSet, EngineError> {
        self.query_with(&SessionViews::new(), q)
    }

    /// [`Engine::query`], resolving view names against `session` as well
    /// as the engine's own views (session definitions win).
    pub fn query_with(&self, session: &SessionViews, q: &str) -> Result<RegionSet, EngineError> {
        let _span = tr_obs::span("engine.query");
        let metrics = EngineMetrics::get();
        metrics.queries.inc();
        let ast = parse_with_views(q, self.schema(), &self.merged_views(session))?;
        // Pure-algebra queries go through the planner (RIG chain
        // optimization) and the result cache; extended queries evaluate
        // the AST directly.
        match ast.to_expr() {
            Some(e) => Ok(self.eval_algebra(self.planned(e))),
            None => {
                metrics.extended.inc();
                Ok(ast.eval(&self.instance))
            }
        }
    }

    /// The views visible to a session: the engine's own, with session
    /// definitions layered on top. Borrows whichever side is empty so
    /// the common cases (no views at all, or server sessions over a
    /// view-less shared engine) allocate nothing.
    fn merged_views<'a>(&'a self, session: &'a SessionViews) -> Cow<'a, BTreeMap<String, Query>> {
        if session.views.is_empty() {
            Cow::Borrowed(&self.views)
        } else if self.views.is_empty() {
            Cow::Borrowed(&session.views)
        } else {
            let mut merged = self.views.clone();
            merged.extend(session.views.iter().map(|(k, v)| (k.clone(), v.clone())));
            Cow::Owned(merged)
        }
    }

    /// Applies RIG chain optimization when a RIG is attached, then the
    /// cost-based rewrite search (unless in structural mode).
    fn planned(&self, e: Expr) -> Expr {
        self.planned_full(e).0
    }

    /// [`Engine::planned`], also returning the accepted rewrite steps
    /// (for `explain`). Empty in structural mode.
    fn planned_full(&self, e: Expr) -> (Expr, Vec<AppliedRewrite>) {
        let e = match &self.rig {
            Some(rig) => tr_rig::optimize_expr(&e, rig),
            None => e,
        };
        match self.planner {
            PlannerMode::Structural => (e, Vec::new()),
            PlannerMode::CostBased => {
                let fp = expr_fingerprint(&e);
                {
                    let memo = self.lock_plan_memo();
                    if let Some((key, out)) = memo.get(&fp) {
                        if *key == e {
                            return out.clone();
                        }
                    }
                }
                let out = tr_core::optimize(&e, &self.stats, &self.cost_model);
                let mut memo = self.lock_plan_memo();
                if memo.len() >= PLAN_MEMO_CAPACITY {
                    memo.clear();
                }
                memo.insert(fp, (e, out.clone()));
                out
            }
        }
    }

    /// Runs a lowered plan on the executor, letting the cost model pick
    /// per-node segmentation in cost-based mode (structural mode keeps
    /// the historical segment-everything behavior). Either choice yields
    /// byte-identical results; only the kernel family differs.
    fn run_plan(&self, plan: &Plan) -> Executed {
        match self.planner {
            PlannerMode::Structural => {
                execute_segmented(plan, &self.instance, &self.exec, Some(&self.corpus))
            }
            PlannerMode::CostBased => {
                let est = estimate(plan, &self.stats, &self.cost_model);
                let choices =
                    choose_segmentation(plan, &est, self.corpus.num_segments(), &self.cost_model);
                execute_with_choices(
                    plan,
                    &self.instance,
                    &self.exec,
                    Some(&self.corpus),
                    Some(&choices),
                )
            }
        }
    }

    /// The partition set this engine's plans evaluate against: a single
    /// local partition covering the whole document. The seam the
    /// distributed serving tier plugs into — a router substitutes remote
    /// shard partitions behind the same [`PartitionExec`] interface and
    /// gets byte-identical results (see `tr_core::partition`).
    pub fn partitions(&self) -> PartitionSet<'_> {
        PartitionSet::single(Box::new(EnginePartition {
            engine: self,
            window: Window::ALL,
        }))
    }

    /// Evaluates a pure-algebra expression through the result cache.
    fn eval_algebra(&self, e: Expr) -> RegionSet {
        let metrics = EngineMetrics::get();
        let fp = expr_fingerprint(&e);
        if let Some(hit) = self.lock_cache().get(fp, &e) {
            // The hit is a zero-copy handle clone of the cached columnar
            // buffer; record what the old deep copy would have moved.
            metrics.cache_hits.inc();
            metrics.cache_bytes_avoided.add(region_bytes(&hit));
            return hit;
        }
        metrics.cache_misses.inc();
        // Single queries run against the engine's partition set — one
        // whole-document local partition, whose executor is the same
        // segmented path batches use, so the oracle property
        // (byte-identical results at any segment count or partition
        // layout) covers every evaluation path.
        let mut plan = Plan::new();
        let root = plan.lower(&e);
        let query = PartitionQuery {
            plan: Some((&plan, root)),
            text: "",
        };
        let out = self
            .partitions()
            .execute(&query)
            .expect("local partitions are infallible");
        self.lock_cache().insert(fp, e, out.clone());
        out
    }

    /// Evaluates `q` restricted to the left-endpoint window `[lo, hi)`
    /// (`hi == Pos::MAX` ⇒ unbounded) — the backend half of distributed
    /// scatter-gather. The result equals the window restriction of
    /// [`Engine::query_with`]'s result, so concatenating shard results
    /// over any ordered tiling of the position space reproduces the
    /// single-node answer byte-for-byte. Bypasses the result cache
    /// (entries are keyed by expression, not window).
    pub fn query_shard(
        &self,
        session: &SessionViews,
        q: &str,
        lo: Pos,
        hi: Pos,
    ) -> Result<RegionSet, EngineError> {
        let window = Window::new(lo, hi);
        let ast = parse_with_views(q, self.schema(), &self.merged_views(session))?;
        match ast.to_expr() {
            Some(e) => {
                let e = self.planned(e);
                let mut plan = Plan::new();
                let root = plan.lower(&e);
                let query = PartitionQuery {
                    plan: Some((&plan, root)),
                    text: q,
                };
                let part = EnginePartition {
                    engine: self,
                    window,
                };
                Ok(part
                    .execute(&query)
                    .expect("local partitions are infallible"))
            }
            // Extended operators evaluate whole, then restrict: shard
            // semantics is output restriction, and the extended AST
            // evaluator has no windowed form.
            None => Ok(window.restrict(&ast.eval(&self.instance))),
        }
    }

    /// Writes the document — text, index, manifest, and RIG — to `path`
    /// as a v3 `.trx` store, atomically: bytes land in a temporary file
    /// in the destination directory first, then one `rename` moves them
    /// into place, so a concurrent reader (or a crash) sees either the
    /// old store or the new one, never a torn write. This is how a live
    /// document's successor generation gets persisted (`save` verb).
    pub fn save_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => std::path::PathBuf::from("."),
        };
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("doc.trx");
        let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
        tr_store::save_document(&tmp, &self.text, &self.instance, self.rig.as_ref())?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, ResultCache> {
        self.cache
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn lock_plan_memo(&self) -> std::sync::MutexGuard<'_, PlanMemo> {
        self.plan_memo
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Runs a batch of queries as one hash-consed plan: sub-expressions
    /// shared within or across queries are evaluated exactly once, plan
    /// nodes run on the parallel wave executor, and results land in the
    /// engine's bounded cache (so re-running a batch is pure lookups).
    ///
    /// Returns one result per query, in order. Parsing is all-or-nothing:
    /// any parse error fails the whole batch before anything runs.
    pub fn query_batch(&self, queries: &[&str]) -> Result<Vec<RegionSet>, EngineError> {
        Ok(self.query_batch_with_stats(queries)?.0)
    }

    /// [`Engine::query_batch`], also reporting how much work sharing and
    /// caching saved.
    pub fn query_batch_with_stats(
        &self,
        queries: &[&str],
    ) -> Result<(Vec<RegionSet>, BatchStats), EngineError> {
        self.query_batch_with(&SessionViews::new(), queries)
    }

    /// [`Engine::query_batch_with_stats`], resolving view names against
    /// `session` as well as the engine's own views.
    pub fn query_batch_with(
        &self,
        session: &SessionViews,
        queries: &[&str],
    ) -> Result<(Vec<RegionSet>, BatchStats), EngineError> {
        let views = self.merged_views(session);
        let _batch = tr_obs::span("engine.batch");
        let metrics = EngineMetrics::get();
        metrics.batches.inc();
        metrics.queries.add(queries.len() as u64);
        let mut stats = BatchStats {
            queries: queries.len(),
            ..BatchStats::default()
        };

        // Phase 1 — parse (all-or-nothing: any error fails the batch
        // before anything runs).
        let asts: Vec<Query> = {
            let _span = tr_obs::span("engine.parse");
            queries
                .iter()
                .map(|q| parse_with_views(q, self.schema(), &views))
                .collect::<Result<_, _>>()?
        };

        // Phase 2 — plan: compile to algebra, probe the result cache,
        // lower every miss into one shared hash-consed plan.
        let mut results: Vec<Option<RegionSet>> = (0..queries.len()).map(|_| None).collect();
        let mut plan = Plan::new();
        // (query index, optimized expr, fingerprint, plan root)
        let mut misses: Vec<(usize, Expr, u64, tr_core::NodeId)> = Vec::new();
        // Extended operators live outside the algebra; they bypass the
        // plan (and the cache) unchanged.
        let mut extended: Vec<(usize, Query)> = Vec::new();
        {
            let _span = tr_obs::span("engine.plan");
            let cache = self.lock_cache();
            for (i, ast) in asts.into_iter().enumerate() {
                match ast.to_expr() {
                    Some(e) => {
                        let e = self.planned(e);
                        let fp = expr_fingerprint(&e);
                        if let Some(hit) = cache.get(fp, &e) {
                            metrics.cache_hits.inc();
                            metrics.cache_bytes_avoided.add(region_bytes(&hit));
                            stats.cache_hits += 1;
                            results[i] = Some(hit);
                        } else {
                            metrics.cache_misses.inc();
                            let root = plan.lower(&e);
                            misses.push((i, e, fp, root));
                        }
                    }
                    None => extended.push((i, ast)),
                }
            }
        }
        stats.distinct_nodes = plan.len();

        // Phase 3 — extended queries evaluate their ASTs directly.
        if !extended.is_empty() {
            let _span = tr_obs::span("engine.extended");
            metrics.extended.add(extended.len() as u64);
            for (i, ast) in extended {
                results[i] = Some(ast.eval(&self.instance));
            }
        }

        // Phase 4 — execute the shared plan; Phase 5 — materialize
        // results into the cache and the output slots.
        if !plan.is_empty() {
            let executed = {
                let _span = tr_obs::span("engine.execute");
                self.run_plan(&plan)
            };
            let exec_stats = executed.stats();
            stats.nodes_evaluated = exec_stats.nodes_evaluated;
            stats.threads = exec_stats.threads;
            metrics
                .nodes_executed
                .add(exec_stats.nodes_evaluated as u64);
            let _span = tr_obs::span("engine.materialize");
            let mut cache = self.lock_cache();
            for (i, e, fp, root) in misses {
                let v = executed.result(root).clone();
                cache.insert(fp, e, v.clone());
                results[i] = Some(v);
            }
        }
        let results = results
            .into_iter()
            .map(|r| r.expect("every query answered"))
            .collect();
        Ok((results, stats))
    }

    /// Drops every cached query result.
    pub fn clear_result_cache(&self) {
        self.lock_cache().clear();
    }

    /// Explains how a query would run: the compiled algebra expression and
    /// its RIG-optimized form (or a note that it uses extended operators).
    pub fn explain(&self, q: &str) -> Result<String, EngineError> {
        self.explain_with(&SessionViews::new(), q)
    }

    /// [`Engine::explain`], resolving view names against `session` as
    /// well as the engine's own views.
    pub fn explain_with(&self, session: &SessionViews, q: &str) -> Result<String, EngineError> {
        let ast = parse_with_views(q, self.schema(), &self.merged_views(session))?;
        let schema = self.schema();
        Ok(match ast.to_expr() {
            Some(e) => {
                let mut out = format!("algebra: {}", e.display(schema));
                let rigged = match &self.rig {
                    Some(rig) => {
                        let opt = tr_rig::optimize_expr(&e, rig);
                        if opt != e {
                            out.push_str(&format!(
                                "\noptimized (w.r.t. RIG): {} [{} → {} ops]",
                                opt.display(schema),
                                e.num_ops(),
                                opt.num_ops()
                            ));
                        } else {
                            out.push_str("\noptimized (w.r.t. RIG): unchanged");
                        }
                        opt
                    }
                    None => e,
                };
                let (planned, applied) = match self.planner {
                    PlannerMode::Structural => (rigged, Vec::new()),
                    PlannerMode::CostBased => {
                        tr_core::optimize(&rigged, &self.stats, &self.cost_model)
                    }
                };
                if self.planner == PlannerMode::CostBased {
                    if applied.is_empty() {
                        out.push_str("\nrewritten (cost-based): unchanged");
                    } else {
                        let rules: Vec<String> = applied
                            .iter()
                            .map(|r| {
                                if r.forward {
                                    r.rule.to_string()
                                } else {
                                    format!("{} (rev)", r.rule)
                                }
                            })
                            .collect();
                        out.push_str(&format!(
                            "\nrewritten (cost-based): {} [rules: {}]",
                            planned.display(schema),
                            rules.join(", ")
                        ));
                    }
                }
                let mut plan = Plan::new();
                let root = plan.lower(&planned);
                let est = estimate(&plan, &self.stats, &self.cost_model);
                let choices =
                    choose_segmentation(&plan, &est, self.corpus.num_segments(), &self.cost_model);
                let segmented = choices.iter().filter(|&&c| c).count();
                out.push_str(&format!(
                    "\nplan: {} nodes, est cost ~{} ns, segmented {}/{}",
                    plan.len(),
                    est.total_ns.round() as u64,
                    segmented,
                    plan.len()
                ));
                // The actual cardinality runs the query — through the
                // result cache, so an explain both reflects and warms the
                // engine's real execution path.
                let est_card = est.card(root);
                let actual = self.eval_algebra(planned);
                out.push_str(&format!(
                    "\ncardinality: est ~{est_card}, actual {}",
                    actual.len()
                ));
                out
            }
            None => format!(
                "extended query (outside the region algebra — Theorems 5.1/5.3): {}",
                ast.display(schema)
            ),
        })
    }

    /// Parses a query without running it (for tooling).
    pub fn parse_query(&self, q: &str) -> Result<Query, EngineError> {
        Ok(parse_with_views(q, self.schema(), &self.views)?)
    }

    /// Defines (or replaces) a named view: a query that later queries can
    /// reference like a region name. Views may reference earlier views
    /// (expanded at definition time, so no cycles can form). A view may
    /// not shadow a schema name.
    pub fn define_view(&mut self, name: &str, definition: &str) -> Result<(), EngineError> {
        self.check_view_name(name)?;
        let q = parse_with_views(definition, self.schema(), &self.views)?;
        self.views.insert(name.to_owned(), q);
        Ok(())
    }

    /// Defines (or replaces) a view in `session` without touching the
    /// shared engine — the server's per-connection `define-view`. The
    /// definition may reference earlier session or engine views
    /// (expanded at definition time, so no cycles can form).
    pub fn define_session_view(
        &self,
        session: &mut SessionViews,
        name: &str,
        definition: &str,
    ) -> Result<(), EngineError> {
        self.check_view_name(name)?;
        let q = parse_with_views(definition, self.schema(), &self.merged_views(session))?;
        session.views.insert(name.to_owned(), q);
        Ok(())
    }

    fn check_view_name(&self, name: &str) -> Result<(), EngineError> {
        if self.schema().id(name).is_some() {
            return Err(EngineError::Query(ParseError {
                message: format!("view {name:?} would shadow a region name"),
                at: 0,
            }));
        }
        if !is_identifier(name) {
            return Err(EngineError::Query(ParseError {
                message: format!("invalid view name {name:?}"),
                at: 0,
            }));
        }
        Ok(())
    }

    /// The names of the defined views, sorted.
    pub fn views(&self) -> impl Iterator<Item = &str> {
        self.views.keys().map(String::as_str)
    }

    /// The compiled algebra expression for a pure-algebra query.
    pub fn compile(&self, q: &str) -> Result<Option<Expr>, EngineError> {
        Ok(self.parse_query(q)?.to_expr())
    }

    /// The document text covered by a region, clamped to the text's
    /// bounds — total even for regions past the end or an empty document
    /// (where every snippet is `""`).
    pub fn snippet(&self, r: Region) -> &str {
        let end = (r.right() as usize + 1).min(self.text.len());
        let start = (r.left() as usize).min(end);
        &self.text[start..end]
    }
}

fn is_identifier(name: &str) -> bool {
    !name.is_empty() && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// The engine's own side of the partition seam: a [`PartitionExec`]
/// over the in-memory instance. A whole-document window runs the
/// engine's planned single-node path unchanged (segmented kernels,
/// cost-based per-node choices) — the `PartitionExec` indirection adds
/// one virtual call, nothing else, which is what keeps the single-node
/// perf gates honest. A restricted window runs the range executor, the
/// same code a remote shard's backend runs for `shard-query`.
struct EnginePartition<'a> {
    engine: &'a Engine,
    window: Window,
}

impl PartitionExec for EnginePartition<'_> {
    fn label(&self) -> &str {
        "local"
    }

    fn window(&self) -> Window {
        self.window
    }

    fn execute(&self, query: &PartitionQuery<'_>) -> Result<RegionSet, PartitionError> {
        let (plan, root) = query.plan.ok_or_else(|| PartitionError {
            partition: "local".to_owned(),
            message: "local partitions need a lowered plan".to_owned(),
        })?;
        if self.window.is_all() {
            let executed = self.engine.run_plan(plan);
            EngineMetrics::get()
                .nodes_executed
                .add(executed.stats().nodes_evaluated as u64);
            Ok(executed.result(root).clone())
        } else {
            Ok(execute_range(
                plan,
                root,
                &self.engine.instance,
                &self.engine.exec,
                self.window,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_markup::ProgramSpec;

    fn sgml_engine() -> Engine {
        Engine::from_sgml("<doc><sec>alpha beta</sec><sec>gamma <note>beta</note></sec></doc>")
            .unwrap()
    }

    #[test]
    fn sgml_end_to_end() {
        let e = sgml_engine();
        let out = e.query(r#"sec matching "beta""#).unwrap();
        assert_eq!(out.len(), 2, "both sections contain beta");
        let out = e
            .query(r#"sec matching "beta" minus (sec containing note)"#)
            .unwrap();
        assert_eq!(out.len(), 1, "only the first has beta outside a note");
        assert!(e.snippet(out.iter().next().unwrap()).contains("alpha"));
    }

    #[test]
    fn source_engine_runs_paper_queries() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        let spec = ProgramSpec::random(&mut rng, 10, 3, 2);
        let text = spec.render();
        let e = Engine::from_source(&text).unwrap();
        // The paper's e1 and e2 must agree (the instance satisfies Fig. 1).
        let e1 = e
            .query("Name within Proc_header within Proc within Program")
            .unwrap();
        let e2 = e.query("Name within Proc_header within Program").unwrap();
        assert_eq!(e1, e2);
        assert_eq!(e1.len(), spec.num_procs());
    }

    #[test]
    fn explain_shows_rig_optimization() {
        let text = "program a; proc b; begin end; begin end.";
        let e = Engine::from_source(text).unwrap();
        let plan = e
            .explain("Name within Proc_header within Proc within Program")
            .unwrap();
        assert!(plan.contains("optimized"), "{plan}");
        assert!(
            plan.contains("3 → 2 ops") || plan.contains("→ 2 ops"),
            "{plan}"
        );
        let plan = e.explain("Proc directly containing Proc_body").unwrap();
        assert!(plan.contains("extended query"), "{plan}");
    }

    #[test]
    fn extended_queries_work_end_to_end() {
        // Nested procs: "find the procedures that define variable x"
        // (Section 5.1) — ⊃ over-selects, ⊃_d is exact.
        let text = "program a; proc outer; proc inner; var x; begin end; begin end; begin end.";
        let e = Engine::from_source(text).unwrap();
        let loose = e
            .query(r#"Proc containing (Proc_body containing (Var matching "x"))"#)
            .unwrap();
        assert_eq!(loose.len(), 2, "the outer proc is selected spuriously");
        let tight = e
            .query(r#"Proc directly containing (Proc_body directly containing (Var matching "x"))"#)
            .unwrap();
        assert_eq!(tight.len(), 1);
        assert!(e
            .snippet(tight.iter().next().unwrap())
            .starts_with("proc inner"));
    }

    #[test]
    fn bi_query_end_to_end() {
        // Section 5.2: procedures where the definition of x precedes y.
        // Both procs declare y *before* x, so no proc qualifies — but p's x
        // does precede q's y, which is exactly the cross-procedure trap the
        // naive algebra formulation falls into.
        let text = "program a; proc p; var y; var x; begin end; proc q; var y; var x; begin end; begin end.";
        let e = Engine::from_source(text).unwrap();
        let out = e
            .query(r#"bi(Proc, Var matching "x", Var matching "y")"#)
            .unwrap();
        assert!(out.is_empty(), "no proc has x before y within itself");
        let naive = e
            .query(r#"Proc containing ((Var matching "x") before (Var matching "y"))"#)
            .unwrap();
        assert_eq!(naive.len(), 1, "p selected spuriously via q's y");
        assert!(e
            .snippet(naive.iter().next().unwrap())
            .starts_with("proc p"));
        // And a positive case: x before y inside the same proc.
        let text2 = "program a; proc p; var x; var y; begin end; begin end.";
        let e2 = Engine::from_source(text2).unwrap();
        let out2 = e2
            .query(r#"bi(Proc, Var matching "x", Var matching "y")"#)
            .unwrap();
        assert_eq!(out2.len(), 1);
    }

    #[test]
    fn bare_patterns_query_match_points() {
        let e = sgml_engine();
        // The occurrences of "beta" as regions (PAT match point sets)…
        let points = e.query(r#""beta""#).unwrap();
        assert_eq!(points.len(), 2);
        for r in points.iter() {
            assert_eq!(e.snippet(r), "beta");
        }
        // …compose with structural operators.
        assert_eq!(e.query(r#""beta" within note"#).unwrap().len(), 1);
        assert_eq!(
            e.query(r#"("beta" within sec) minus ("beta" within note)"#)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn views_expand_like_names() {
        let mut e = sgml_engine();
        e.define_view("beta_secs", r#"sec matching "beta""#)
            .unwrap();
        assert_eq!(e.query("beta_secs").unwrap().len(), 2);
        assert_eq!(
            e.query("beta_secs minus (sec containing note)")
                .unwrap()
                .len(),
            1
        );
        // Views can build on views.
        e.define_view("clean", "beta_secs minus (sec containing note)")
            .unwrap();
        assert_eq!(e.query("clean").unwrap().len(), 1);
        assert_eq!(e.views().collect::<Vec<_>>(), vec!["beta_secs", "clean"]);
        // Shadowing a schema name is rejected.
        assert!(e.define_view("sec", "note").is_err());
        assert!(e.define_view("bad name", "note").is_err());
        // Unknown names still error.
        assert!(e.query("nonexistent_view").is_err());
    }

    #[test]
    fn batch_shares_work_and_matches_single_queries() {
        let e = sgml_engine();
        // Eight queries with heavy sub-expression overlap ("sec matching
        // beta" and "sec containing note" recur throughout).
        let queries: Vec<&str> = vec![
            r#"sec matching "beta""#,
            r#"sec matching "beta" minus (sec containing note)"#,
            "sec containing note",
            r#"(sec matching "beta") intersect (sec containing note)"#,
            "note within sec",
            r#"sec matching "beta" union (note within sec)"#,
            "doc containing sec",
            r#"(sec matching "beta") minus (sec containing note)"#,
        ];
        let (batch, stats) = e.query_batch_with_stats(&queries).unwrap();
        assert_eq!(stats.queries, 8);
        assert_eq!(stats.cache_hits, 0);
        // Sharing is real: each distinct node evaluated exactly once, and
        // fewer nodes than the sum of the individual query trees.
        assert_eq!(stats.nodes_evaluated, stats.distinct_nodes);
        let tree_total: usize = queries
            .iter()
            .map(|q| {
                let ex = e.compile(q).unwrap().unwrap();
                ex.num_ops() + ex.names().len() + 1 // ops + name leaves + selects, roughly
            })
            .sum();
        assert!(
            stats.distinct_nodes < tree_total,
            "{} distinct vs {} tree nodes",
            stats.distinct_nodes,
            tree_total
        );
        // Results agree with the one-at-a-time path on a fresh engine.
        let fresh = sgml_engine();
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(got, &fresh.query(q).unwrap(), "query {q}");
        }
        // Re-running the identical batch is answered from the cache.
        let (again, stats2) = e.query_batch_with_stats(&queries).unwrap();
        assert_eq!(again, batch, "batch results are deterministic");
        assert_eq!(stats2.cache_hits, 8);
        assert_eq!(stats2.distinct_nodes, 0);
        e.clear_result_cache();
        let (third, stats3) = e.query_batch_with_stats(&queries).unwrap();
        assert_eq!(third, batch);
        assert_eq!(stats3.cache_hits, 0);
    }

    #[test]
    fn batch_handles_extended_queries_and_errors() {
        let text = "program a; proc outer; proc inner; var x; begin end; begin end; begin end.";
        let e = Engine::from_source(text).unwrap();
        let queries: Vec<&str> = vec![
            r#"Proc containing (Var matching "x")"#,
            // Extended operator: bypasses the plan, still answered in-order.
            r#"Proc directly containing (Proc_body directly containing (Var matching "x"))"#,
            "Name within Proc_header within Program",
        ];
        let batch = e.query_batch(&queries).unwrap();
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(got, &e.query(q).unwrap(), "query {q}");
        }
        // A parse error anywhere fails the whole batch.
        assert!(e.query_batch(&["Proc", "nope within doc"]).is_err());
    }

    #[test]
    fn session_views_shadow_without_touching_the_engine() {
        let e = sgml_engine();
        let mut alice = SessionViews::new();
        let mut bob = SessionViews::new();
        e.define_session_view(&mut alice, "picks", r#"sec matching "beta""#)
            .unwrap();
        e.define_session_view(&mut bob, "picks", "sec containing note")
            .unwrap();
        // Same name, different definitions, independent sessions.
        assert_eq!(e.query_with(&alice, "picks").unwrap().len(), 2);
        assert_eq!(e.query_with(&bob, "picks").unwrap().len(), 1);
        // The shared engine itself never learned the name.
        assert!(e.query("picks").is_err());
        assert!(e.views().next().is_none());
        // Session views layer: later definitions may use earlier ones.
        e.define_session_view(&mut alice, "clean", "picks minus (sec containing note)")
            .unwrap();
        assert_eq!(e.query_with(&alice, "clean").unwrap().len(), 1);
        assert_eq!(alice.names().collect::<Vec<_>>(), vec!["clean", "picks"]);
        // Batch and explain resolve session views too.
        let (batch, _) = e.query_batch_with(&alice, &["picks", "clean"]).unwrap();
        assert_eq!(batch[0], e.query_with(&alice, "picks").unwrap());
        assert!(e.explain_with(&alice, "clean").unwrap().contains("algebra"));
        // Validation matches engine-level views.
        assert!(e.define_session_view(&mut alice, "sec", "note").is_err());
        assert!(e
            .define_session_view(&mut alice, "bad name", "note")
            .is_err());
    }

    #[test]
    fn from_stored_round_trips_through_the_store() {
        let text = "<doc><sec>alpha beta</sec></doc>";
        let direct = Engine::from_sgml(text).unwrap();
        let path =
            std::env::temp_dir().join(format!("tr_query_from_stored_{}.trx", std::process::id()));
        tr_store::save_document(&path, direct.text(), direct.instance(), direct.rig()).unwrap();
        let loaded = Engine::from_stored(tr_store::load_document(&path).unwrap());
        std::fs::remove_file(&path).ok();
        let q = r#"sec matching "beta""#;
        assert_eq!(loaded.query(q).unwrap(), direct.query(q).unwrap());
        assert_eq!(loaded.text(), direct.text());
    }

    #[test]
    fn single_query_cache_is_correct_across_views() {
        let mut e = sgml_engine();
        let before = e.query(r#"sec matching "beta""#).unwrap();
        // Cached re-run.
        assert_eq!(e.query(r#"sec matching "beta""#).unwrap(), before);
        // Views expand to expressions, so view-based queries share the
        // cache by structure, not by query text.
        e.define_view("beta_secs", r#"sec matching "beta""#)
            .unwrap();
        assert_eq!(e.query("beta_secs").unwrap(), before);
    }

    #[test]
    fn empty_document_is_hardened_end_to_end() {
        // An empty document has no names, no regions, and no text; every
        // entry point must stay total. `snippet` used to compute
        // `text.len() - 1` and underflow here.
        let e = Engine::from_sgml("").unwrap();
        assert_eq!(e.text(), "");
        assert_eq!(e.segment_count(), 1);
        assert_eq!(e.snippet(tr_core::region(0, 0)), "");
        assert_eq!(e.snippet(tr_core::region(5, 9)), "", "past-the-end clamps");
        assert!(e.query(r#""anything""#).unwrap().is_empty());
        let (batch, stats) = e
            .query_batch_with_stats(&[r#""x""#, r#""x" before "y""#])
            .unwrap();
        assert!(batch.iter().all(RegionSet::is_empty));
        assert_eq!(stats.queries, 2);
        // Zero-length regions and clamping on a non-empty document.
        let e = sgml_engine();
        let n = e.text().len() as u32;
        assert_eq!(e.snippet(tr_core::region(0, 0)), "<");
        assert_eq!(e.snippet(tr_core::region(n, n)), "", "start past the end");
        assert_eq!(e.snippet(tr_core::region(n - 1, n + 7)), ">", "end clamps");
    }

    #[test]
    fn results_are_byte_identical_across_segment_counts() {
        let text = "<doc><sec>alpha beta</sec><sec>gamma <note>beta</note></sec></doc>";
        let queries = [
            r#"sec matching "beta""#,
            r#"sec matching "beta" minus (sec containing note)"#,
            "note within sec",
            r#""beta" within sec"#,
        ];
        let baseline = Engine::from_sgml(text).unwrap().with_segments(1);
        for n in [2usize, 3, 7, 16] {
            let seg = Engine::from_sgml(text).unwrap().with_segments(n);
            assert_eq!(seg.segment_count(), n);
            for q in queries {
                let a = baseline.query(q).unwrap();
                let b = seg.query(q).unwrap();
                assert_eq!(a, b, "query {q} at {n} segments");
                assert_eq!(a.lefts(), b.lefts());
                assert_eq!(a.rights(), b.rights());
            }
        }
    }

    #[test]
    fn explain_reports_cost_based_plan_and_cardinalities() {
        let e = sgml_engine();
        // A fusible shape: (sec ⊃ note) ∩ (sec ⊃ doc) — the cost-based
        // rewrite collapses the shared-filter intersection.
        let q = "(sec containing note) intersect (sec containing doc)";
        let plan = e.explain(q).unwrap();
        assert!(plan.contains("rewritten (cost-based):"), "{plan}");
        assert!(plan.contains("rules:"), "{plan}");
        assert!(plan.contains("cont-fuse"), "{plan}");
        assert!(plan.contains("\nplan: "), "{plan}");
        assert!(plan.contains("est cost ~"), "{plan}");
        assert!(plan.contains("segmented "), "{plan}");
        // Estimated and actual cardinalities are both reported, and the
        // actual one is the real answer.
        let actual = e.query(q).unwrap().len();
        assert!(plan.contains("cardinality: est ~"), "{plan}");
        assert!(plan.contains(&format!("actual {actual}")), "{plan}");
        // A trivial query reports an unchanged rewrite but still a plan.
        let plan = e.explain("sec").unwrap();
        assert!(plan.contains("rewritten (cost-based): unchanged"), "{plan}");
        assert!(plan.contains("cardinality: est ~"), "{plan}");
    }

    #[test]
    fn cost_based_and_structural_modes_agree() {
        let text = "<doc><sec>alpha beta</sec><sec>gamma <note>beta</note></sec></doc>";
        let queries = [
            r#"sec matching "beta""#,
            "(sec containing note) intersect (sec containing doc)",
            r#"(sec matching "beta") union (note within sec)"#,
            "sec minus (sec minus (sec containing note))",
        ];
        let cost = Engine::from_sgml(text).unwrap();
        let structural = Engine::from_sgml(text)
            .unwrap()
            .with_planner_mode(PlannerMode::Structural);
        assert_eq!(cost.planner_mode(), PlannerMode::CostBased);
        assert_eq!(structural.planner_mode(), PlannerMode::Structural);
        for q in queries {
            assert_eq!(
                cost.query(q).unwrap(),
                structural.query(q).unwrap(),
                "query {q} must be planner-mode invariant"
            );
        }
        // Structural explains carry no cost-rewrite line.
        let plan = structural.explain(queries[1]).unwrap();
        assert!(!plan.contains("rewritten (cost-based)"), "{plan}");
        assert!(plan.contains("cardinality:"), "{plan}");
    }

    #[test]
    fn stats_seed_from_manifest_and_follow_edits() {
        let e = sgml_engine();
        let sec = e.schema().expect_id("sec");
        assert_eq!(e.stats().name_card(sec), 2);
        // Round-trip through the store: manifest counts seed the stats.
        let path =
            std::env::temp_dir().join(format!("tr_query_stats_seed_{}.trx", std::process::id()));
        tr_store::save_document(&path, e.text(), e.instance(), e.rig()).unwrap();
        let loaded = Engine::from_stored(tr_store::load_document(&path).unwrap());
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.stats().name_card(sec), 2);
        assert_eq!(loaded.stats().text_bytes(), e.text().len() as u64);
        // Live mutation recomputes: adding a region bumps the count.
        let hole = e.text().find("alpha").unwrap() as u32;
        let (e2, _) = e
            .apply_edits(&[tr_core::mutate::Edit::AddRegion {
                name: "sec".into(),
                region: tr_core::region(hole, hole + 4),
            }])
            .unwrap();
        assert_eq!(e2.stats().name_card(sec), 3);
        assert_eq!(e.stats().name_card(sec), 2, "predecessor untouched");
    }

    #[test]
    fn shard_queries_tile_to_the_single_node_answer() {
        let e = sgml_engine();
        let session = SessionViews::new();
        let len = e.text().len();
        let queries = [
            r#"sec matching "beta""#,
            r#"sec matching "beta" minus (sec containing note)"#,
            "note within sec",
            "doc containing sec",
            // Extended operator: whole-then-restrict path.
            "sec directly containing note",
        ];
        for q in queries {
            let full = e.query(q).unwrap();
            for shards in [1usize, 2, 3, 5] {
                let bounds = tr_core::seg::segment_bounds(len, shards);
                let parts: Vec<RegionSet> = (0..shards)
                    .map(|i| {
                        let hi = if i + 1 == shards {
                            tr_core::Pos::MAX
                        } else {
                            bounds[i + 1]
                        };
                        e.query_shard(&session, q, bounds[i], hi).unwrap()
                    })
                    .collect();
                assert_eq!(
                    RegionSet::concat(&parts),
                    full,
                    "query {q} over {shards} shards"
                );
            }
        }
        // A shard query's result is the window restriction of the whole.
        let whole = e.query(queries[0]).unwrap();
        let shard = e.query_shard(&session, queries[0], 0, 10).unwrap();
        assert!(shard.len() <= whole.len());
        assert!(shard.iter().all(|r| r.left() < 10));
        // Errors surface like ordinary queries.
        assert!(e
            .query_shard(&session, "nope", 0, tr_core::Pos::MAX)
            .is_err());
    }

    #[test]
    fn save_to_writes_an_atomic_reloadable_store() {
        let e = sgml_engine();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tr_query_save_to_{}.trx", std::process::id()));
        e.save_to(&path).unwrap();
        // No temp file survives a successful save.
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|f| f.ok())
            .filter(|f| {
                let n = f.file_name();
                let n = n.to_string_lossy().into_owned();
                n.contains("tr_query_save_to") && n.contains(".tmp")
            })
            .count();
        assert_eq!(leftovers, 0, "temp files are renamed or removed");
        let loaded = Engine::from_stored(tr_store::load_document(&path).unwrap());
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.text(), e.text());
        let q = r#"sec matching "beta""#;
        assert_eq!(loaded.query(q).unwrap(), e.query(q).unwrap());
    }

    #[test]
    fn query_errors_are_reported() {
        let e = sgml_engine();
        assert!(matches!(
            e.query("nope within doc"),
            Err(EngineError::Query(_))
        ));
        assert!(Engine::from_sgml("<a><b></a>").is_err());
        assert!(Engine::from_source("not a program").is_err());
    }
}
