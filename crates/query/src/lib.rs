//! # tr-query — the user-facing query layer
//!
//! A small PAT-flavoured query language over indexed documents, tying the
//! whole workspace together: parse a document (`tr-markup`), index its
//! text (`tr-text`), parse a query ([`parse()`]), plan it (RIG chain
//! optimization from `tr-rig`), and evaluate it (`tr-core` /`tr-ext`).
//!
//! ```
//! use tr_query::Engine;
//!
//! let doc = "<doc><sec>alpha</sec><sec>beta <note>alpha</note></sec></doc>";
//! let engine = Engine::from_sgml(doc).unwrap();
//! let hits = engine.query(r#"sec matching "alpha""#).unwrap();
//! assert_eq!(hits.len(), 2);
//! let tight = engine.query(r#"sec matching "alpha" minus (sec containing note)"#).unwrap();
//! assert_eq!(tight.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod engine;
pub mod live;
pub mod parse;

pub use ast::Query;
pub use engine::{BatchStats, Engine, EngineError, SessionViews};
pub use live::{MutateError, MutateStats, ResultDiff};
pub use parse::{parse, ParseError};
pub use tr_core::PlannerMode;
