//! The query AST: the region algebra plus the extended operators of
//! Sections 5/6, as exposed by the surface language.

use tr_core::{BinOp, Expr, Instance, NameId, RegionSet, Schema, WordIndex};
use tr_ext as ext;

/// A parsed query. The first eight variants are the algebra of
/// Definition 2.2; the last three are the extended operators, which the
/// algebra provably cannot express (Theorems 5.1/5.3) and which the
/// evaluator therefore handles natively (Section 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// A region name.
    Name(NameId),
    /// `q union q`.
    Union(Box<Query>, Box<Query>),
    /// `q intersect q`.
    Intersect(Box<Query>, Box<Query>),
    /// `q minus q`.
    Minus(Box<Query>, Box<Query>),
    /// `q containing q` — `⊃`.
    Containing(Box<Query>, Box<Query>),
    /// `q within q` — `⊂`.
    Within(Box<Query>, Box<Query>),
    /// `q before q` — `<`.
    Before(Box<Query>, Box<Query>),
    /// `q after q` — `>`.
    After(Box<Query>, Box<Query>),
    /// `q matching "p"` — `σ_p`.
    Matching(String, Box<Query>),
    /// `q directly containing q` — `⊃_d`.
    DirectlyContaining(Box<Query>, Box<Query>),
    /// `q directly within q` — `⊂_d`.
    DirectlyWithin(Box<Query>, Box<Query>),
    /// `bi(r, s, t)` — `R BI (S, T)`: `r` regions containing an `s`
    /// before a `t`.
    BothIncluded(Box<Query>, Box<Query>, Box<Query>),
    /// A bare quoted pattern: the pattern's *match point set* as regions
    /// (PAT's second set type, Section 2.1). Requires a positional word
    /// index; boolean-only indexes yield the empty set.
    MatchPoints(String),
}

impl Query {
    /// True if the query stays within the pure region algebra.
    pub fn is_algebraic(&self) -> bool {
        match self {
            Query::Name(_) => true,
            Query::MatchPoints(_) => false,
            Query::Matching(_, q) => q.is_algebraic(),
            Query::Union(a, b)
            | Query::Intersect(a, b)
            | Query::Minus(a, b)
            | Query::Containing(a, b)
            | Query::Within(a, b)
            | Query::Before(a, b)
            | Query::After(a, b) => a.is_algebraic() && b.is_algebraic(),
            Query::DirectlyContaining(..) | Query::DirectlyWithin(..) | Query::BothIncluded(..) => {
                false
            }
        }
    }

    /// Compiles a pure-algebra query to an [`Expr`]; `None` if it uses an
    /// extended operator anywhere.
    pub fn to_expr(&self) -> Option<Expr> {
        let bin = |op: BinOp, a: &Query, b: &Query| -> Option<Expr> {
            Some(Expr::bin(op, a.to_expr()?, b.to_expr()?))
        };
        match self {
            Query::Name(id) => Some(Expr::name(*id)),
            Query::MatchPoints(_) => None,
            Query::Matching(p, q) => Some(q.to_expr()?.select(p.clone())),
            Query::Union(a, b) => bin(BinOp::Union, a, b),
            Query::Intersect(a, b) => bin(BinOp::Intersect, a, b),
            Query::Minus(a, b) => bin(BinOp::Diff, a, b),
            Query::Containing(a, b) => bin(BinOp::Including, a, b),
            Query::Within(a, b) => bin(BinOp::IncludedIn, a, b),
            Query::Before(a, b) => bin(BinOp::Before, a, b),
            Query::After(a, b) => bin(BinOp::After, a, b),
            _ => None,
        }
    }

    /// Evaluates the query on an instance. Pure-algebra sub-queries run on
    /// the algebra evaluator; extended operators use the native
    /// implementations of `tr-ext`.
    pub fn eval<W: WordIndex>(&self, inst: &Instance<W>) -> RegionSet {
        // Fast path: compile whole sub-trees to the algebra when possible.
        if let Some(e) = self.to_expr() {
            return tr_core::eval(&e, inst);
        }
        match self {
            Query::Name(id) => inst.regions_of(*id).clone(),
            Query::MatchPoints(p) => inst.word_index().occurrence_regions(p),
            Query::Matching(p, q) => inst.select(&q.eval(inst), p),
            Query::Union(a, b) => a.eval(inst).union(&b.eval(inst)),
            Query::Intersect(a, b) => a.eval(inst).intersect(&b.eval(inst)),
            Query::Minus(a, b) => a.eval(inst).difference(&b.eval(inst)),
            Query::Containing(a, b) => tr_core::ops::includes(&a.eval(inst), &b.eval(inst)),
            Query::Within(a, b) => tr_core::ops::included_in(&a.eval(inst), &b.eval(inst)),
            Query::Before(a, b) => tr_core::ops::precedes(&a.eval(inst), &b.eval(inst)),
            Query::After(a, b) => tr_core::ops::follows(&a.eval(inst), &b.eval(inst)),
            Query::DirectlyContaining(a, b) => {
                ext::directly_including(inst, &a.eval(inst), &b.eval(inst))
            }
            Query::DirectlyWithin(a, b) => {
                ext::directly_included(inst, &a.eval(inst), &b.eval(inst))
            }
            Query::BothIncluded(r, s, t) => {
                ext::both_included(&r.eval(inst), &s.eval(inst), &t.eval(inst))
            }
        }
    }

    /// Renders the query back to surface syntax.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> QueryDisplay<'a> {
        QueryDisplay {
            query: self,
            schema,
        }
    }
}

/// Helper returned by [`Query::display`].
pub struct QueryDisplay<'a> {
    query: &'a Query,
    schema: &'a Schema,
}

impl std::fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_query(self.query, self.schema, f)
    }
}

fn fmt_query(q: &Query, s: &Schema, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    let infix = |f: &mut std::fmt::Formatter<'_>, a: &Query, kw: &str, b: &Query| {
        write!(f, "(")?;
        fmt_query(a, s, f)?;
        write!(f, " {kw} ")?;
        fmt_query(b, s, f)?;
        write!(f, ")")
    };
    match q {
        Query::Name(id) => write!(f, "{}", s.name(*id)),
        Query::MatchPoints(p) => write!(f, "{p:?}"),
        Query::Union(a, b) => infix(f, a, "union", b),
        Query::Intersect(a, b) => infix(f, a, "intersect", b),
        Query::Minus(a, b) => infix(f, a, "minus", b),
        Query::Containing(a, b) => infix(f, a, "containing", b),
        Query::Within(a, b) => infix(f, a, "within", b),
        Query::Before(a, b) => infix(f, a, "before", b),
        Query::After(a, b) => infix(f, a, "after", b),
        Query::DirectlyContaining(a, b) => infix(f, a, "directly containing", b),
        Query::DirectlyWithin(a, b) => infix(f, a, "directly within", b),
        Query::Matching(p, inner) => {
            write!(f, "(")?;
            fmt_query(inner, s, f)?;
            write!(f, " matching {p:?})")
        }
        Query::BothIncluded(r, s_, t) => {
            write!(f, "bi(")?;
            fmt_query(r, s, f)?;
            write!(f, ", ")?;
            fmt_query(s_, s, f)?;
            write!(f, ", ")?;
            fmt_query(t, s, f)?;
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::{region, InstanceBuilder};

    fn setup() -> (Schema, Instance) {
        let schema = Schema::new(["A", "B", "C"]);
        let inst = InstanceBuilder::new(schema.clone())
            .add("A", region(0, 20))
            .add("A", region(2, 18))
            .add("B", region(5, 6))
            .add("C", region(30, 40))
            .occurrence("x", 5, 1)
            .build_valid();
        (schema, inst)
    }

    #[test]
    fn algebra_queries_compile_and_match_core_eval() {
        let (s, inst) = setup();
        let q = Query::Within(
            Box::new(Query::Name(s.expect_id("B"))),
            Box::new(Query::Name(s.expect_id("A"))),
        );
        assert!(q.is_algebraic());
        let e = q.to_expr().unwrap();
        assert_eq!(q.eval(&inst), tr_core::eval(&e, &inst));
    }

    #[test]
    fn extended_operators_evaluate_natively() {
        let (s, inst) = setup();
        let q = Query::DirectlyContaining(
            Box::new(Query::Name(s.expect_id("A"))),
            Box::new(Query::Name(s.expect_id("B"))),
        );
        assert!(!q.is_algebraic());
        assert!(q.to_expr().is_none());
        assert_eq!(q.eval(&inst).to_vec(), &[region(2, 18)]);
    }

    #[test]
    fn mixed_queries_use_both_engines() {
        let (s, inst) = setup();
        // (A directly containing B) union C
        let q = Query::Union(
            Box::new(Query::DirectlyContaining(
                Box::new(Query::Name(s.expect_id("A"))),
                Box::new(Query::Name(s.expect_id("B"))),
            )),
            Box::new(Query::Name(s.expect_id("C"))),
        );
        assert_eq!(q.eval(&inst).len(), 2);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let (s, _) = setup();
        let q = Query::Matching(
            "x".into(),
            Box::new(Query::Within(
                Box::new(Query::Name(s.expect_id("B"))),
                Box::new(Query::Name(s.expect_id("A"))),
            )),
        );
        let text = q.display(&s).to_string();
        let parsed = crate::parse::parse(&text, &s).unwrap();
        assert_eq!(parsed, q);
    }
}
