//! Live documents: applying edits to an [`Engine`] incrementally.
//!
//! An engine is immutable once built — concurrent queries hold `Arc`s to
//! it and never lock. Mutation therefore works by **generation swap**:
//! [`Engine::apply_edits`] builds a *successor* engine sharing everything
//! the edit batch did not touch, and the caller (the serve catalog, a
//! REPL) swaps the `Arc`. In-flight queries finish against the old
//! generation; new queries see the new one.
//!
//! What is shared rather than rebuilt:
//!
//! * **Word-index shards** — a text splice re-indexes only the suffix
//!   shards whose byte range it touched (`tr_text::SuffixWordIndex::
//!   spliced`); clean shards' suffix arrays and pattern memos are reused
//!   via `Arc` (counted in [`MutateStats::segments_reindexed`] /
//!   [`MutateStats::segments_reused`]).
//! * **Region columns** — region sets entirely before a splice are
//!   carried as zero-copy handle clones of the same Arc'd `(lefts,
//!   rights)` columns (`tr_core::mutate::splice_set`).
//! * **Cached results** — cache entries survive a region-only edit batch
//!   when their expression does not mention any edited name. Any text
//!   splice drops the whole cache: pattern occurrences and positions may
//!   both have moved, and correctness beats reuse.
//!
//! Counter taxonomy (`mutate.*`): `mutate.applied` batches,
//! `mutate.edits` individual edits, `mutate.cache_kept` /
//! `mutate.cache_dropped` carry-over outcomes, and — incremented by the
//! text layer itself — `mutate.segments_reindexed` /
//! `mutate.segments_reused` plus the `mutate.reindex_ns` histogram.

use crate::engine::Engine;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use tr_core::mutate::{splice_instance, with_region_added, with_region_removed, Edit};
use tr_core::{seg, Corpus, InstanceError, NameId, Pos, RegionSet};

/// `mutate.*` counter handles (see the module docs for the taxonomy).
struct MutateMetrics {
    applied: Arc<tr_obs::Counter>,
    edits: Arc<tr_obs::Counter>,
    cache_kept: Arc<tr_obs::Counter>,
    cache_dropped: Arc<tr_obs::Counter>,
}

impl MutateMetrics {
    fn get() -> &'static MutateMetrics {
        static METRICS: OnceLock<MutateMetrics> = OnceLock::new();
        METRICS.get_or_init(|| MutateMetrics {
            applied: tr_obs::counter("mutate.applied"),
            edits: tr_obs::counter("mutate.edits"),
            cache_kept: tr_obs::counter("mutate.cache_kept"),
            cache_dropped: tr_obs::counter("mutate.cache_dropped"),
        })
    }
}

/// Why an edit batch could not be applied. The engine is never left in a
/// partial state: `apply_edits` builds the successor off to the side and
/// an error discards it wholesale.
#[derive(Debug)]
pub enum MutateError {
    /// An edit referenced a region name the schema does not define.
    UnknownName(String),
    /// The edited instance failed re-validation (duplicate region, or a
    /// splice/addition producing partially overlapping regions).
    Instance(InstanceError),
    /// A splice offset landed inside a multi-byte UTF-8 character.
    NotCharBoundary {
        /// The offending byte offset.
        at: usize,
    },
}

impl fmt::Display for MutateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutateError::UnknownName(n) => write!(f, "unknown region name {n:?}"),
            MutateError::Instance(e) => write!(f, "edit breaks the instance: {e}"),
            MutateError::NotCharBoundary { at } => {
                write!(f, "splice offset {at} is not a UTF-8 character boundary")
            }
        }
    }
}

impl std::error::Error for MutateError {}

impl From<InstanceError> for MutateError {
    fn from(e: InstanceError) -> MutateError {
        MutateError::Instance(e)
    }
}

/// What applying an edit batch did — the receipt the `mutate` protocol
/// verb reports back to clients.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutateStats {
    /// The successor engine's generation.
    pub generation: u64,
    /// Edits in the batch.
    pub edits: usize,
    /// Word-index shards re-tokenized and re-indexed across the batch.
    pub segments_reindexed: usize,
    /// Word-index shards reused verbatim (Arc'd) across the batch.
    pub segments_reused: usize,
    /// Result-cache entries carried over to the successor.
    pub cache_kept: usize,
    /// Result-cache entries invalidated by the batch.
    pub cache_dropped: usize,
    /// True when any edit spliced text bytes.
    pub text_changed: bool,
}

/// The added/removed regions between two runs of the same query — the
/// payload of a watch event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultDiff {
    /// Regions present now but not before.
    pub added: RegionSet,
    /// Regions present before but not now.
    pub removed: RegionSet,
}

impl ResultDiff {
    /// Diffs `new` against `old` (set difference both ways).
    pub fn between(old: &RegionSet, new: &RegionSet) -> ResultDiff {
        ResultDiff {
            added: new.difference(old),
            removed: old.difference(new),
        }
    }

    /// True when the two result sets were identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Replays the diff on `old`, reconstructing the new result set —
    /// the identity watch clients rely on: `old − removed + added` is
    /// byte-identical to re-running the query from scratch.
    pub fn apply_to(&self, old: &RegionSet) -> RegionSet {
        old.difference(&self.removed).union(&self.added)
    }
}

impl Engine {
    /// Applies a batch of edits, returning the successor engine (one
    /// generation newer) and a receipt of what was reused vs rebuilt.
    ///
    /// The batch is atomic: edits apply in order against a scratch copy,
    /// and any failure (unknown name, hierarchy violation) discards the
    /// scratch without touching `self`. `self` is never modified — the
    /// caller swaps its `Arc<Engine>` for the successor.
    pub fn apply_edits(&self, edits: &[Edit]) -> Result<(Engine, MutateStats), MutateError> {
        let _span = tr_obs::span("mutate.apply");
        let metrics = MutateMetrics::get();
        metrics.applied.inc();
        metrics.edits.add(edits.len() as u64);

        let mut text = self.text.clone();
        let mut instance = self.instance.clone();
        let mut stats = MutateStats {
            generation: self.generation + 1,
            edits: edits.len(),
            ..MutateStats::default()
        };
        // Names whose region sets changed, for cache carry-over.
        let mut changed: BTreeSet<NameId> = BTreeSet::new();

        for edit in edits {
            match edit {
                Edit::Splice { at, delete, insert } => {
                    // Clamp to the current text: `at` past the end is an
                    // append, `delete` past the end stops at the end.
                    let at = (*at as usize).min(text.len());
                    let delete = (*delete as usize).min(text.len() - at);
                    if !text.is_char_boundary(at) {
                        return Err(MutateError::NotCharBoundary { at });
                    }
                    if !text.is_char_boundary(at + delete) {
                        return Err(MutateError::NotCharBoundary { at: at + delete });
                    }
                    // Re-index only dirty shards (old-text coordinates).
                    let (word, re) = instance.word_index().spliced(at, delete, insert.as_bytes());
                    stats.segments_reindexed += re.segments_reindexed;
                    stats.segments_reused += re.segments_reused;
                    // Transform every region set and re-validate.
                    instance = splice_instance(
                        &instance,
                        at as Pos,
                        delete as Pos,
                        insert.len() as Pos,
                        word,
                    )?;
                    text.replace_range(at..at + delete, insert);
                    stats.text_changed = true;
                }
                Edit::AddRegion { name, region } => {
                    let id = self
                        .schema()
                        .id(name)
                        .ok_or_else(|| MutateError::UnknownName(name.clone()))?;
                    instance = with_region_added(&instance, id, *region)?;
                    changed.insert(id);
                }
                Edit::RemoveRegion { name, region } => {
                    let id = self
                        .schema()
                        .id(name)
                        .ok_or_else(|| MutateError::UnknownName(name.clone()))?;
                    instance = with_region_removed(&instance, id, *region)?;
                    changed.insert(id);
                }
            }
        }

        // Segment count follows the document size while the engine is at
        // its size-derived default; an explicit `with_segments` override
        // is sticky across generations.
        let segments = if self.corpus.num_segments() == seg::segment_count_for(self.text.len()) {
            seg::segment_count_for(text.len())
        } else {
            self.corpus.num_segments()
        };
        let corpus = Corpus::from_instance(&instance, text.len(), segments);

        // Cache carry-over: a text splice can move positions and change
        // pattern occurrences, so it drops everything. A region-only
        // batch keeps entries whose expression mentions none of the
        // edited names (σ_pattern results depend only on the text).
        let (cache, kept, dropped) = {
            let guard = self
                .cache
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            if stats.text_changed {
                guard.carried(|_| false)
            } else {
                guard.carried(|e| e.names().is_disjoint(&changed))
            }
        };
        stats.cache_kept = kept;
        stats.cache_dropped = dropped;
        metrics.cache_kept.add(kept as u64);
        metrics.cache_dropped.add(dropped as u64);

        // Planner statistics are recomputed against the successor's
        // instance and segment grid, so cost-based choices track the
        // document as it mutates instead of drifting stale.
        let plan_stats = tr_core::Stats::from_instance(&instance, &corpus);
        let next = Engine {
            text,
            instance,
            rig: self.rig.clone(),
            views: self.views.clone(),
            exec: self.exec,
            corpus,
            cache: Mutex::new(cache),
            generation: self.generation + 1,
            planner: self.planner,
            stats: plan_stats,
            cost_model: self.cost_model,
            // Memoized plans were ranked under the predecessor's stats;
            // the successor re-plans from scratch (correctness would
            // survive stale plans — the rules are verified identities —
            // but plan quality should track the fresh counts).
            plan_memo: Mutex::new(std::collections::HashMap::new()),
        };
        Ok((next, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::region;

    fn live_engine() -> Engine {
        Engine::from_sgml("<doc><sec>alpha beta</sec><sec>gamma <note>beta</note></sec></doc>")
            .unwrap()
    }

    /// Oracle: an engine rebuilt from scratch over the mutated text must
    /// agree with the incrementally mutated engine on every query.
    fn assert_matches_fresh(e: &Engine, queries: &[&str]) {
        let fresh = Engine::from_sgml(e.text()).unwrap();
        for q in queries {
            assert_eq!(
                e.query(q).unwrap(),
                fresh.query(q).unwrap(),
                "query {q} diverges from a from-scratch rebuild"
            );
        }
    }

    #[test]
    fn append_advances_generation_and_matches_fresh() {
        let e = live_engine();
        assert_eq!(e.generation(), 0);
        let at = e.text().rfind("</doc>").unwrap() as u32;
        let (e2, stats) = e
            .apply_edits(&[Edit::Splice {
                at,
                delete: 0,
                insert: "<sec>delta beta</sec>".into(),
            }])
            .unwrap();
        assert_eq!(e2.generation(), 1);
        assert_eq!(stats.generation, 1);
        assert!(stats.text_changed);
        // The old engine is untouched.
        assert_eq!(e.generation(), 0);
        assert_eq!(e.query(r#"sec matching "beta""#).unwrap().len(), 2);
        // The new one sees the appended section... except the appended
        // text has no markup reparse — regions were spliced, so the new
        // <sec> tags are plain text, not regions. The paper model keeps
        // markup and regions separate: region edits are explicit.
        assert_eq!(e2.query(r#"sec matching "beta""#).unwrap().len(), 2);
        assert!(e2.text().contains("delta beta"));
        assert_eq!(e2.query(r#""delta""#).unwrap().len(), 1);
    }

    #[test]
    fn splice_remaps_regions_and_matches_oracle() {
        let e = live_engine();
        let queries = [
            r#"sec matching "beta""#,
            "note within sec",
            r#""beta" within note"#,
            "doc containing sec",
        ];
        // Replace "gamma" (byte 31..36) with a longer word.
        let at = e.text().find("gamma").unwrap() as u32;
        let (e2, _) = e
            .apply_edits(&[Edit::Splice {
                at,
                delete: 5,
                insert: "gamma_prime".into(),
            }])
            .unwrap();
        // Structural queries still see both sections and the note, at
        // shifted positions.
        assert_eq!(e2.query(r#"sec matching "beta""#).unwrap().len(), 2);
        assert_eq!(e2.query("note within sec").unwrap().len(), 1);
        // Region positions: compare against a scratch instance built over
        // the mutated text only for text patterns (regions were remapped,
        // not re-derived from markup, so snippets must still line up).
        for r in e2.query("note").unwrap().iter() {
            assert_eq!(e2.snippet(r), "<note>beta</note>");
        }
        let fresh = Engine::from_sgml(e2.text()).unwrap();
        for q in queries {
            assert_eq!(e2.query(q).unwrap(), fresh.query(q).unwrap(), "query {q}");
        }
    }

    #[test]
    fn add_and_remove_region_edits() {
        let e = live_engine();
        let hole = e.text().find("gamma").unwrap() as u32;
        let (e2, stats) = e
            .apply_edits(&[Edit::AddRegion {
                name: "note".into(),
                region: region(hole, hole + 4),
            }])
            .unwrap();
        assert!(!stats.text_changed);
        assert_eq!(e2.query("note").unwrap().len(), 2);
        assert_matches_fresh_regions(&e, &e2);
        let (e3, _) = e2
            .apply_edits(&[Edit::RemoveRegion {
                name: "note".into(),
                region: region(hole, hole + 4),
            }])
            .unwrap();
        assert_eq!(e3.query("note").unwrap(), e.query("note").unwrap());
        assert_eq!(e3.generation(), 2);
        // Unknown names are rejected atomically.
        let err = e.apply_edits(&[Edit::AddRegion {
            name: "nope".into(),
            region: region(0, 1),
        }]);
        assert!(matches!(err, Err(MutateError::UnknownName(_))));
    }

    /// Text was untouched, so both engines share the same text; region
    /// queries must agree wherever the edit didn't land.
    fn assert_matches_fresh_regions(before: &Engine, after: &Engine) {
        assert_eq!(before.text(), after.text());
        assert_eq!(after.query("sec").unwrap(), before.query("sec").unwrap());
    }

    #[test]
    fn invalid_edits_leave_no_trace() {
        let e = live_engine();
        // A region partially overlapping an existing sec is rejected by
        // re-validation; the engine must be unchanged and queryable.
        let sec = e.query("sec").unwrap().iter().next().unwrap();
        let bad = region(sec.left() + 1, sec.right() + 3);
        let err = e.apply_edits(&[Edit::AddRegion {
            name: "note".into(),
            region: bad,
        }]);
        assert!(matches!(
            err,
            Err(MutateError::Instance(InstanceError::PartialOverlap { .. }))
        ));
        assert_eq!(e.generation(), 0);
        assert_eq!(e.query(r#"sec matching "beta""#).unwrap().len(), 2);
    }

    #[test]
    fn cache_carries_over_region_only_edits() {
        let e = live_engine();
        // Prime the cache with a note-free and a note-using query.
        let secs = e.query("sec").unwrap();
        let _ = e.query("sec containing note").unwrap();
        let hole = e.text().find("alpha").unwrap() as u32;
        let (e2, stats) = e
            .apply_edits(&[Edit::AddRegion {
                name: "note".into(),
                region: region(hole, hole + 4),
            }])
            .unwrap();
        // "sec" survives (does not mention note); "sec containing note"
        // is dropped.
        assert_eq!(stats.cache_kept, 1);
        assert_eq!(stats.cache_dropped, 1);
        assert_eq!(e2.query("sec").unwrap(), secs);
        assert_eq!(e2.query("sec containing note").unwrap().len(), 2);
        // A text splice drops everything.
        let (_, stats) = e2.apply_edits(&[Edit::append(" tail")]).unwrap();
        assert!(stats.cache_kept == 0 && stats.cache_dropped >= 1);
    }

    #[test]
    fn incremental_reindex_is_counted() {
        // Large two-shard document: an edit in the first shard must not
        // re-index the second.
        let body = "word ".repeat(26_000); // ~130 KiB ⇒ ≥2 shards
        let text = format!("<doc>{body}</doc>");
        let e = Engine::from_sgml(&text).unwrap();
        // First splice converts Whole → Sharded (full re-index, honest).
        let (e1, s1) = e
            .apply_edits(&[Edit::Splice {
                at: 10,
                delete: 4,
                insert: "WORD".into(),
            }])
            .unwrap();
        assert!(s1.segments_reindexed >= 2, "{s1:?}");
        // Steady state: a second early-shard edit reuses the tail shards.
        let (e2, s2) = e1
            .apply_edits(&[Edit::Splice {
                at: 20,
                delete: 4,
                insert: "Word".into(),
            }])
            .unwrap();
        assert_eq!(s2.segments_reindexed, 1, "{s2:?}");
        assert!(s2.segments_reused >= 1, "{s2:?}");
        assert_matches_fresh(&e2, &[r#""WORD""#, r#""Word""#, r#""word""#]);
    }

    #[test]
    fn random_edit_sequences_match_from_scratch() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x11FE);
        let queries = [r#"sec matching "beta""#, "note within sec", r#""beta""#];
        for _ in 0..10 {
            let mut e = live_engine();
            for _ in 0..6 {
                let len = e.text().len();
                // Splice inside the character data, away from tags, so the
                // region structure stays meaningful.
                let at = rng.gen_range(10..len.saturating_sub(10)) as u32;
                let delete = rng.gen_range(0..3);
                let insert = if rng.gen_bool(0.5) { "xy" } else { "" };
                let edit = Edit::Splice {
                    at,
                    delete,
                    insert: insert.into(),
                };
                match e.apply_edits(&[edit]) {
                    Ok((next, _)) => e = next,
                    // Edits that break the hierarchy are rejected; the
                    // engine stays valid either way.
                    Err(MutateError::Instance(_)) => continue,
                    Err(other) => panic!("unexpected: {other}"),
                }
                let fresh =
                    Engine::from_parts(e.text().to_owned(), rebuild_instance(&e), e.rig().cloned());
                for q in queries {
                    assert_eq!(e.query(q).unwrap(), fresh.query(q).unwrap(), "query {q}");
                }
            }
        }
    }

    /// Rebuilds the instance from the mutated engine's own regions over a
    /// fresh (non-incremental) word index — the from-scratch oracle.
    fn rebuild_instance(e: &Engine) -> tr_core::Instance<tr_text::SuffixWordIndex> {
        let schema = e.schema().clone();
        let sets = schema
            .ids()
            .map(|id| e.instance().regions_of(id).clone())
            .collect();
        tr_core::Instance::build(
            schema,
            sets,
            tr_text::SuffixWordIndex::new(e.text().as_bytes()),
        )
        .unwrap()
    }

    #[test]
    fn result_diff_round_trips() {
        let e = live_engine();
        let old = e.query("sec").unwrap();
        let hole = e.text().find("alpha").unwrap() as u32;
        let (e2, _) = e
            .apply_edits(&[Edit::AddRegion {
                name: "sec".into(),
                region: region(hole, hole + 4),
            }])
            .unwrap();
        let new = e2.query("sec").unwrap();
        let diff = ResultDiff::between(&old, &new);
        assert_eq!(diff.added.len(), 1);
        assert!(diff.removed.is_empty());
        assert_eq!(diff.apply_to(&old), new, "replay identity");
        assert!(ResultDiff::between(&new, &new).is_empty());
    }
}
