//! N-ary region relations: the data model of the Section 7 extension.
//!
//! The paper's conclusion proposes lifting the algebra from unary
//! relations (sets of regions) to *n-ary relations with attributes over
//! the region domain*, with genuine joins instead of semi-joins. A
//! [`Relation`] is a duplicate-free, sorted set of fixed-arity region
//! tuples.

use tr_core::{Region, RegionSet};

/// A tuple of regions. Tuples of one relation all share its arity.
pub type Tuple = Vec<Region>;

/// A set of region tuples of fixed arity.
///
/// Arity-0 relations are allowed and act as booleans: the empty relation
/// is *false*, the relation containing the empty tuple is *true* (they
/// arise from projecting everything away).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    /// Sorted, duplicate-free.
    tuples: Vec<Tuple>,
}

impl Relation {
    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: Vec::new(),
        }
    }

    /// Builds a relation from tuples (sorting and deduplicating). Panics
    /// if a tuple's length differs from `arity`.
    pub fn from_tuples(arity: usize, mut tuples: Vec<Tuple>) -> Relation {
        for t in &tuples {
            assert_eq!(t.len(), arity, "tuple arity mismatch");
        }
        tuples.sort_unstable();
        tuples.dedup();
        Relation { arity, tuples }
    }

    /// Lifts a region set to a unary relation.
    pub fn from_set(set: &RegionSet) -> Relation {
        Relation {
            arity: 1,
            tuples: set.iter().map(|r| vec![r]).collect(),
        }
    }

    /// Collapses a unary relation back to a region set. Panics on other
    /// arities.
    pub fn to_set(&self) -> RegionSet {
        assert_eq!(self.arity, 1, "only unary relations are region sets");
        self.tuples.iter().map(|t| t[0]).collect()
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples, sorted.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Set union (same arity).
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "union arity mismatch");
        let mut tuples = self.tuples.clone();
        tuples.extend(other.tuples.iter().cloned());
        Relation::from_tuples(self.arity, tuples)
    }

    /// Set intersection (same arity).
    pub fn intersect(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "intersect arity mismatch");
        Relation {
            arity: self.arity,
            tuples: self
                .tuples
                .iter()
                .filter(|t| other.tuples.binary_search(t).is_ok())
                .cloned()
                .collect(),
        }
    }

    /// Set difference (same arity).
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "difference arity mismatch");
        Relation {
            arity: self.arity,
            tuples: self
                .tuples
                .iter()
                .filter(|t| other.tuples.binary_search(t).is_err())
                .cloned()
                .collect(),
        }
    }

    /// Cartesian product: arity is the sum of arities.
    pub fn product(&self, other: &Relation) -> Relation {
        let mut tuples = Vec::with_capacity(self.len() * other.len());
        for a in &self.tuples {
            for b in &other.tuples {
                let mut t = a.clone();
                t.extend_from_slice(b);
                tuples.push(t);
            }
        }
        // Product of sorted inputs is sorted lexicographically already,
        // and duplicate-free.
        Relation {
            arity: self.arity + other.arity,
            tuples,
        }
    }

    /// Keeps tuples satisfying `pred`.
    pub fn select(&self, mut pred: impl FnMut(&[Region]) -> bool) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self.tuples.iter().filter(|t| pred(t)).cloned().collect(),
        }
    }

    /// Projects onto the given columns (in the given order; columns may
    /// repeat). The result is re-sorted and deduplicated.
    pub fn project(&self, cols: &[usize]) -> Relation {
        for &c in cols {
            assert!(
                c < self.arity,
                "projection column {c} out of arity {}",
                self.arity
            );
        }
        Relation::from_tuples(
            cols.len(),
            self.tuples
                .iter()
                .map(|t| cols.iter().map(|&c| t[c]).collect())
                .collect(),
        )
    }

    /// Membership test.
    pub fn contains(&self, t: &[Region]) -> bool {
        self.tuples
            .binary_search_by(|x| x.as_slice().cmp(t))
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::region;

    fn unary(rs: &[(u32, u32)]) -> Relation {
        Relation::from_set(&rs.iter().map(|&(l, r)| region(l, r)).collect())
    }

    #[test]
    fn set_round_trip() {
        let rel = unary(&[(0, 9), (2, 3)]);
        assert_eq!(rel.arity(), 1);
        assert_eq!(rel.len(), 2);
        assert_eq!(Relation::from_set(&rel.to_set()), rel);
    }

    #[test]
    fn product_and_project() {
        let a = unary(&[(0, 1), (2, 3)]);
        let b = unary(&[(4, 5)]);
        let p = a.product(&b);
        assert_eq!(p.arity(), 2);
        assert_eq!(p.len(), 2);
        assert!(p.contains(&[region(0, 1), region(4, 5)]));
        assert_eq!(p.project(&[0]), a);
        assert_eq!(p.project(&[1]), b);
        // Swapping columns.
        let swapped = p.project(&[1, 0]);
        assert!(swapped.contains(&[region(4, 5), region(0, 1)]));
    }

    #[test]
    fn set_ops_and_select() {
        let a = unary(&[(0, 1), (2, 3), (4, 5)]);
        let b = unary(&[(2, 3)]);
        assert_eq!(a.intersect(&b), b);
        assert_eq!(a.difference(&b).len(), 2);
        assert_eq!(a.union(&b), a);
        let sel = a.select(|t| t[0].left() >= 2);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn arity_zero_booleans() {
        let t = Relation::from_tuples(0, vec![vec![]]);
        let f = Relation::empty(0);
        assert!(!t.is_empty());
        assert!(f.is_empty());
        let some = unary(&[(0, 1)]);
        assert_eq!(
            some.project(&[]),
            t,
            "projecting a non-empty relation to arity 0 is true"
        );
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn mismatched_union_panics() {
        let a = unary(&[(0, 1)]);
        let b = a.product(&a);
        let _ = a.union(&b);
    }
}
