//! The extended algebra of Section 7: expressions over n-ary region
//! relations, with genuine joins (product + theta-selection) rather than
//! the core algebra's semi-joins.
//!
//! The paper's conclusion: "one may allow queries to have n-ary relations
//! (with attributes over the region domain) as intermediate results, and
//! support joins and not only semi-joins. … expressions in this extended
//! language correspond to safe FMFT formulas … and thus queries can be
//! optimized. It is easy to see that direct inclusion and both-included
//! can be expressed by this extended language." The module makes the last
//! sentence executable: [`direct_including_expr`] and
//! [`both_included_expr`] are ordinary [`NExpr`]s whose evaluation
//! matches the native operators of `tr-ext`.

use crate::relation::Relation;
use tr_core::{Instance, NameId, Region, Schema, WordIndex};

/// The structural comparisons available in theta-selections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructRel {
    /// `t[l] ⊃ t[r]` (strict inclusion).
    Includes,
    /// `t[l] ⊂ t[r]`.
    IncludedIn,
    /// `t[l] < t[r]`.
    Precedes,
    /// `t[l] > t[r]`.
    Follows,
    /// `t[l] = t[r]`.
    Equals,
}

impl StructRel {
    fn test(self, a: Region, b: Region) -> bool {
        match self {
            StructRel::Includes => a.includes(b),
            StructRel::IncludedIn => a.included_in(b),
            StructRel::Precedes => a.precedes(b),
            StructRel::Follows => a.follows(b),
            StructRel::Equals => a == b,
        }
    }
}

/// An atomic selection condition over a tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Atom {
    /// `t[left] ∘ t[right]` for a structural comparison `∘`.
    Cols {
        /// Left column.
        left: usize,
        /// The comparison.
        rel: StructRel,
        /// Right column.
        right: usize,
    },
    /// `W(t[col], pattern)` — the word index predicate on one column.
    Pattern {
        /// The column tested.
        col: usize,
        /// The pattern.
        pattern: String,
    },
}

/// An expression of the extended (n-ary) algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NExpr {
    /// A region name — a unary relation.
    Name(NameId),
    /// The union of all region names — a unary relation (handy for the
    /// "anything in between" tests; still monadic input, as Section 7
    /// requires for decidability).
    AllRegions,
    /// Set union (same arity).
    Union(Box<NExpr>, Box<NExpr>),
    /// Set intersection (same arity).
    Intersect(Box<NExpr>, Box<NExpr>),
    /// Set difference (same arity).
    Diff(Box<NExpr>, Box<NExpr>),
    /// Cartesian product (arity adds).
    Product(Box<NExpr>, Box<NExpr>),
    /// Theta-selection: keep tuples satisfying *all* atoms.
    Select(Vec<Atom>, Box<NExpr>),
    /// Projection onto columns (may reorder/duplicate).
    Project(Vec<usize>, Box<NExpr>),
}

impl NExpr {
    /// A region name.
    pub fn name(id: NameId) -> NExpr {
        NExpr::Name(id)
    }

    /// `self × rhs`.
    pub fn product(self, rhs: NExpr) -> NExpr {
        NExpr::Product(Box::new(self), Box::new(rhs))
    }

    /// `σ_atoms(self)`.
    pub fn select(self, atoms: Vec<Atom>) -> NExpr {
        NExpr::Select(atoms, Box::new(self))
    }

    /// `π_cols(self)`.
    pub fn project(self, cols: Vec<usize>) -> NExpr {
        NExpr::Project(cols, Box::new(self))
    }

    /// `self ∪ rhs`.
    pub fn union(self, rhs: NExpr) -> NExpr {
        NExpr::Union(Box::new(self), Box::new(rhs))
    }

    /// `self ∩ rhs`.
    pub fn intersect(self, rhs: NExpr) -> NExpr {
        NExpr::Intersect(Box::new(self), Box::new(rhs))
    }

    /// `self − rhs`.
    pub fn diff(self, rhs: NExpr) -> NExpr {
        NExpr::Diff(Box::new(self), Box::new(rhs))
    }

    /// A join: `σ_atoms(self × rhs)`.
    pub fn join(self, rhs: NExpr, atoms: Vec<Atom>) -> NExpr {
        self.product(rhs).select(atoms)
    }

    /// The arity of the expression, or an error message describing the
    /// first arity violation.
    pub fn arity(&self, schema: &Schema) -> Result<usize, String> {
        match self {
            NExpr::Name(id) => {
                if id.index() < schema.len() {
                    Ok(1)
                } else {
                    Err(format!("name {id:?} not in schema"))
                }
            }
            NExpr::AllRegions => Ok(1),
            NExpr::Union(a, b) | NExpr::Intersect(a, b) | NExpr::Diff(a, b) => {
                let (x, y) = (a.arity(schema)?, b.arity(schema)?);
                if x == y {
                    Ok(x)
                } else {
                    Err(format!("set operation on arities {x} and {y}"))
                }
            }
            NExpr::Product(a, b) => Ok(a.arity(schema)? + b.arity(schema)?),
            NExpr::Select(atoms, e) => {
                let n = e.arity(schema)?;
                for atom in atoms {
                    let max = match atom {
                        Atom::Cols { left, right, .. } => (*left).max(*right),
                        Atom::Pattern { col, .. } => *col,
                    };
                    if max >= n {
                        return Err(format!("selection column {max} out of arity {n}"));
                    }
                }
                Ok(n)
            }
            NExpr::Project(cols, e) => {
                let n = e.arity(schema)?;
                for &c in cols {
                    if c >= n {
                        return Err(format!("projection column {c} out of arity {n}"));
                    }
                }
                Ok(cols.len())
            }
        }
    }

    /// Evaluates the expression on an instance.
    pub fn eval<W: WordIndex>(&self, inst: &Instance<W>) -> Relation {
        debug_assert!(self.arity(inst.schema()).is_ok(), "ill-formed expression");
        match self {
            NExpr::Name(id) => Relation::from_set(inst.regions_of(*id)),
            NExpr::AllRegions => Relation::from_set(&inst.all_regions()),
            NExpr::Union(a, b) => a.eval(inst).union(&b.eval(inst)),
            NExpr::Intersect(a, b) => a.eval(inst).intersect(&b.eval(inst)),
            NExpr::Diff(a, b) => a.eval(inst).difference(&b.eval(inst)),
            NExpr::Product(a, b) => a.eval(inst).product(&b.eval(inst)),
            NExpr::Select(atoms, e) => e.eval(inst).select(|t| {
                atoms.iter().all(|atom| match atom {
                    Atom::Cols { left, rel, right } => rel.test(t[*left], t[*right]),
                    Atom::Pattern { col, pattern } => inst.word_index().matches(t[*col], pattern),
                })
            }),
            NExpr::Project(cols, e) => e.eval(inst).project(cols),
        }
    }
}

/// `R₁ ⊃_d R₂` as an n-ary expression (Section 7's claim, executably):
///
/// ```text
/// pairs = σ_{0 ⊃ 1}(R₁ × R₂)                       — all inclusion pairs
/// bad   = π_{0,1} σ_{0 ⊃ 2 ∧ 2 ⊃ 1}(R₁ × R₂ × All) — pairs with a region between
/// π_0(pairs − bad)
/// ```
pub fn direct_including_expr(r1: NameId, r2: NameId) -> NExpr {
    let pairs = NExpr::name(r1).join(
        NExpr::name(r2),
        vec![Atom::Cols {
            left: 0,
            rel: StructRel::Includes,
            right: 1,
        }],
    );
    let bad = NExpr::name(r1)
        .product(NExpr::name(r2))
        .product(NExpr::AllRegions)
        .select(vec![
            Atom::Cols {
                left: 0,
                rel: StructRel::Includes,
                right: 2,
            },
            Atom::Cols {
                left: 2,
                rel: StructRel::Includes,
                right: 1,
            },
        ])
        .project(vec![0, 1]);
    pairs.diff(bad).project(vec![0])
}

/// `R₁ ⊂_d R₂` as an n-ary expression.
pub fn direct_included_expr(r1: NameId, r2: NameId) -> NExpr {
    let pairs = NExpr::name(r1).join(
        NExpr::name(r2),
        vec![Atom::Cols {
            left: 0,
            rel: StructRel::IncludedIn,
            right: 1,
        }],
    );
    let bad = NExpr::name(r1)
        .product(NExpr::name(r2))
        .product(NExpr::AllRegions)
        .select(vec![
            Atom::Cols {
                left: 1,
                rel: StructRel::Includes,
                right: 2,
            },
            Atom::Cols {
                left: 2,
                rel: StructRel::Includes,
                right: 0,
            },
        ])
        .project(vec![0, 1]);
    pairs.diff(bad).project(vec![0])
}

/// `R BI (S, T)` as an n-ary expression:
/// `π_0 σ_{0 ⊃ 1 ∧ 0 ⊃ 2 ∧ 1 < 2}(R × S × T)`.
pub fn both_included_expr(r: NameId, s: NameId, t: NameId) -> NExpr {
    NExpr::name(r)
        .product(NExpr::name(s))
        .product(NExpr::name(t))
        .select(vec![
            Atom::Cols {
                left: 0,
                rel: StructRel::Includes,
                right: 1,
            },
            Atom::Cols {
                left: 0,
                rel: StructRel::Includes,
                right: 2,
            },
            Atom::Cols {
                left: 1,
                rel: StructRel::Precedes,
                right: 2,
            },
        ])
        .project(vec![0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use tr_core::{region, InstanceBuilder};

    fn schema() -> Schema {
        Schema::new(["A", "B", "C"])
    }

    fn random_instance(rng: &mut StdRng) -> Instance {
        let names = ["A", "B", "C"];
        loop {
            let mut b = InstanceBuilder::new(schema());
            let mut spans = vec![(0u32, 127u32)];
            for _ in 0..rng.gen_range(2..14) {
                let (l, r) = spans[rng.gen_range(0..spans.len())];
                if r - l < 4 {
                    continue;
                }
                let nl = rng.gen_range(l + 1..r);
                let nr = rng.gen_range(nl..r);
                b = b.add(names[rng.gen_range(0..3)], region(nl, nr));
                spans.push((nl, nr));
            }
            if let Ok(inst) = b.build() {
                return inst;
            }
        }
    }

    #[test]
    fn arity_checking() {
        let s = schema();
        let a = NExpr::name(s.expect_id("A"));
        let b = NExpr::name(s.expect_id("B"));
        assert_eq!(a.clone().product(b.clone()).arity(&s), Ok(2));
        assert!(a
            .clone()
            .union(a.clone().product(b.clone()))
            .arity(&s)
            .is_err());
        assert!(a
            .clone()
            .select(vec![Atom::Cols {
                left: 0,
                rel: StructRel::Includes,
                right: 1
            }])
            .arity(&s)
            .is_err());
        assert!(a.clone().project(vec![1]).arity(&s).is_err());
        assert_eq!(a.project(vec![0, 0]).arity(&s), Ok(2));
    }

    /// Section 7's central claim: the extended language expresses direct
    /// inclusion — verified against the native operator on random
    /// instances.
    #[test]
    fn direct_inclusion_is_expressible() {
        let s = schema();
        let e_incl = direct_including_expr(s.expect_id("A"), s.expect_id("B"));
        let e_in = direct_included_expr(s.expect_id("B"), s.expect_id("A"));
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..40 {
            let inst = random_instance(&mut rng);
            assert_eq!(
                e_incl.eval(&inst).to_set(),
                tr_ext::directly_including(
                    &inst,
                    inst.regions_of_name("A"),
                    inst.regions_of_name("B")
                ),
                "{inst:?}"
            );
            assert_eq!(
                e_in.eval(&inst).to_set(),
                tr_ext::directly_included(
                    &inst,
                    inst.regions_of_name("B"),
                    inst.regions_of_name("A")
                ),
                "{inst:?}"
            );
        }
    }

    /// …and both-included.
    #[test]
    fn both_included_is_expressible() {
        let s = schema();
        let e = both_included_expr(s.expect_id("C"), s.expect_id("A"), s.expect_id("B"));
        let mut rng = StdRng::seed_from_u64(73);
        for _ in 0..40 {
            let inst = random_instance(&mut rng);
            assert_eq!(
                e.eval(&inst).to_set(),
                tr_ext::both_included(
                    inst.regions_of_name("C"),
                    inst.regions_of_name("A"),
                    inst.regions_of_name("B"),
                ),
                "{inst:?}"
            );
        }
    }

    #[test]
    fn pattern_atoms_use_the_word_index() {
        let s = schema();
        let inst = InstanceBuilder::new(s.clone())
            .add("A", region(0, 9))
            .add("A", region(20, 29))
            .occurrence("x", 5, 1)
            .build_valid();
        let e = NExpr::name(s.expect_id("A")).select(vec![Atom::Pattern {
            col: 0,
            pattern: "x".into(),
        }]);
        assert_eq!(e.eval(&inst).to_set().to_vec(), &[region(0, 9)]);
    }

    /// The unary fragment embeds the core algebra: semi-joins are
    /// project(join(…)).
    #[test]
    fn semijoin_embedding() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(79);
        for _ in 0..20 {
            let inst = random_instance(&mut rng);
            let semi = NExpr::name(s.expect_id("A"))
                .join(
                    NExpr::name(s.expect_id("B")),
                    vec![Atom::Cols {
                        left: 0,
                        rel: StructRel::Includes,
                        right: 1,
                    }],
                )
                .project(vec![0]);
            assert_eq!(
                semi.eval(&inst).to_set(),
                tr_core::ops::includes(inst.regions_of_name("A"), inst.regions_of_name("B"))
            );
        }
    }
}
