//! Bounded-model emptiness and equivalence for the extended language.
//!
//! Section 7: "Theorem 3.6 holds for the extended language, and thus
//! queries can be optimized. … This is because the input can still be
//! encoded by monadic predicates." Concretely: an [`NExpr`] still reads
//! only the region name sets (and the fixed pattern predicates), so
//! evaluating it over the same canonical model space that
//! `tr_fmft::EmptinessChecker` enumerates decides emptiness within
//! bounds — and hence equivalence, and hence optimization.

use crate::expr::{Atom, NExpr};
use tr_core::Schema;
use tr_fmft::{Bounds, EmptinessChecker, Model};
use tr_rig::Rig;

/// Bounded-model emptiness/equivalence for [`NExpr`]s, backed by the
/// FMFT checker's canonical model enumeration.
#[derive(Debug, Clone)]
pub struct NEmptiness {
    checker: EmptinessChecker,
}

impl NEmptiness {
    /// Over all instances of a schema.
    pub fn new(schema: Schema, bounds: Bounds) -> NEmptiness {
        NEmptiness {
            checker: EmptinessChecker::new(schema, bounds),
        }
    }

    /// Over the instances satisfying a RIG.
    pub fn with_rig(rig: Rig, bounds: Bounds) -> NEmptiness {
        NEmptiness {
            checker: EmptinessChecker::with_rig(rig, bounds),
        }
    }

    /// A model on which `e` evaluates to a non-empty relation, if one
    /// exists within bounds.
    pub fn find_witness(&self, e: &NExpr) -> Option<Model> {
        let patterns = collect_patterns(e);
        let mut found = None;
        self.checker.for_each_model(&patterns, &mut |m| {
            if !e.eval(&m.to_instance()).is_empty() {
                found = Some(m.clone());
                true
            } else {
                false
            }
        });
        found
    }

    /// True if `e` is empty on every instance within bounds.
    pub fn is_empty(&self, e: &NExpr) -> bool {
        self.find_witness(e).is_none()
    }

    /// Equivalence within bounds: same relation on every canonical model.
    /// (For different-arity expressions this is trivially false.)
    pub fn equivalent(&self, e1: &NExpr, e2: &NExpr) -> bool {
        let mut patterns = collect_patterns(e1);
        for p in collect_patterns(e2) {
            if !patterns.contains(&p) {
                patterns.push(p);
            }
        }
        patterns.sort();
        let mut same = true;
        self.checker.for_each_model(&patterns, &mut |m| {
            let inst = m.to_instance();
            if e1.eval(&inst) != e2.eval(&inst) {
                same = false;
                true
            } else {
                false
            }
        });
        same
    }
}

fn collect_patterns(e: &NExpr) -> Vec<String> {
    fn go(e: &NExpr, out: &mut Vec<String>) {
        match e {
            NExpr::Name(_) | NExpr::AllRegions => {}
            NExpr::Union(a, b)
            | NExpr::Intersect(a, b)
            | NExpr::Diff(a, b)
            | NExpr::Product(a, b) => {
                go(a, out);
                go(b, out);
            }
            NExpr::Select(atoms, inner) => {
                for a in atoms {
                    if let Atom::Pattern { pattern, .. } = a {
                        if !out.contains(pattern) {
                            out.push(pattern.clone());
                        }
                    }
                }
                go(inner, out);
            }
            NExpr::Project(_, inner) => go(inner, out),
        }
    }
    let mut out = Vec::new();
    go(e, &mut out);
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{both_included_expr, direct_including_expr, StructRel};
    use tr_core::NameId;

    fn schema() -> Schema {
        Schema::new(["A", "B"])
    }

    fn a() -> NExpr {
        NExpr::name(NameId::from_index(0))
    }

    fn b() -> NExpr {
        NExpr::name(NameId::from_index(1))
    }

    #[test]
    fn emptiness_basics() {
        let ne = NEmptiness::new(
            schema(),
            Bounds {
                max_nodes: 3,
                max_depth: 3,
            },
        );
        assert!(!ne.is_empty(&a()));
        assert!(ne.is_empty(&a().intersect(b())), "names are disjoint");
        // A pair (x ⊃ y) is satisfiable.
        let pair = a().join(
            b(),
            vec![Atom::Cols {
                left: 0,
                rel: StructRel::Includes,
                right: 1,
            }],
        );
        assert!(!ne.is_empty(&pair));
        let w = ne.find_witness(&pair).unwrap();
        assert_eq!(w.len(), 2);
        // But x ⊃ y ∧ y ⊃ x is contradictory.
        let twisted = a().join(
            b(),
            vec![
                Atom::Cols {
                    left: 0,
                    rel: StructRel::Includes,
                    right: 1,
                },
                Atom::Cols {
                    left: 1,
                    rel: StructRel::Includes,
                    right: 0,
                },
            ],
        );
        assert!(ne.is_empty(&twisted));
    }

    #[test]
    fn equivalence_for_joins() {
        let ne = NEmptiness::new(
            schema(),
            Bounds {
                max_nodes: 3,
                max_depth: 3,
            },
        );
        // σ-conditions commute.
        let c1 = vec![
            Atom::Cols {
                left: 0,
                rel: StructRel::Includes,
                right: 1,
            },
            Atom::Pattern {
                col: 0,
                pattern: "x".into(),
            },
        ];
        let mut c2 = c1.clone();
        c2.reverse();
        let e1 = a().join(b(), c1);
        let e2 = a().join(b(), c2);
        assert!(ne.equivalent(&e1, &e2));
        // Projection collapses: π_0(A × B) ≡ A iff B is never empty — not
        // a tautology, so they must be distinguishable (empty B).
        let e1 = a().product(b()).project(vec![0]);
        assert!(!ne.equivalent(&e1, &a()));
        // Different arities are never equivalent.
        assert!(!ne.equivalent(&a(), &a().product(b())));
    }

    /// Theorem 5.1/5.3 vs Section 7: the operators inexpressible in the
    /// *core* algebra are expressible here, and the bounded checker can
    /// verify non-trivial identities about them — e.g. ⊃_d refines ⊃.
    #[test]
    fn extended_operators_are_analyzable() {
        let ne = NEmptiness::new(
            schema(),
            Bounds {
                max_nodes: 4,
                max_depth: 4,
            },
        );
        let direct = direct_including_expr(NameId::from_index(0), NameId::from_index(1));
        let loose = a()
            .join(
                b(),
                vec![Atom::Cols {
                    left: 0,
                    rel: StructRel::Includes,
                    right: 1,
                }],
            )
            .project(vec![0]);
        // ⊃_d ⊆ ⊃: the difference is empty on all models in bounds.
        assert!(ne.is_empty(&direct.clone().diff(loose.clone())));
        // The converse is not: ⊃ can hold transitively only.
        assert!(!ne.is_empty(&loose.diff(direct)));
        // BI(A, B, B) requires two distinct Bs inside an A.
        let bi = both_included_expr(
            NameId::from_index(0),
            NameId::from_index(1),
            NameId::from_index(1),
        );
        let w = ne.find_witness(&bi).unwrap();
        assert!(w.len() >= 3);
    }
}
