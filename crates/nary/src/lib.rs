//! # tr-nary — the Section 7 extension: n-ary relations and joins
//!
//! The paper's conclusion proposes extending the region algebra with
//! n-ary intermediate relations and genuine joins, observing that (a) the
//! extension corresponds to safe FMFT formulas, so emptiness testing and
//! optimization still work (Theorem 3.6 carries over, because the *input*
//! is still monadic), and (b) direct inclusion and both-included — both
//! inexpressible in the core algebra (Theorems 5.1/5.3) — become
//! expressible.
//!
//! This crate makes all of that executable:
//!
//! * [`Relation`] — sorted duplicate-free sets of fixed-arity region
//!   tuples;
//! * [`NExpr`] — the extended algebra (∪, ∩, −, ×, theta-σ with
//!   structural and pattern atoms, π), with arity checking and an
//!   evaluator;
//! * [`direct_including_expr`] / [`direct_included_expr`] /
//!   [`both_included_expr`] — Section 7's expressibility claims as
//!   concrete expressions, tested against the native operators;
//! * [`NEmptiness`] — bounded-model emptiness/equivalence over the same
//!   canonical model space as `tr_fmft::EmptinessChecker`.
//!
//! The paper's final caveat is also worth restating here: this extension
//! keeps the *word index out of the input relations* (patterns appear
//! only as fixed monadic predicates). Making the word index itself a
//! binary input relation would let queries join on region content, and
//! emptiness testing would become undecidable.

#![warn(missing_docs)]

pub mod emptiness;
pub mod expr;
pub mod relation;

pub use emptiness::NEmptiness;
pub use expr::{
    both_included_expr, direct_included_expr, direct_including_expr, Atom, NExpr, StructRel,
};
pub use relation::{Relation, Tuple};
