//! `trq serve <corpus-dir>` — run the tr-serve server in the foreground.
//!
//! The server binds, prints its address and catalog, and then waits for
//! EOF (or the line `quit`) on stdin before shutting down gracefully —
//! that makes it scriptable: `trq serve corpus/ < /dev/null` serves until
//! killed, and a test harness can hold the pipe open and close it to
//! trigger a drain.

use std::io::BufRead;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;
use tr_serve::{Catalog, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: trq serve <corpus-dir> [--addr HOST:PORT] [--workers N] \
         [--queue N] [--max-conns N] [--deadline-ms N] [--max-frame-bytes N] \
         [--watch-queue N] [--watch-coalesce-ms N]\n\
         serves every .trx/.sgml/.xml/.src/.txt file in <corpus-dir>; \
         EOF or \"quit\" on stdin shuts down gracefully"
    );
    std::process::exit(2);
}

pub fn run(args: &[String]) -> ExitCode {
    let mut dir: Option<&str> = None;
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |what: &str| -> usize {
            it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {what} needs a number");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = it.next().cloned().unwrap_or_else(|| usage()),
            "--workers" => cfg.workers = num("--workers").max(1),
            "--queue" => cfg.queue_capacity = num("--queue").max(1),
            "--max-conns" => cfg.max_connections = num("--max-conns").max(1),
            "--deadline-ms" => cfg.deadline = Duration::from_millis(num("--deadline-ms") as u64),
            "--max-frame-bytes" => cfg.max_frame_bytes = num("--max-frame-bytes").max(64),
            "--watch-queue" => cfg.watch_queue_capacity = num("--watch-queue").max(2),
            "--watch-coalesce-ms" => {
                cfg.watch_coalesce = Duration::from_millis(num("--watch-coalesce-ms") as u64)
            }
            "--help" | "-h" => usage(),
            _ if dir.is_none() => dir = Some(arg),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                usage()
            }
        }
    }
    let Some(dir) = dir else { usage() };

    let catalog = match Catalog::open(Path::new(dir)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let names: Vec<&str> = catalog.names().collect();
    println!("loaded {} document(s): {}", names.len(), names.join(", "));

    let server = match Server::start(catalog, addr.as_str(), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("tr-serve listening on {}", server.local_addr());
    println!("(EOF or \"quit\" on stdin shuts down gracefully)");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    println!("draining…");
    server.shutdown();
    println!("shutdown complete");
    ExitCode::SUCCESS
}
