//! `trq serve <corpus-dir>` — run the tr-serve server in the foreground.
//!
//! The server binds, prints its address and catalog, and then waits for
//! EOF (or the line `quit`) on stdin before shutting down gracefully —
//! that makes it scriptable: `trq serve corpus/ < /dev/null` serves until
//! killed, and a test harness can hold the pipe open and close it to
//! trigger a drain.
//!
//! `trq serve --route backends.toml` runs the scatter-gather **router**
//! instead: no corpus directory, just a routing file listing backend
//! instances (see [`tr_serve::router::parse_backends_toml`]). The same
//! stdin convention applies.

use std::io::BufRead;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;
use tr_serve::{Catalog, Router, RouterConfig, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: trq serve <corpus-dir> [--addr HOST:PORT] [--workers N] \
         [--queue N] [--max-conns N] [--deadline-ms N] [--max-frame-bytes N] \
         [--watch-queue N] [--watch-coalesce-ms N] [--max-corpus-bytes N]\n\
       or: trq serve --route <backends.toml> [--addr HOST:PORT]\n\
         serves every .trx/.sgml/.xml/.src/.txt file in <corpus-dir> \
         (refusing to start when the corpus exceeds --max-corpus-bytes), \
         or routes queries across the backends listed in <backends.toml>; \
         EOF or \"quit\" on stdin shuts down gracefully"
    );
    std::process::exit(2);
}

pub fn run(args: &[String]) -> ExitCode {
    let mut dir: Option<&str> = None;
    let mut route: Option<String> = None;
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut cfg = ServerConfig::default();
    let mut max_corpus_bytes: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |what: &str| -> usize {
            it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {what} needs a number");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = it.next().cloned().unwrap_or_else(|| usage()),
            "--route" => route = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--workers" => cfg.workers = num("--workers").max(1),
            "--queue" => cfg.queue_capacity = num("--queue").max(1),
            "--max-conns" => cfg.max_connections = num("--max-conns").max(1),
            "--deadline-ms" => cfg.deadline = Duration::from_millis(num("--deadline-ms") as u64),
            "--max-frame-bytes" => cfg.max_frame_bytes = num("--max-frame-bytes").max(64),
            "--watch-queue" => cfg.watch_queue_capacity = num("--watch-queue").max(2),
            "--watch-coalesce-ms" => {
                cfg.watch_coalesce = Duration::from_millis(num("--watch-coalesce-ms") as u64)
            }
            "--max-corpus-bytes" => max_corpus_bytes = Some(num("--max-corpus-bytes") as u64),
            "--help" | "-h" => usage(),
            _ if dir.is_none() => dir = Some(arg),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                usage()
            }
        }
    }

    if let Some(route) = route {
        if dir.is_some() {
            eprintln!("error: --route takes a backends file, not a corpus directory");
            usage();
        }
        return run_router(&route, &addr);
    }
    let Some(dir) = dir else { usage() };

    let catalog = match Catalog::open_capped(Path::new(dir), max_corpus_bytes) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let names: Vec<&str> = catalog.names().collect();
    println!("loaded {} document(s): {}", names.len(), names.join(", "));

    let server = match Server::start(catalog, addr.as_str(), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("tr-serve listening on {}", server.local_addr());
    println!("(EOF or \"quit\" on stdin shuts down gracefully)");

    wait_for_quit();
    println!("draining…");
    server.shutdown();
    println!("shutdown complete");
    ExitCode::SUCCESS
}

/// The router mode of `trq serve`: parse the backends file, fan in to
/// the configured instances, and serve the merged corpus.
fn run_router(route: &str, addr: &str) -> ExitCode {
    let text = match std::fs::read_to_string(route) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {route}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let specs = match tr_serve::parse_backends_toml(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {route}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
    println!(
        "routing across {} backend(s): {}",
        names.len(),
        names.join(", ")
    );
    let router = match Router::start(specs, addr, RouterConfig::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot start router on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "tr-serve routing {} document(s) on {}",
        router.num_docs(),
        router.local_addr()
    );
    println!("(EOF or \"quit\" on stdin shuts down gracefully)");

    wait_for_quit();
    println!("draining…");
    router.shutdown();
    println!("shutdown complete");
    ExitCode::SUCCESS
}

/// Blocks until stdin reaches EOF or a line saying `quit`.
fn wait_for_quit() {
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
}
