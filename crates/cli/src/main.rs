//! `trq` — query text regions from the command line.
//!
//! ```text
//! trq <file> [query ...]       run queries (REPL on stdin if none);
//!                              two or more queries run as one batch
//! trq stats <file> [query ...] run queries, then print an observability
//!                              report (phases, counters, histograms)
//! trq serve <corpus-dir>       serve every document in a directory over
//!                              TCP (newline-delimited JSON protocol)
//! trq connect [addr]           interactive client for a running server
//!
//! options:
//!   --format sgml|source|auto  document format (default: auto-detect;
//!                              persisted .trx indexes are detected by magic)
//!   --save <path>              persist the built index to <path> and exit
//!   --explain                  show the plan instead of running
//!   --limit N                  print at most N hits (default 20)
//!   --stats-json               emit per-phase timings, batch stats, and the
//!                              full metrics snapshot as JSON
//! ```
//!
//! REPL commands: `:schema`, `:explain <query>`, `:let <name> = <query>`,
//! `:stats`, `:quit`. `trq serve --help` / `trq connect --help` list the
//! server and client options.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use tr_obs::Json;
use tr_query::{BatchStats, Engine};

mod connect_cmd;
mod serve_cmd;

struct Options {
    stats_cmd: bool,
    file: Option<String>,
    queries: Vec<String>,
    format: Format,
    explain: bool,
    limit: usize,
    save: Option<String>,
    stats_json: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Auto,
    Sgml,
    Source,
}

fn usage() -> ! {
    eprintln!(
        "usage: trq [stats] <file> [query ...] [--format sgml|source|auto] \
         [--explain] [--limit N] [--stats-json]\n\
         \x20      trq serve <corpus-dir> [--addr HOST:PORT] [--workers N] …\n\
         \x20      trq connect [addr]"
    );
    std::process::exit(2);
}

fn parse_args(args: Vec<String>) -> Options {
    let mut opts = Options {
        stats_cmd: false,
        file: None,
        queries: Vec::new(),
        format: Format::Auto,
        explain: false,
        limit: 20,
        save: None,
        stats_json: false,
    };
    let mut args = args.into_iter().peekable();
    if args.peek().map(String::as_str) == Some("stats") {
        opts.stats_cmd = true;
        args.next();
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("sgml") => Format::Sgml,
                    Some("source") => Format::Source,
                    Some("auto") => Format::Auto,
                    _ => usage(),
                }
            }
            "--explain" => opts.explain = true,
            "--stats-json" => opts.stats_json = true,
            "--save" => opts.save = Some(args.next().unwrap_or_else(|| usage())),
            "--limit" => {
                opts.limit = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ if opts.file.is_none() => opts.file = Some(arg),
            _ => opts.queries.push(arg),
        }
    }
    opts
}

fn open_engine(path: &str, format: Format) -> Result<Engine, String> {
    // Persisted indexes are detected by their magic bytes (any format
    // generation — the shared `TRXIDX` prefix); the auto loader then
    // picks the mapped path for v3 and the streaming decoder otherwise.
    let raw = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if raw.starts_with(&tr_store::MAGIC[..6]) {
        let doc = tr_store::load_document_auto(path).map_err(|e| e.to_string())?;
        return Ok(Engine::from_stored(doc));
    }
    let text = String::from_utf8(raw).map_err(|_| format!("{path} is not UTF-8 text"))?;
    let format = match format {
        Format::Auto => {
            if text.trim_start().starts_with('<') {
                Format::Sgml
            } else {
                Format::Source
            }
        }
        f => f,
    };
    match format {
        Format::Sgml => Engine::from_sgml(&text).map_err(|e| e.to_string()),
        Format::Source => Engine::from_source(&text).map_err(|e| e.to_string()),
        Format::Auto => unreachable!(),
    }
}

fn print_hits(engine: &Engine, hits: &tr_core::RegionSet, limit: usize) {
    println!("{} hit(s)", hits.len());
    for r in hits.iter().take(limit) {
        let snippet: String = engine
            .snippet(r)
            .chars()
            .take(72)
            .map(|c| if c == '\n' { ' ' } else { c })
            .collect();
        println!("  {r}\t{snippet}");
    }
    if hits.len() > limit {
        println!("  … {} more (raise with --limit)", hits.len() - limit);
    }
}

fn run_query(engine: &Engine, query: &str, explain: bool, limit: usize) {
    if explain {
        match engine.explain(query) {
            Ok(plan) => println!("{plan}"),
            Err(e) => eprintln!("error: {e}"),
        }
        return;
    }
    match engine.query(query) {
        Ok(hits) => print_hits(engine, &hits, limit),
        Err(e) => eprintln!("error: {e}"),
    }
}

/// `BatchStats` as a JSON object.
fn batch_stats_json(stats: &BatchStats) -> Json {
    Json::obj()
        .with("queries", Json::from(stats.queries))
        .with("cache_hits", Json::from(stats.cache_hits))
        .with("distinct_nodes", Json::from(stats.distinct_nodes))
        .with("nodes_evaluated", Json::from(stats.nodes_evaluated))
        .with("threads", Json::from(stats.threads))
}

/// Per-phase wall times from the most recent `engine.batch` span tree.
fn phases_json() -> Json {
    let mut phases = Json::obj();
    if let Some(root) = tr_obs::last_root("engine.batch") {
        for child in &root.children {
            phases.set(
                child.name.trim_start_matches("engine."),
                Json::from(child.duration_ns),
            );
        }
        phases.set("total", Json::from(root.duration_ns));
    }
    phases
}

/// Runs `queries` as one batch, printing hits or the `--stats-json`
/// document. Returns false on error.
fn run_batch(engine: &Engine, queries: &[&str], limit: usize, stats_json: bool) -> bool {
    let (results, stats) = match engine.query_batch_with_stats(queries) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    if stats_json {
        let per_query = queries
            .iter()
            .zip(&results)
            .map(|(q, hits)| {
                Json::obj()
                    .with("query", Json::from(*q))
                    .with("hits", Json::from(hits.len()))
            })
            .collect();
        let doc = Json::obj()
            .with("queries", Json::Arr(per_query))
            .with("batch", batch_stats_json(&stats))
            .with("phases", phases_json())
            .with("obs", tr_obs::snapshot());
        print!("{}", doc.pretty());
        return true;
    }
    for (q, hits) in queries.iter().zip(&results) {
        if queries.len() > 1 {
            println!("▶ {q}");
        }
        print_hits(engine, hits, limit);
    }
    println!(
        "batch: {} queries, {} cache hits, {} distinct nodes, {} evaluated, {} thread(s)",
        stats.queries, stats.cache_hits, stats.distinct_nodes, stats.nodes_evaluated, stats.threads
    );
    true
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Human-readable observability report for the `stats` subcommand and the
/// REPL's `:stats` command.
fn print_stats_report() {
    if let Some(root) = tr_obs::last_root("engine.batch") {
        println!("last batch ({} total):", fmt_ns(root.duration_ns));
        fn walk(span: &tr_obs::FinishedSpan, depth: usize) {
            println!(
                "  {:indent$}{:<24} {:>12}",
                "",
                span.name,
                fmt_ns(span.duration_ns),
                indent = depth * 2
            );
            for c in &span.children {
                walk(c, depth + 1);
            }
        }
        walk(&root, 0);
    }
    println!("counters:");
    for (name, v) in tr_obs::counter_values() {
        if v > 0 {
            println!("  {name:<28} {v:>12}");
        }
    }
    println!("histograms (count / mean / p99 / max):");
    let snap = tr_obs::snapshot();
    if let Some(hists) = snap.get("histograms").and_then(Json::as_obj) {
        for (name, h) in hists {
            let get = |k: &str| h.get(k).and_then(Json::as_u64).unwrap_or(0);
            if get("count") == 0 {
                continue;
            }
            let mean = h.get("mean").and_then(Json::as_f64).unwrap_or(0.0) as u64;
            // Only duration-valued histograms get time units.
            let show: fn(u64) -> String = if name.ends_with("ns") || name.starts_with("span.") {
                fmt_ns
            } else {
                |v| v.to_string()
            };
            println!(
                "  {name:<28} {:>8} / {:>10} / {:>10} / {:>10}",
                get("count"),
                show(mean),
                show(get("p99")),
                show(get("max")),
            );
        }
    }
}

/// The `stats` subcommand: run the given queries (or a schema-derived
/// probe batch) and print the observability report.
fn run_stats_cmd(engine: &Engine, opts: &Options) -> bool {
    let probe: Vec<String>;
    let queries: Vec<&str> = if opts.queries.is_empty() {
        // No queries given: probe each region name. The batch runs twice
        // below, so the second round exercises the result cache.
        probe = engine.schema().names().take(4).map(str::to_owned).collect();
        probe.iter().map(String::as_str).collect()
    } else {
        opts.queries.iter().map(String::as_str).collect()
    };
    let rounds = if opts.queries.is_empty() { 2 } else { 1 };
    let mut outcome = None;
    for _ in 0..rounds {
        match engine.query_batch_with_stats(&queries) {
            Ok(out) => outcome = Some(out),
            Err(e) => {
                eprintln!("error: {e}");
                return false;
            }
        }
    }
    let (results, stats) = outcome.expect("at least one round ran");
    if opts.stats_json {
        let per_query = queries
            .iter()
            .zip(&results)
            .map(|(q, hits)| {
                Json::obj()
                    .with("query", Json::from(*q))
                    .with("hits", Json::from(hits.len()))
            })
            .collect();
        let doc = Json::obj()
            .with("queries", Json::Arr(per_query))
            .with("batch", batch_stats_json(&stats))
            .with("phases", phases_json())
            .with("obs", tr_obs::snapshot());
        print!("{}", doc.pretty());
        return true;
    }
    println!(
        "ran {} queries: {} cache hits, {} distinct nodes, {} evaluated\n",
        stats.queries, stats.cache_hits, stats.distinct_nodes, stats.nodes_evaluated
    );
    print_stats_report();
    true
}

fn repl(mut engine: Engine, limit: usize) {
    println!(
        "indexed {} regions; names: {}",
        engine.instance().len(),
        engine.schema().names().collect::<Vec<_>>().join(", ")
    );
    println!("enter queries (:schema, :explain <q>, :let <name> = <q>, :stats, :quit)");
    let stdin = std::io::stdin();
    loop {
        print!("trq> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":schema" {
            for name in engine.schema().names() {
                println!(
                    "  {name}  ({} regions)",
                    engine.instance().regions_of_name(name).len()
                );
            }
            for v in engine.views() {
                println!("  {v}  (view)");
            }
            continue;
        }
        if line == ":stats" {
            print_stats_report();
            continue;
        }
        if let Some(q) = line.strip_prefix(":explain ") {
            run_query(&engine, q, true, limit);
            continue;
        }
        if let Some(rest) = line.strip_prefix(":let ") {
            match rest.split_once('=') {
                Some((name, def)) => match engine.define_view(name.trim(), def.trim()) {
                    Ok(()) => println!("view {} defined", name.trim()),
                    Err(e) => eprintln!("error: {e}"),
                },
                None => eprintln!("usage: :let <name> = <query>"),
            }
            continue;
        }
        run_query(&engine, line, false, limit);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return serve_cmd::run(&args[1..]),
        Some("connect") => return connect_cmd::run(&args[1..]),
        _ => {}
    }
    let opts = parse_args(args);
    let Some(file) = &opts.file else { usage() };
    let engine = match open_engine(file, opts.format) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.stats_cmd {
        return if run_stats_cmd(&engine, &opts) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if let Some(out) = &opts.save {
        match tr_store::save_document(out, engine.text(), engine.instance(), engine.rig()) {
            Ok(()) => {
                println!("index saved to {out} ({} regions)", engine.instance().len());
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: cannot save {out}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match opts.queries.len() {
        0 => repl(engine, opts.limit),
        1 if !opts.stats_json => run_query(&engine, &opts.queries[0], opts.explain, opts.limit),
        _ => {
            if opts.explain {
                for q in &opts.queries {
                    run_query(&engine, q, true, opts.limit);
                }
            } else {
                let queries: Vec<&str> = opts.queries.iter().map(String::as_str).collect();
                if !run_batch(&engine, &queries, opts.limit, opts.stats_json) {
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
