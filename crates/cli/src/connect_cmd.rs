//! `trq connect [addr]` — interactive client for a running tr-serve.
//!
//! The REPL keeps a *current document* (`:use <doc>` switches it) and
//! sends every plain line as a query against it. Session views defined
//! with `:let` live on the server for exactly this connection.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use tr_obs::Json;
use tr_serve::{Client, ClientError};

fn usage() -> ! {
    eprintln!("usage: trq connect [HOST:PORT]   (default 127.0.0.1:7878)");
    std::process::exit(2);
}

pub fn run(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_owned();
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            a => addr = a.to_owned(),
        }
    }
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let docs = match client.list_docs() {
        Ok(reply) => doc_names(&reply),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("connected to {addr}; documents: {}", docs.join(", "));
    let mut current = match docs.first() {
        Some(d) => d.clone(),
        None => {
            eprintln!("error: server has no documents");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "querying {current:?} (:use <doc>, :docs, :explain <q>, :batch <q>; <q>…, \
         :let <name> = <q>, :stats, :mutate …, :watch <q>, :unwatch <id>, :events, :quit)"
    );

    let stdin = std::io::stdin();
    loop {
        print!("{current}> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        let outcome = dispatch(&mut client, &mut current, line);
        match outcome {
            Ok(()) => {}
            Err(ClientError::Io(e)) => {
                eprintln!("connection lost: {e}");
                return ExitCode::FAILURE;
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
    ExitCode::SUCCESS
}

fn dispatch(client: &mut Client, current: &mut String, line: &str) -> Result<(), ClientError> {
    if line == ":docs" {
        let reply = client.list_docs()?;
        for doc in reply.get("docs").and_then(Json::as_arr).unwrap_or(&[]) {
            let name = doc.get("name").and_then(Json::as_str).unwrap_or("?");
            let regions = doc.get("regions").and_then(Json::as_u64).unwrap_or(0);
            println!("  {name}  ({regions} regions)");
        }
        return Ok(());
    }
    if let Some(doc) = line.strip_prefix(":use ") {
        // Validate by running a no-op against the catalog.
        let reply = client.list_docs()?;
        let names = doc_names(&reply);
        let doc = doc.trim();
        if names.iter().any(|n| n == doc) {
            *current = doc.to_owned();
            println!("now querying {doc:?}");
        } else {
            println!("no such document {doc:?} (have: {})", names.join(", "));
        }
        return Ok(());
    }
    if line == ":stats" {
        let reply = client.stats()?;
        print!("{}", reply.pretty());
        return Ok(());
    }
    if line == ":ping" {
        client.ping()?;
        println!("pong");
        return Ok(());
    }
    if let Some(q) = line.strip_prefix(":explain ") {
        let reply = client.explain(current, q)?;
        println!("{}", reply.get("text").and_then(Json::as_str).unwrap_or(""));
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix(":let ") {
        match rest.split_once('=') {
            Some((name, def)) => {
                client.define_view(current, name.trim(), def.trim())?;
                println!("view {} defined (this session only)", name.trim());
            }
            None => eprintln!("usage: :let <name> = <query>"),
        }
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix(":batch ") {
        let queries: Vec<&str> = rest
            .split(';')
            .map(str::trim)
            .filter(|q| !q.is_empty())
            .collect();
        let reply = client.batch(current, &queries)?;
        let empty = vec![];
        let results = reply
            .get("results")
            .and_then(Json::as_arr)
            .unwrap_or(&empty);
        for (q, result) in queries.iter().zip(results) {
            println!("▶ {q}");
            print_result(result);
        }
        if let Some(batch) = reply.get("batch") {
            let get = |k: &str| batch.get(k).and_then(Json::as_u64).unwrap_or(0);
            println!(
                "batch: {} queries, {} cache hits, {} distinct nodes, {} evaluated",
                get("queries"),
                get("cache_hits"),
                get("distinct_nodes"),
                get("nodes_evaluated"),
            );
        }
        return Ok(());
    }
    if let Some(q) = line.strip_prefix(":watch ") {
        let reply = client.watch(current, q.trim())?;
        let id = reply.get("watch").and_then(Json::as_u64).unwrap_or(0);
        println!("watch {id} registered; baseline:");
        print_result(&reply);
        println!("(use :events to read diffs, :unwatch {id} to cancel)");
        return Ok(());
    }
    if let Some(id) = line.strip_prefix(":unwatch ") {
        match id.trim().parse::<u64>() {
            Ok(id) => {
                client.unwatch(id)?;
                println!("watch {id} cancelled");
            }
            Err(_) => eprintln!("usage: :unwatch <id>"),
        }
        return Ok(());
    }
    if line == ":events" {
        drain_events(client)?;
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix(":mutate ") {
        match parse_mutate(rest.trim()) {
            Ok(edit) => {
                let reply = client.mutate(current, Json::Arr(vec![edit]))?;
                let get = |k: &str| reply.get(k).and_then(Json::as_u64).unwrap_or(0);
                println!(
                    "generation {} ({} segment(s) reindexed, {} reused, cache {} kept / {} dropped)",
                    get("generation"),
                    get("segments_reindexed"),
                    get("segments_reused"),
                    get("cache_kept"),
                    get("cache_dropped"),
                );
            }
            Err(why) => eprintln!("{why}"),
        }
        return Ok(());
    }
    let reply = client.query(current, line)?;
    print_result(&reply);
    Ok(())
}

/// Parses the REPL's mutate shorthand into one protocol edit object:
/// `append <text>`, `splice <at> <delete> [text]`,
/// `add-region <name> <l> <r>`, `remove-region <name> <l> <r>`.
fn parse_mutate(rest: &str) -> Result<Json, String> {
    const USAGE: &str = "usage: :mutate append <text> | :mutate splice <at> <delete> [text] \
                         | :mutate add-region <name> <l> <r> | :mutate remove-region <name> <l> <r>";
    let (kind, tail) = rest.split_once(' ').unwrap_or((rest, ""));
    let tail = tail.trim();
    match kind {
        "append" => {
            if tail.is_empty() {
                return Err(USAGE.to_owned());
            }
            Ok(Json::obj()
                .with("kind", Json::from("append"))
                .with("text", Json::from(tail)))
        }
        "splice" => {
            let mut words = tail.splitn(3, ' ');
            let at = words.next().and_then(|w| w.parse::<u64>().ok());
            let delete = words.next().and_then(|w| w.parse::<u64>().ok());
            match (at, delete) {
                (Some(at), Some(delete)) => Ok(Json::obj()
                    .with("kind", Json::from("splice"))
                    .with("at", Json::from(at))
                    .with("delete", Json::from(delete))
                    .with("insert", Json::from(words.next().unwrap_or("")))),
                _ => Err(USAGE.to_owned()),
            }
        }
        "add-region" | "remove-region" => {
            let parts: Vec<&str> = tail.split_whitespace().collect();
            let [name, l, r] = parts.as_slice() else {
                return Err(USAGE.to_owned());
            };
            match (l.parse::<u64>(), r.parse::<u64>()) {
                (Ok(l), Ok(r)) => Ok(Json::obj()
                    .with("kind", Json::from(kind))
                    .with("name", Json::from(*name))
                    .with("left", Json::from(l))
                    .with("right", Json::from(r))),
                _ => Err(USAGE.to_owned()),
            }
        }
        _ => Err(USAGE.to_owned()),
    }
}

/// Prints every watch event already buffered or arriving within a short
/// poll window; a read timeout ends the drain (it is not an error).
fn drain_events(client: &mut Client) -> Result<(), ClientError> {
    client
        .set_read_timeout(Some(std::time::Duration::from_millis(150)))
        .ok();
    let mut n = 0usize;
    let outcome = loop {
        match client.next_event() {
            Ok(ev) => {
                n += 1;
                print_event(&ev);
            }
            Err(ClientError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break Ok(())
            }
            Err(e) => break Err(e),
        }
    };
    client.set_read_timeout(None).ok();
    if n == 0 && outcome.is_ok() {
        println!("(no pending events)");
    }
    outcome
}

fn print_event(ev: &Json) {
    let kind = ev.get("ev").and_then(Json::as_str).unwrap_or("?");
    let watch = ev.get("watch").and_then(Json::as_u64).unwrap_or(0);
    let generation = ev.get("generation").and_then(Json::as_u64).unwrap_or(0);
    match kind {
        "watch" => {
            let count = |k: &str| {
                ev.get(k)
                    .and_then(Json::as_arr)
                    .map(|a| a.len())
                    .unwrap_or(0)
            };
            println!(
                "watch {watch} @ gen {generation}: +{} -{} ({} hit(s) now)",
                count("added"),
                count("removed"),
                ev.get("hits").and_then(Json::as_u64).unwrap_or(0),
            );
        }
        "watch-lagged" => println!(
            "watch {watch} @ gen {generation}: LAGGED — {} event(s) dropped, re-run the query",
            ev.get("dropped").and_then(Json::as_u64).unwrap_or(0),
        ),
        "watch-error" => println!(
            "watch {watch}: ERROR {} (watch cancelled)",
            ev.get("message").and_then(Json::as_str).unwrap_or("?"),
        ),
        other => println!("event {other:?}: {ev}"),
    }
}

fn print_result(result: &Json) {
    let hits = result.get("hits").and_then(Json::as_u64).unwrap_or(0);
    println!("{hits} hit(s)");
    let empty = vec![];
    let regions = result
        .get("regions")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    for r in regions.iter().take(20) {
        if let Some(pair) = r.as_arr() {
            if let (Some(l), Some(rr)) = (
                pair.first().and_then(Json::as_u64),
                pair.get(1).and_then(Json::as_u64),
            ) {
                println!("  [{l}, {rr}]");
            }
        }
    }
    if regions.len() > 20 {
        println!("  … {} more shown server-side", regions.len() - 20);
    }
    if result.get("truncated").is_some() {
        println!("  (region list truncated by the server)");
    }
}

fn doc_names(reply: &Json) -> Vec<String> {
    reply
        .get("docs")
        .and_then(Json::as_arr)
        .map(|docs| {
            docs.iter()
                .filter_map(|d| d.get("name").and_then(Json::as_str).map(str::to_owned))
                .collect()
        })
        .unwrap_or_default()
}
