//! The pattern language.
//!
//! The paper abstracts over the pattern language of the word index
//! (Definition 2.1 only assumes a predicate `W(r, p)`). We provide the
//! three forms PAT-style engines support:
//!
//! * `word` — an exact word (token) match;
//! * `word*` — a word-prefix match (PAT's native sistring-prefix semantics);
//! * anything containing a non-word byte — a literal substring match.

use crate::tokenize::is_word_byte;

/// A parsed pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Exact token match: the text contains this word bounded by non-word
    /// bytes (or text boundaries).
    WordExact(String),
    /// Word-prefix match: a token starting with the stem.
    WordPrefix(String),
    /// Literal substring match anywhere in the text.
    Substring(String),
}

impl Pattern {
    /// Parses the textual pattern syntax described at the module level.
    pub fn parse(s: &str) -> Pattern {
        if let Some(stem) = s.strip_suffix('*') {
            if !stem.is_empty() && stem.bytes().all(is_word_byte) {
                return Pattern::WordPrefix(stem.to_owned());
            }
        }
        if !s.is_empty() && s.bytes().all(is_word_byte) {
            Pattern::WordExact(s.to_owned())
        } else {
            Pattern::Substring(s.to_owned())
        }
    }

    /// The bytes to search the suffix array for.
    pub fn needle(&self) -> &[u8] {
        match self {
            Pattern::WordExact(s) | Pattern::WordPrefix(s) | Pattern::Substring(s) => s.as_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_forms() {
        assert_eq!(Pattern::parse("cat"), Pattern::WordExact("cat".into()));
        assert_eq!(Pattern::parse("cat*"), Pattern::WordPrefix("cat".into()));
        assert_eq!(
            Pattern::parse("cat sat"),
            Pattern::Substring("cat sat".into())
        );
        assert_eq!(Pattern::parse("a.b"), Pattern::Substring("a.b".into()));
        // A bare `*` has no stem: treated as a substring literal.
        assert_eq!(Pattern::parse("*"), Pattern::Substring("*".into()));
        assert_eq!(Pattern::parse(""), Pattern::Substring(String::new()));
    }
}
