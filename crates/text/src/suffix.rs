//! A suffix array over the indexed text.
//!
//! This is the workspace's substitute for the PAT engine's Patricia tree
//! over *sistrings* (semi-infinite strings): both structures answer "at
//! which positions does the text have `p` as a prefix of the suffix
//! starting there?" in logarithmic time. Construction uses prefix doubling
//! (O(n log² n)), which is ample for the in-memory corpora of the paper's
//! setting.

/// A suffix array over a byte string.
#[derive(Debug, Clone)]
pub struct SuffixArray {
    text: Vec<u8>,
    /// Suffix start offsets, sorted by the lexicographic order of the
    /// suffixes they start.
    sa: Vec<u32>,
}

impl SuffixArray {
    /// Builds the suffix array for `text`.
    pub fn new(text: impl Into<Vec<u8>>) -> SuffixArray {
        let text = text.into();
        assert!(
            text.len() <= u32::MAX as usize,
            "text too large for u32 offsets"
        );
        let sa = build(&text);
        SuffixArray { text, sa }
    }

    /// Builds a suffix array restricted to the given start positions
    /// (PAT's *word index*: only word-start sistrings are indexed).
    /// `starts` need not be sorted.
    pub fn with_starts(text: impl Into<Vec<u8>>, starts: Vec<u32>) -> SuffixArray {
        let text = text.into();
        assert!(text.len() <= u32::MAX as usize);
        let mut sa = starts;
        sa.retain(|&s| (s as usize) < text.len());
        sa.sort_unstable_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        SuffixArray { text, sa }
    }

    /// Reassembles a suffix array from previously computed parts (e.g. a
    /// persisted index). The caller must pass the exact array produced by
    /// [`SuffixArray::new`] for the same text; this is verified in debug
    /// builds and can be verified explicitly with
    /// [`SuffixArray::is_consistent`].
    pub fn from_parts(text: Vec<u8>, sa: Vec<u32>) -> SuffixArray {
        let out = SuffixArray { text, sa };
        debug_assert!(
            out.is_consistent(),
            "persisted suffix array does not match text"
        );
        out
    }

    /// The raw suffix start offsets, in lexicographic suffix order.
    pub fn raw(&self) -> &[u32] {
        &self.sa
    }

    /// True if the stored offsets are a valid full suffix array of the
    /// text (sorted, a permutation of 0..n). O(n log n)-ish; used when
    /// loading persisted indexes from untrusted files.
    pub fn is_consistent(&self) -> bool {
        if self.sa.len() != self.text.len() {
            return false;
        }
        let mut seen = vec![false; self.sa.len()];
        for &s in &self.sa {
            match seen.get_mut(s as usize) {
                Some(slot) if !*slot => *slot = true,
                _ => return false,
            }
        }
        self.sa
            .windows(2)
            .all(|w| self.text[w[0] as usize..] <= self.text[w[1] as usize..])
    }

    /// The indexed text.
    #[inline]
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// Number of indexed suffixes.
    #[inline]
    pub fn len(&self) -> usize {
        self.sa.len()
    }

    /// True if no suffixes are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sa.is_empty()
    }

    /// The half-open range of suffix-array slots whose suffixes start with
    /// `pattern`.
    pub fn range(&self, pattern: &[u8]) -> std::ops::Range<usize> {
        let lo = self.sa.partition_point(|&s| self.suffix(s) < pattern);
        let hi = lo
            + self.sa[lo..].partition_point(|&s| {
                self.suffix(s).starts_with(pattern) || self.suffix(s) < pattern
            });
        lo..hi
    }

    /// All start positions of `pattern` in the indexed suffixes, unsorted
    /// (suffix-array order).
    pub fn positions(&self, pattern: &[u8]) -> &[u32] {
        let r = self.range(pattern);
        &self.sa[r]
    }

    /// All start positions of `pattern`, sorted ascending.
    pub fn positions_sorted(&self, pattern: &[u8]) -> Vec<u32> {
        let mut v = self.positions(pattern).to_vec();
        v.sort_unstable();
        v
    }

    /// Number of occurrences of `pattern`.
    pub fn count(&self, pattern: &[u8]) -> usize {
        self.range(pattern).len()
    }

    /// True if `pattern` occurs at least once.
    pub fn contains(&self, pattern: &[u8]) -> bool {
        !self.range(pattern).is_empty()
    }

    #[inline]
    fn suffix(&self, start: u32) -> &[u8] {
        &self.text[start as usize..]
    }
}

/// Prefix-doubling suffix array construction.
fn build(text: &[u8]) -> Vec<u32> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    let mut sa: Vec<u32> = (0..n as u32).collect();
    let mut rank: Vec<u32> = text.iter().map(|&b| u32::from(b)).collect();
    let mut tmp = vec![0u32; n];
    let mut k = 1usize;
    loop {
        // Rank of the suffix starting k positions later (or 0 sentinel,
        // encoded as rank+1 so that "past the end" sorts first).
        let key = |i: u32| -> (u32, u32) {
            let i = i as usize;
            let second = if i + k < n { rank[i + k] + 1 } else { 0 };
            (rank[i], second)
        };
        sa.sort_unstable_by_key(|&i| key(i));
        tmp[sa[0] as usize] = 0;
        for w in 1..n {
            let prev = sa[w - 1];
            let cur = sa[w];
            tmp[cur as usize] = tmp[prev as usize] + u32::from(key(prev) != key(cur));
        }
        std::mem::swap(&mut rank, &mut tmp);
        if rank[sa[n - 1] as usize] as usize == n - 1 {
            break;
        }
        k *= 2;
    }
    sa
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banana() {
        let sa = SuffixArray::new(&b"banana"[..]);
        // Suffixes sorted: a, ana, anana, banana, na, nana
        assert_eq!(sa.positions_sorted(b"ana"), vec![1, 3]);
        assert_eq!(sa.positions_sorted(b"na"), vec![2, 4]);
        assert_eq!(sa.count(b"a"), 3);
        assert_eq!(sa.count(b"banana"), 1);
        assert_eq!(sa.count(b"x"), 0);
        assert!(sa.contains(b"nan"));
        assert!(!sa.contains(b"nab"));
    }

    #[test]
    fn empty_pattern_matches_everywhere() {
        let sa = SuffixArray::new(&b"abc"[..]);
        assert_eq!(sa.count(b""), 3);
    }

    #[test]
    fn empty_text() {
        let sa = SuffixArray::new(Vec::new());
        assert_eq!(sa.count(b"a"), 0);
        assert!(sa.is_empty());
    }

    #[test]
    fn matches_scan_on_random_text() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(1..200);
            let text: Vec<u8> = (0..n).map(|_| *b"abc".choose(&mut rng).unwrap()).collect();
            let sa = SuffixArray::new(text.clone());
            for plen in 1..4 {
                let start = rng.gen_range(0..n);
                let pat: Vec<u8> = text[start..(start + plen).min(n)].to_vec();
                let expect: Vec<u32> = (0..=text.len().saturating_sub(pat.len()))
                    .filter(|&i| text[i..].starts_with(&pat))
                    .map(|i| i as u32)
                    .collect();
                assert_eq!(
                    sa.positions_sorted(&pat),
                    expect,
                    "text {text:?} pat {pat:?}"
                );
            }
        }
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let text = b"banana".to_vec();
        let sa = SuffixArray::new(text.clone());
        let rebuilt = SuffixArray::from_parts(text.clone(), sa.raw().to_vec());
        assert!(rebuilt.is_consistent());
        assert_eq!(rebuilt.positions_sorted(b"an"), sa.positions_sorted(b"an"));
        // Tampered offsets are detected.
        let mut bad = sa.raw().to_vec();
        bad.swap(0, 1);
        let broken = SuffixArray { text, sa: bad };
        assert!(!broken.is_consistent());
    }

    #[test]
    fn word_start_restriction() {
        let text = b"the cat sat on the mat";
        let starts = vec![0, 4, 8, 12, 15, 19];
        let sa = SuffixArray::with_starts(&text[..], starts);
        // "at" occurs inside cat/sat/mat but never at a word start.
        assert_eq!(sa.count(b"at"), 0);
        assert_eq!(sa.positions_sorted(b"the"), vec![0, 15]);
        assert_eq!(sa.positions_sorted(b"c"), vec![4]);
    }
}
