//! Tokenization: locating word boundaries in the indexed text.
//!
//! PAT's word index records the sistrings that begin at word starts; this
//! module computes those starts and the token extents used by region
//! builders in `tr-markup`.

/// A token: a maximal run of word bytes (ASCII alphanumerics, `_`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Byte offset of the first byte.
    pub start: u32,
    /// Byte offset one past the last byte.
    pub end: u32,
}

impl Token {
    /// The token's text within `text`.
    pub fn slice<'a>(&self, text: &'a [u8]) -> &'a [u8] {
        &text[self.start as usize..self.end as usize]
    }

    /// Length in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Tokens are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// True for bytes considered part of a word.
#[inline]
pub fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// All tokens of `text`, in order.
pub fn tokens(text: &[u8]) -> Vec<Token> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < text.len() {
        if is_word_byte(text[i]) {
            let start = i;
            while i < text.len() && is_word_byte(text[i]) {
                i += 1;
            }
            out.push(Token {
                start: start as u32,
                end: i as u32,
            });
        } else {
            i += 1;
        }
    }
    out
}

/// The word-start offsets of `text` (PAT's word-index sistring starts).
pub fn word_starts(text: &[u8]) -> Vec<u32> {
    tokens(text).into_iter().map(|t| t.start).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_non_word_bytes() {
        let text = b"the cat, sat_on 2 mats!";
        let toks = tokens(text);
        let words: Vec<&[u8]> = toks.iter().map(|t| t.slice(text)).collect();
        assert_eq!(words, vec![&b"the"[..], b"cat", b"sat_on", b"2", b"mats"]);
        assert_eq!(word_starts(text), vec![0, 4, 9, 16, 18]);
    }

    #[test]
    fn empty_and_all_punctuation() {
        assert!(tokens(b"").is_empty());
        assert!(tokens(b" ,.;!").is_empty());
    }

    #[test]
    fn token_at_end_of_text() {
        let toks = tokens(b"abc");
        assert_eq!(toks, vec![Token { start: 0, end: 3 }]);
        assert_eq!(toks[0].len(), 3);
    }
}
