//! [`SuffixWordIndex`]: a [`WordIndex`] over real text, backed by a suffix
//! array — the workspace's stand-in for the PAT engine's sistring index.
//!
//! `σ_p` evaluates `W(r, p)` once per candidate region with the *same*
//! pattern, so the index memoizes the sorted occurrence list per pattern;
//! after the first lookup each `W(r, p)` test is a binary search.
//!
//! # Live documents: the sharded backing
//!
//! The index has two interchangeable backings behind one API:
//!
//! * **Whole** — a single suffix array over the full text. This is what
//!   [`SuffixWordIndex::new`] and [`SuffixWordIndex::from_suffix_array`]
//!   build, and it is bit-for-bit the pre-live-documents behavior.
//! * **Sharded** — the text cut into contiguous shards (one per
//!   `tr_core::seg` segment, with cuts *snapped* forward so no word
//!   straddles a cut), each shard carrying its own local suffix array,
//!   word-start table, and pattern memo behind an `Arc`.
//!
//! The sharded backing exists for [`SuffixWordIndex::spliced`]: an edit
//! re-tokenizes and re-indexes only the shards it touches, while clean
//! shards are reused by bumping their `Arc` — including their memoized
//! pattern occurrence lists. The reuse is counter-proven:
//! `mutate.segments_reindexed` / `mutate.segments_reused` record exactly
//! how many shards each splice rebuilt vs. recycled.
//!
//! Snapped cuts make shard-local answers globally correct for word
//! patterns (a word never spans two shards, so word-boundary checks at
//! shard edges agree with the whole-text checks); substring patterns
//! additionally get a boundary patch scan over the `±needle` window at
//! each interior cut to find occurrences that straddle it.

use crate::pattern::Pattern;
use crate::suffix::SuffixArray;
use crate::tokenize::{is_word_byte, word_starts};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};
use tr_core::{Region, WordIndex};

/// Cached handles into the `tr_obs` metrics registry.
struct TextMetrics {
    /// `text.index.builds` / `text.index.bytes`: indexes built, bytes in.
    builds: Arc<tr_obs::Counter>,
    bytes: Arc<tr_obs::Counter>,
    /// `text.pattern.cache_hits` / `text.pattern.computed`: memoized
    /// occurrence-list reuse vs fresh suffix-array scans.
    pattern_hits: Arc<tr_obs::Counter>,
    pattern_computed: Arc<tr_obs::Counter>,
    /// `text.index.build_ns` / `text.pattern.compute_ns`: wall times.
    build_ns: Arc<tr_obs::Histogram>,
    compute_ns: Arc<tr_obs::Histogram>,
    /// `mutate.segments_reindexed` / `mutate.segments_reused`: shards
    /// rebuilt vs. Arc-recycled per [`SuffixWordIndex::spliced`] call —
    /// the ledger proving incremental maintenance is real.
    segments_reindexed: Arc<tr_obs::Counter>,
    segments_reused: Arc<tr_obs::Counter>,
    /// `mutate.reindex_ns`: wall time of each incremental reindex.
    reindex_ns: Arc<tr_obs::Histogram>,
}

impl TextMetrics {
    fn get() -> &'static TextMetrics {
        static METRICS: OnceLock<TextMetrics> = OnceLock::new();
        METRICS.get_or_init(|| TextMetrics {
            builds: tr_obs::counter("text.index.builds"),
            bytes: tr_obs::counter("text.index.bytes"),
            pattern_hits: tr_obs::counter("text.pattern.cache_hits"),
            pattern_computed: tr_obs::counter("text.pattern.computed"),
            build_ns: tr_obs::histogram("text.index.build_ns"),
            compute_ns: tr_obs::histogram("text.pattern.compute_ns"),
            segments_reindexed: tr_obs::counter("mutate.segments_reindexed"),
            segments_reused: tr_obs::counter("mutate.segments_reused"),
            reindex_ns: tr_obs::histogram("mutate.reindex_ns"),
        })
    }
}

/// An occurrence of a pattern: `(start offset, byte length)`.
pub type Occurrence = (u32, u32);

type PatternCache = RwLock<HashMap<String, Arc<Vec<Occurrence>>>>;

/// What one [`SuffixWordIndex::spliced`] call rebuilt vs. recycled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReindexStats {
    /// Shards whose suffix array was rebuilt (the dirty ones).
    pub segments_reindexed: usize,
    /// Shards reused verbatim via their `Arc` (clean ones).
    pub segments_reused: usize,
}

/// A suffix-array-backed word index over a text buffer.
///
/// Internally `Arc`-shared: [`Clone`] is a reference-count bump, so the
/// index can be held by an old engine generation and a new one at once.
pub struct SuffixWordIndex {
    inner: Arc<Inner>,
}

impl Clone for SuffixWordIndex {
    fn clone(&self) -> SuffixWordIndex {
        SuffixWordIndex {
            inner: Arc::clone(&self.inner),
        }
    }
}

struct Inner {
    backing: Backing,
    /// pattern string → sorted whole-document occurrences, memoized.
    cache: PatternCache,
}

enum Backing {
    /// One suffix array over the full text (the immutable fast path).
    Whole { sa: SuffixArray, starts: Vec<u32> },
    /// The text cut into shards at snapped segment boundaries.
    Sharded {
        text: Vec<u8>,
        shards: Vec<ShardSlot>,
        /// Whole-text suffix array, built lazily only if persistence
        /// ([`SuffixWordIndex::suffix_array`]) asks for it.
        whole: OnceLock<SuffixArray>,
    },
}

/// One shard placed at its global byte offset.
struct ShardSlot {
    base: u32,
    shard: Arc<Shard>,
}

impl ShardSlot {
    fn lo(&self) -> usize {
        self.base as usize
    }

    fn hi(&self) -> usize {
        self.base as usize + self.shard.len()
    }
}

/// A self-contained index over one contiguous slice of the text, in
/// *local* coordinates. Reused across generations via `Arc` — including
/// its memoized pattern lists.
struct Shard {
    sa: SuffixArray,
    starts: Vec<u32>,
    cache: PatternCache,
}

impl Shard {
    fn new(slice: &[u8]) -> Shard {
        Shard {
            sa: SuffixArray::new(slice.to_vec()),
            starts: word_starts(slice),
            cache: RwLock::new(HashMap::new()),
        }
    }

    fn len(&self) -> usize {
        self.sa.text().len()
    }

    /// Local occurrences of `pattern`, memoized per shard so clean shards
    /// answer repeated patterns across generations without re-scanning.
    fn occurrences(&self, pattern: &str, p: &Pattern) -> Arc<Vec<Occurrence>> {
        if let Some(hit) = read_cache(&self.cache).get(pattern) {
            return Arc::clone(hit);
        }
        let computed = Arc::new(compute_on(&self.sa, &self.starts, p));
        Arc::clone(
            self.cache
                .write()
                .unwrap_or_else(|poison| poison.into_inner())
                .entry(pattern.to_owned())
                .or_insert(computed),
        )
    }
}

fn read_cache(
    cache: &PatternCache,
) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<Vec<Occurrence>>>> {
    cache.read().unwrap_or_else(|poison| poison.into_inner())
}

/// True when cutting the text at `c` splits no word: the cut is at a text
/// edge or between bytes that are not both word bytes.
fn cut_is_snapped(text: &[u8], c: usize) -> bool {
    c == 0 || c >= text.len() || !(is_word_byte(text[c - 1]) && is_word_byte(text[c]))
}

/// Advances `c` forward to the nearest snapped cut (worst case the text
/// end, for a text that is one giant word).
fn snap(text: &[u8], mut c: usize) -> usize {
    while !cut_is_snapped(text, c) {
        c += 1;
    }
    c
}

/// The canonical shard cuts for a text: the `tr_core::seg` segment bounds
/// with every interior cut snapped forward, deduplicated. Monotone
/// because `snap` is (it maps each position to the next snapped one).
fn canonical_cuts(text: &[u8]) -> Vec<usize> {
    let n = tr_core::seg::segment_count_for(text.len());
    let mut cuts: Vec<usize> = tr_core::seg::segment_bounds(text.len(), n)
        .iter()
        .map(|&b| b as usize)
        .collect();
    for c in cuts.iter_mut().take(n).skip(1) {
        *c = snap(text, *c);
    }
    cuts.dedup();
    cuts
}

/// Builds shard slots for `text` over the given monotone cuts
/// (`cuts[0] == offset of first shard`, last cut == end), skipping empty
/// windows.
fn build_slots(text: &[u8], cuts: &[usize]) -> Vec<ShardSlot> {
    cuts.windows(2)
        .filter(|w| w[1] > w[0])
        .map(|w| ShardSlot {
            base: w[0] as u32,
            shard: Arc::new(Shard::new(&text[w[0]..w[1]])),
        })
        .collect()
}

impl SuffixWordIndex {
    /// Indexes `text`.
    pub fn new(text: impl Into<Vec<u8>>) -> SuffixWordIndex {
        let _span = tr_obs::span("text.index.build");
        let started = std::time::Instant::now();
        let text = text.into();
        let metrics = TextMetrics::get();
        metrics.builds.inc();
        metrics.bytes.add(text.len() as u64);
        let starts = word_starts(&text);
        let built = SuffixWordIndex {
            inner: Arc::new(Inner {
                backing: Backing::Whole {
                    sa: SuffixArray::new(text),
                    starts,
                },
                cache: RwLock::new(HashMap::new()),
            }),
        };
        metrics.build_ns.record(started.elapsed().as_nanos() as u64);
        built
    }

    /// Wraps a previously built [`SuffixArray`] (e.g. loaded from disk),
    /// recomputing the cheap word-start table.
    pub fn from_suffix_array(sa: SuffixArray) -> SuffixWordIndex {
        let starts = word_starts(sa.text());
        SuffixWordIndex {
            inner: Arc::new(Inner {
                backing: Backing::Whole { sa, starts },
                cache: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// The underlying suffix array (for persistence). On a sharded index
    /// (one that has been [`spliced`](SuffixWordIndex::spliced)) the
    /// whole-text array is built lazily on first call and cached, so
    /// saving a mutated document costs one full build, not one per save.
    pub fn suffix_array(&self) -> &SuffixArray {
        match &self.inner.backing {
            Backing::Whole { sa, .. } => sa,
            Backing::Sharded { text, whole, .. } => {
                whole.get_or_init(|| SuffixArray::new(text.clone()))
            }
        }
    }

    /// The indexed text.
    pub fn text(&self) -> &[u8] {
        match &self.inner.backing {
            Backing::Whole { sa, .. } => sa.text(),
            Backing::Sharded { text, .. } => text,
        }
    }

    /// Number of shards backing the index (1 for the whole backing).
    pub fn shard_count(&self) -> usize {
        match &self.inner.backing {
            Backing::Whole { .. } => 1,
            Backing::Sharded { shards, .. } => shards.len().max(1),
        }
    }

    /// Replaces `delete` bytes at byte offset `at` with `insert`,
    /// returning the re-indexed text and a ledger of how many shards the
    /// edit rebuilt vs. recycled. `at` is clamped to the text length and
    /// `delete` to the remaining tail, so `spliced(len, 0, b"…")` is an
    /// append.
    ///
    /// The first splice on a whole-backed index converts it to the
    /// sharded backing (an honest full rebuild: every shard counts as
    /// reindexed). Subsequent splices rebuild only the shards whose bytes
    /// — or whose snapped cut validity — the edit touches; every other
    /// shard is reused by bumping its `Arc`, memoized pattern lists
    /// included. Adds to `mutate.segments_reindexed` /
    /// `mutate.segments_reused` and records `mutate.reindex_ns`.
    pub fn spliced(
        &self,
        at: usize,
        delete: usize,
        insert: &[u8],
    ) -> (SuffixWordIndex, ReindexStats) {
        let _span = tr_obs::span("mutate.reindex");
        let started = std::time::Instant::now();
        let old = self.text();
        let at = at.min(old.len());
        let delete = delete.min(old.len() - at);
        let mut new_text = Vec::with_capacity(old.len() - delete + insert.len());
        new_text.extend_from_slice(&old[..at]);
        new_text.extend_from_slice(insert);
        new_text.extend_from_slice(&old[at + delete..]);

        let (slots, stats) = match &self.inner.backing {
            Backing::Whole { .. } => {
                // First mutation: convert to the sharded backing. A full
                // rebuild, and counted as one — the incremental ledger
                // starts honest at edit #2.
                let slots = build_slots(&new_text, &canonical_cuts(&new_text));
                let stats = ReindexStats {
                    segments_reindexed: slots.len(),
                    segments_reused: 0,
                };
                (slots, stats)
            }
            Backing::Sharded { shards, .. } => {
                incremental_slots(shards, &new_text, at, delete, insert.len())
            }
        };

        let metrics = TextMetrics::get();
        metrics
            .segments_reindexed
            .add(stats.segments_reindexed as u64);
        metrics.segments_reused.add(stats.segments_reused as u64);
        metrics
            .reindex_ns
            .record(started.elapsed().as_nanos() as u64);
        let next = SuffixWordIndex {
            inner: Arc::new(Inner {
                backing: Backing::Sharded {
                    text: new_text,
                    shards: slots,
                    whole: OnceLock::new(),
                },
                // The whole-document memo never survives a text edit:
                // occurrence positions and lists both change.
                cache: RwLock::new(HashMap::new()),
            }),
        };
        (next, stats)
    }

    /// The sorted occurrences of a pattern (memoized).
    pub fn occurrences(&self, pattern: &str) -> Arc<Vec<Occurrence>> {
        let metrics = TextMetrics::get();
        if let Some(hit) = read_cache(&self.inner.cache).get(pattern) {
            metrics.pattern_hits.inc();
            return Arc::clone(hit);
        }
        let started = std::time::Instant::now();
        let computed = Arc::new(self.compute(&Pattern::parse(pattern), pattern));
        metrics.pattern_computed.inc();
        metrics
            .compute_ns
            .record(started.elapsed().as_nanos() as u64);
        // Two threads may compute the same pattern concurrently; keep the
        // first entry so all callers share one allocation.
        Arc::clone(
            self.inner
                .cache
                .write()
                .unwrap_or_else(|poison| poison.into_inner())
                .entry(pattern.to_owned())
                .or_insert(computed),
        )
    }

    /// Number of occurrences of a pattern.
    pub fn count(&self, pattern: &str) -> usize {
        self.occurrences(pattern).len()
    }

    /// The occurrences whose start offset lies in `[lo, hi)` — the
    /// range-split view of [`Self::occurrences`] used by segmented
    /// loading. The memoized whole-document list is computed (or reused)
    /// and the range is located by binary search, so repeated per-segment
    /// calls cost two `partition_point`s each, not a rescan.
    pub fn occurrences_in(&self, pattern: &str, lo: u32, hi: u32) -> Vec<Occurrence> {
        let occ = self.occurrences(pattern);
        let from = occ.partition_point(|&(s, _)| s < lo);
        let to = occ.partition_point(|&(s, _)| s < hi);
        occ[from..to].to_vec()
    }

    /// [`WordIndex::occurrence_regions`] restricted to occurrences whose
    /// start (left endpoint) lies in `[lo, hi)` — i.e. the occurrence
    /// regions assigned to the segment `[lo, hi)` under the left-endpoint
    /// rule of `tr_core::seg`.
    pub fn occurrence_regions_in(&self, pattern: &str, lo: u32, hi: u32) -> tr_core::RegionSet {
        let full = self.occurrence_regions(pattern);
        full.slice(full.lower_bound_left(lo), full.lower_bound_left(hi))
    }

    fn compute(&self, p: &Pattern, pattern: &str) -> Vec<Occurrence> {
        match &self.inner.backing {
            Backing::Whole { sa, starts } => compute_on(sa, starts, p),
            Backing::Sharded { text, shards, .. } => compute_sharded(text, shards, p, pattern),
        }
    }
}

/// Computes a pattern's occurrences against one suffix array + word-start
/// table (whole text or one shard, in that table's coordinates).
fn compute_on(sa: &SuffixArray, starts: &[u32], p: &Pattern) -> Vec<Occurrence> {
    let text = sa.text();
    let needle = p.needle();
    if needle.is_empty() {
        return Vec::new();
    }
    let is_word_start = |pos: u32| starts.binary_search(&pos).is_ok();
    let raw = sa.positions(needle);
    let mut out: Vec<Occurrence> = match p {
        Pattern::Substring(s) => raw.iter().map(|&pos| (pos, s.len() as u32)).collect(),
        Pattern::WordExact(s) => raw
            .iter()
            .copied()
            .filter(|&pos| {
                let end = pos as usize + s.len();
                is_word_start(pos) && (end >= text.len() || !is_word_byte(text[end]))
            })
            .map(|pos| (pos, s.len() as u32))
            .collect(),
        Pattern::WordPrefix(_) => raw
            .iter()
            .copied()
            .filter(|&pos| is_word_start(pos))
            .map(|pos| {
                // The occurrence covers the whole matched word, so that
                // W(r, "pre*") requires the word to fit inside r.
                let mut end = pos as usize;
                while end < text.len() && is_word_byte(text[end]) {
                    end += 1;
                }
                (pos, (end - pos as usize) as u32)
            })
            .collect(),
    };
    out.sort_unstable();
    out.dedup();
    out
}

/// Sharded pattern computation: shard-local answers lifted to global
/// coordinates, plus a boundary patch scan at each interior cut for
/// substring occurrences that straddle it. Word patterns need no patch:
/// snapped cuts guarantee no word spans two shards.
fn compute_sharded(
    text: &[u8],
    shards: &[ShardSlot],
    p: &Pattern,
    pattern: &str,
) -> Vec<Occurrence> {
    let needle = p.needle();
    if needle.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for slot in shards {
        let local = slot.shard.occurrences(pattern, p);
        out.extend(local.iter().map(|&(s, l)| (s + slot.base, l)));
    }
    if matches!(p, Pattern::Substring(_)) {
        let len = needle.len();
        for slot in shards.iter().skip(1) {
            let c = slot.lo();
            for start in c.saturating_sub(len - 1)..c {
                if start + len <= text.len() && &text[start..start + len] == needle {
                    out.push((start as u32, len as u32));
                }
            }
        }
    }
    out.sort_unstable();
    // A needle longer than a shard can straddle two cuts and be found by
    // both patch scans; the in-shard lists themselves are disjoint.
    out.dedup();
    out
}

/// The incremental splice on an already-sharded backing: keep prefix
/// shards that end at-or-before the edit, keep (and re-base) suffix
/// shards that start at-or-after the deleted range, rebuild the middle
/// from the new bytes. Shards adjacent to the edit are also rebuilt when
/// the edit un-snaps their cut (e.g. an insert gluing two words
/// together), so shard-local word-boundary answers stay globally exact.
fn incremental_slots(
    shards: &[ShardSlot],
    new_text: &[u8],
    at: usize,
    delete: usize,
    insert_len: usize,
) -> (Vec<ShardSlot>, ReindexStats) {
    let delta = insert_len as i64 - delete as i64;

    // Prefix shards: entirely before the edit, with their right cut
    // still snapped against the new bytes (a cut strictly before `at`
    // compares only unchanged bytes, so the check is exact either way).
    let mut keep_prefix = 0;
    for slot in shards {
        if slot.hi() <= at && cut_is_snapped(new_text, slot.hi()) {
            keep_prefix += 1;
        } else {
            break;
        }
    }

    // Suffix shards: entirely after the deleted range, shifted by the
    // edit's length delta, with their (shifted) left cut still snapped.
    let mut keep_suffix = 0;
    for slot in shards.iter().rev().take(shards.len() - keep_prefix) {
        let lo = slot.lo();
        let shifted = lo as i64 + delta;
        if lo >= at + delete && shifted >= 0 && cut_is_snapped(new_text, shifted as usize) {
            keep_suffix += 1;
        } else {
            break;
        }
    }

    let mut mid_lo = shards[..keep_prefix].last().map_or(0, ShardSlot::hi);
    let mut mid_hi = shards[shards.len() - keep_suffix..]
        .first()
        .map_or(new_text.len(), |slot| (slot.lo() as i64 + delta) as usize);

    // Anti-fragmentation: a tiny dirty middle (e.g. a short append) is
    // absorbed into a neighboring shard instead of becoming its own
    // sliver, so repeated small edits cannot grow the shard count past
    // O(len / SEGMENT_TARGET_BYTES). The absorbed neighbor is rebuilt,
    // but the whole merged region still counts (and rebuilds) as one.
    if mid_hi > mid_lo && mid_hi - mid_lo < tr_core::seg::SEGMENT_TARGET_BYTES / 2 {
        if keep_prefix > 0 {
            keep_prefix -= 1;
            mid_lo = shards[..keep_prefix].last().map_or(0, ShardSlot::hi);
        } else if keep_suffix > 0 {
            keep_suffix -= 1;
            mid_hi = shards[shards.len() - keep_suffix..]
                .first()
                .map_or(new_text.len(), |slot| (slot.lo() as i64 + delta) as usize);
        }
    }

    let mut slots: Vec<ShardSlot> = Vec::with_capacity(shards.len() + 2);
    for slot in &shards[..keep_prefix] {
        slots.push(ShardSlot {
            base: slot.base,
            shard: Arc::clone(&slot.shard),
        });
    }
    let mut reindexed = 0;
    if mid_hi > mid_lo {
        // Rebuild the dirty middle at the canonical per-segment scale so
        // repeated edits keep shard sizes near the global heuristic. A
        // middle at-or-below the target stays one shard — that is the
        // "edit touching 1 of N re-indexes exactly 1" guarantee.
        let mid_len = mid_hi - mid_lo;
        let k = (mid_len / tr_core::seg::SEGMENT_TARGET_BYTES).max(1);
        let mut cuts: Vec<usize> = tr_core::seg::segment_bounds(mid_len, k)
            .iter()
            .map(|&b| mid_lo + b as usize)
            .collect();
        for c in cuts.iter_mut().take(k).skip(1) {
            *c = snap(new_text, *c).min(mid_hi);
        }
        cuts.dedup();
        let mid = build_slots(new_text, &cuts);
        reindexed = mid.len();
        slots.extend(mid);
    }
    for slot in &shards[shards.len() - keep_suffix..] {
        slots.push(ShardSlot {
            base: (slot.lo() as i64 + delta) as u32,
            shard: Arc::clone(&slot.shard),
        });
    }
    let stats = ReindexStats {
        segments_reindexed: reindexed,
        segments_reused: keep_prefix + keep_suffix,
    };
    (slots, stats)
}

impl WordIndex for SuffixWordIndex {
    fn occurrence_regions(&self, pattern: &str) -> tr_core::RegionSet {
        // Straight into columnar storage: no intermediate `Vec<Region>`.
        let occ = self.occurrences(pattern);
        let mut lefts = Vec::with_capacity(occ.len());
        let mut rights = Vec::with_capacity(occ.len());
        for &(start, len) in occ.iter() {
            lefts.push(start);
            rights.push(start + len - 1);
        }
        tr_core::RegionSet::from_columns(lefts, rights)
    }

    fn matches(&self, r: Region, pattern: &str) -> bool {
        let occ = self.occurrences(pattern);
        let from = occ.partition_point(|&(s, _)| s < r.left());
        occ[from..]
            .iter()
            .take_while(|&&(s, _)| s <= r.right())
            .any(|&(s, l)| s + l - 1 <= r.right())
    }
}

impl std::fmt::Debug for SuffixWordIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuffixWordIndex")
            .field("text_len", &self.text().len())
            .field("shards", &self.shard_count())
            .field("cached_patterns", &read_cache(&self.inner.cache).len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::region;

    fn idx() -> SuffixWordIndex {
        SuffixWordIndex::new(&b"the cat sat on the catalog"[..])
    }

    #[test]
    fn word_exact_respects_boundaries() {
        let w = idx();
        // "cat" the word occurs at 4 only; "catalog" at 19 must not count.
        assert_eq!(&*w.occurrences("cat"), &vec![(4, 3)]);
        assert!(w.matches(region(0, 10), "cat"));
        assert!(!w.matches(region(15, 25), "cat"));
    }

    #[test]
    fn word_prefix_covers_whole_word() {
        let w = idx();
        assert_eq!(&*w.occurrences("cat*"), &vec![(4, 3), (19, 7)]);
        // Region must contain the whole matched word.
        assert!(w.matches(region(19, 25), "cat*"));
        assert!(!w.matches(region(19, 23), "cat*"), "catalog truncated");
    }

    #[test]
    fn substring_matches_anywhere() {
        let w = idx();
        assert_eq!(&*w.occurrences("at s"), &vec![(5, 4)]);
        assert!(w.matches(region(0, 12), "at s"));
    }

    #[test]
    fn unknown_pattern_never_matches() {
        let w = idx();
        assert!(!w.matches(region(0, 25), "dog"));
        assert_eq!(w.count("dog"), 0);
    }

    #[test]
    fn occurrence_regions_match_point_sets() {
        let w = idx();
        assert_eq!(
            w.occurrence_regions("cat*").to_vec(),
            &[tr_core::region(4, 6), tr_core::region(19, 25)]
        );
        assert!(w.occurrence_regions("dog").is_empty());
    }

    #[test]
    fn cache_is_reused() {
        let w = idx();
        let a = w.occurrences("cat");
        let b = w.occurrences("cat");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn range_split_occurrences_partition_the_full_list() {
        let w = idx();
        for pat in ["cat*", "at", "the", "dog"] {
            let full = w.occurrences(pat);
            // Any cut sequence partitions the list with nothing lost.
            let bounds = [0u32, 5, 13, 26];
            let mut glued = Vec::new();
            for win in bounds.windows(2) {
                glued.extend(w.occurrences_in(pat, win[0], win[1]));
            }
            assert_eq!(&glued, &*full, "pattern {pat}");
            // And the columnar form agrees, zero-copy per range.
            let all_regions = w.occurrence_regions(pat);
            let mut n = 0;
            for win in bounds.windows(2) {
                let part = w.occurrence_regions_in(pat, win[0], win[1]);
                assert!(part.is_empty() || part.validate().is_ok());
                n += part.len();
            }
            assert_eq!(n, all_regions.len(), "pattern {pat}");
        }
        assert_eq!(w.occurrences_in("cat*", 5, 19), vec![]);
        assert_eq!(w.occurrences_in("cat*", 19, 20), vec![(19, 7)]);
    }

    #[test]
    fn exact_word_at_end_of_text() {
        let w = SuffixWordIndex::new(&b"find the cat"[..]);
        assert_eq!(w.count("cat"), 1);
        assert!(w.matches(region(9, 11), "cat"));
    }

    /// Oracle: a spliced index must answer every pattern exactly like a
    /// from-scratch index over the same final text.
    fn assert_matches_fresh(spliced: &SuffixWordIndex, patterns: &[&str]) {
        let fresh = SuffixWordIndex::new(spliced.text().to_vec());
        assert_eq!(spliced.text(), fresh.text());
        for pat in patterns {
            assert_eq!(
                &*spliced.occurrences(pat),
                &*fresh.occurrences(pat),
                "pattern {pat:?} on text {:?}",
                String::from_utf8_lossy(spliced.text())
            );
        }
    }

    const PATTERNS: &[&str] = &[
        "cat", "cat*", "the", "at", "at s", "a", "dog", "og t", "talo",
    ];

    #[test]
    fn splice_append_matches_fresh_index() {
        let w = idx();
        let (w2, stats) = w.spliced(w.text().len(), 0, b" the cat");
        assert_eq!(stats.segments_reused, 0, "first splice converts");
        assert!(stats.segments_reindexed >= 1);
        assert_matches_fresh(&w2, PATTERNS);
        // Second append re-checks the incremental path.
        let len = w2.text().len();
        let (w3, _) = w2.spliced(len, 0, b" og the");
        assert_matches_fresh(&w3, PATTERNS);
    }

    #[test]
    fn splice_delete_and_replace_match_fresh_index() {
        let w = idx();
        // Delete "sat " (offset 8, 4 bytes).
        let (w2, _) = w.spliced(8, 4, b"");
        assert_matches_fresh(&w2, PATTERNS);
        // Replace "cat" at 4 with "dogged".
        let (w3, _) = w2.spliced(4, 3, b"dogged");
        assert_matches_fresh(&w3, PATTERNS);
        // Out-of-range clamps: splice far past the end appends.
        let (w4, _) = w3.spliced(10_000, 50, b"!tail");
        assert_matches_fresh(&w4, PATTERNS);
    }

    #[test]
    fn spliced_suffix_array_is_consistent_for_persistence() {
        let w = idx();
        let (w2, _) = w.spliced(4, 3, b"dog");
        let sa = w2.suffix_array();
        assert!(sa.is_consistent());
        assert_eq!(sa.text(), w2.text());
    }

    #[test]
    fn random_splices_match_fresh_index() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0xED17);
        let alphabet = b"abc d";
        for round in 0..30 {
            let n = rng.gen_range(0..120);
            let text: Vec<u8> = (0..n)
                .map(|_| *alphabet.choose(&mut rng).unwrap())
                .collect();
            let mut w = SuffixWordIndex::new(text);
            for edit in 0..6 {
                let len = w.text().len();
                let at = if len == 0 { 0 } else { rng.gen_range(0..=len) };
                let delete = rng.gen_range(0..=(len - at).min(10));
                let ins_n = rng.gen_range(0..8);
                let insert: Vec<u8> = (0..ins_n)
                    .map(|_| *alphabet.choose(&mut rng).unwrap())
                    .collect();
                let (next, _) = w.spliced(at, delete, &insert);
                assert_matches_fresh(&next, &["a", "ab", "abc", "c d", "d", "b*", "ca"]);
                w = next;
                let _ = (round, edit);
            }
        }
    }

    #[test]
    fn steady_state_edit_reindexes_one_shard_of_many() {
        // Big enough for several segments: 4 * 64KiB.
        let word = b"word ";
        let text: Vec<u8> = word
            .iter()
            .cycle()
            .take(4 * tr_core::seg::SEGMENT_TARGET_BYTES)
            .copied()
            .collect();
        let w = SuffixWordIndex::new(text);
        // Edit #1 converts to sharded.
        let (w2, s1) = w.spliced(10, 2, b"xy");
        assert!(s1.segments_reindexed >= 4);
        let shards = w2.shard_count();
        assert!(shards >= 4, "expected several shards, got {shards}");
        // Edit #2, mid-document, small: exactly one shard rebuilds.
        let mid = w2.text().len() / 2;
        let (w3, s2) = w2.spliced(mid, 3, b"zzz");
        assert_eq!(
            s2.segments_reindexed, 1,
            "a local edit must rebuild exactly one of {shards} shards"
        );
        assert_eq!(s2.segments_reused, shards - 1);
        assert_eq!(w3.shard_count(), shards);
    }

    #[test]
    fn clone_shares_the_backing() {
        let w = idx();
        let c = w.clone();
        let a = w.occurrences("cat");
        let b = c.occurrences("cat");
        assert!(Arc::ptr_eq(&a, &b), "clone shares the memo");
    }
}
