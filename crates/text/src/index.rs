//! [`SuffixWordIndex`]: a [`WordIndex`] over real text, backed by a suffix
//! array — the workspace's stand-in for the PAT engine's sistring index.
//!
//! `σ_p` evaluates `W(r, p)` once per candidate region with the *same*
//! pattern, so the index memoizes the sorted occurrence list per pattern;
//! after the first lookup each `W(r, p)` test is a binary search.

use crate::pattern::Pattern;
use crate::suffix::SuffixArray;
use crate::tokenize::{is_word_byte, word_starts};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};
use tr_core::{Region, WordIndex};

/// Cached handles into the `tr_obs` metrics registry.
struct TextMetrics {
    /// `text.index.builds` / `text.index.bytes`: indexes built, bytes in.
    builds: Arc<tr_obs::Counter>,
    bytes: Arc<tr_obs::Counter>,
    /// `text.pattern.cache_hits` / `text.pattern.computed`: memoized
    /// occurrence-list reuse vs fresh suffix-array scans.
    pattern_hits: Arc<tr_obs::Counter>,
    pattern_computed: Arc<tr_obs::Counter>,
    /// `text.index.build_ns` / `text.pattern.compute_ns`: wall times.
    build_ns: Arc<tr_obs::Histogram>,
    compute_ns: Arc<tr_obs::Histogram>,
}

impl TextMetrics {
    fn get() -> &'static TextMetrics {
        static METRICS: OnceLock<TextMetrics> = OnceLock::new();
        METRICS.get_or_init(|| TextMetrics {
            builds: tr_obs::counter("text.index.builds"),
            bytes: tr_obs::counter("text.index.bytes"),
            pattern_hits: tr_obs::counter("text.pattern.cache_hits"),
            pattern_computed: tr_obs::counter("text.pattern.computed"),
            build_ns: tr_obs::histogram("text.index.build_ns"),
            compute_ns: tr_obs::histogram("text.pattern.compute_ns"),
        })
    }
}

/// An occurrence of a pattern: `(start offset, byte length)`.
pub type Occurrence = (u32, u32);

/// A suffix-array-backed word index over a text buffer.
pub struct SuffixWordIndex {
    sa: SuffixArray,
    /// Sorted word-start offsets, for boundary checks.
    starts: Vec<u32>,
    /// pattern string → sorted occurrences, memoized.
    cache: RwLock<HashMap<String, Arc<Vec<Occurrence>>>>,
}

impl SuffixWordIndex {
    /// Indexes `text`.
    pub fn new(text: impl Into<Vec<u8>>) -> SuffixWordIndex {
        let _span = tr_obs::span("text.index.build");
        let started = std::time::Instant::now();
        let text = text.into();
        let metrics = TextMetrics::get();
        metrics.builds.inc();
        metrics.bytes.add(text.len() as u64);
        let starts = word_starts(&text);
        let built = SuffixWordIndex {
            sa: SuffixArray::new(text),
            starts,
            cache: RwLock::new(HashMap::new()),
        };
        metrics.build_ns.record(started.elapsed().as_nanos() as u64);
        built
    }

    /// Wraps a previously built [`SuffixArray`] (e.g. loaded from disk),
    /// recomputing the cheap word-start table.
    pub fn from_suffix_array(sa: SuffixArray) -> SuffixWordIndex {
        let starts = word_starts(sa.text());
        SuffixWordIndex {
            sa,
            starts,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// The underlying suffix array (for persistence).
    pub fn suffix_array(&self) -> &SuffixArray {
        &self.sa
    }

    /// The indexed text.
    pub fn text(&self) -> &[u8] {
        self.sa.text()
    }

    /// The sorted occurrences of a pattern (memoized).
    pub fn occurrences(&self, pattern: &str) -> Arc<Vec<Occurrence>> {
        let metrics = TextMetrics::get();
        if let Some(hit) = self.read_cache().get(pattern) {
            metrics.pattern_hits.inc();
            return Arc::clone(hit);
        }
        let started = std::time::Instant::now();
        let computed = Arc::new(self.compute(&Pattern::parse(pattern)));
        metrics.pattern_computed.inc();
        metrics
            .compute_ns
            .record(started.elapsed().as_nanos() as u64);
        // Two threads may compute the same pattern concurrently; keep the
        // first entry so all callers share one allocation.
        Arc::clone(
            self.cache
                .write()
                .unwrap_or_else(|poison| poison.into_inner())
                .entry(pattern.to_owned())
                .or_insert(computed),
        )
    }

    fn read_cache(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<Vec<Occurrence>>>> {
        self.cache
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Number of occurrences of a pattern.
    pub fn count(&self, pattern: &str) -> usize {
        self.occurrences(pattern).len()
    }

    /// The occurrences whose start offset lies in `[lo, hi)` — the
    /// range-split view of [`Self::occurrences`] used by segmented
    /// loading. The memoized whole-document list is computed (or reused)
    /// and the range is located by binary search, so repeated per-segment
    /// calls cost two `partition_point`s each, not a rescan.
    pub fn occurrences_in(&self, pattern: &str, lo: u32, hi: u32) -> Vec<Occurrence> {
        let occ = self.occurrences(pattern);
        let from = occ.partition_point(|&(s, _)| s < lo);
        let to = occ.partition_point(|&(s, _)| s < hi);
        occ[from..to].to_vec()
    }

    /// [`WordIndex::occurrence_regions`] restricted to occurrences whose
    /// start (left endpoint) lies in `[lo, hi)` — i.e. the occurrence
    /// regions assigned to the segment `[lo, hi)` under the left-endpoint
    /// rule of `tr_core::seg`.
    pub fn occurrence_regions_in(&self, pattern: &str, lo: u32, hi: u32) -> tr_core::RegionSet {
        let full = self.occurrence_regions(pattern);
        full.slice(full.lower_bound_left(lo), full.lower_bound_left(hi))
    }

    fn compute(&self, p: &Pattern) -> Vec<Occurrence> {
        let text = self.sa.text();
        let needle = p.needle();
        if needle.is_empty() {
            return Vec::new();
        }
        let raw = self.sa.positions(needle);
        let mut out: Vec<Occurrence> = match p {
            Pattern::Substring(s) => raw.iter().map(|&pos| (pos, s.len() as u32)).collect(),
            Pattern::WordExact(s) => raw
                .iter()
                .copied()
                .filter(|&pos| {
                    let end = pos as usize + s.len();
                    self.is_word_start(pos) && (end >= text.len() || !is_word_byte(text[end]))
                })
                .map(|pos| (pos, s.len() as u32))
                .collect(),
            Pattern::WordPrefix(_) => raw
                .iter()
                .copied()
                .filter(|&pos| self.is_word_start(pos))
                .map(|pos| {
                    // The occurrence covers the whole matched word, so that
                    // W(r, "pre*") requires the word to fit inside r.
                    let mut end = pos as usize;
                    while end < text.len() && is_word_byte(text[end]) {
                        end += 1;
                    }
                    (pos, (end - pos as usize) as u32)
                })
                .collect(),
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    fn is_word_start(&self, pos: u32) -> bool {
        self.starts.binary_search(&pos).is_ok()
    }
}

impl WordIndex for SuffixWordIndex {
    fn occurrence_regions(&self, pattern: &str) -> tr_core::RegionSet {
        // Straight into columnar storage: no intermediate `Vec<Region>`.
        let occ = self.occurrences(pattern);
        let mut lefts = Vec::with_capacity(occ.len());
        let mut rights = Vec::with_capacity(occ.len());
        for &(start, len) in occ.iter() {
            lefts.push(start);
            rights.push(start + len - 1);
        }
        tr_core::RegionSet::from_columns(lefts, rights)
    }

    fn matches(&self, r: Region, pattern: &str) -> bool {
        let occ = self.occurrences(pattern);
        let from = occ.partition_point(|&(s, _)| s < r.left());
        occ[from..]
            .iter()
            .take_while(|&&(s, _)| s <= r.right())
            .any(|&(s, l)| s + l - 1 <= r.right())
    }
}

impl std::fmt::Debug for SuffixWordIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuffixWordIndex")
            .field("text_len", &self.sa.text().len())
            .field("cached_patterns", &self.read_cache().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::region;

    fn idx() -> SuffixWordIndex {
        SuffixWordIndex::new(&b"the cat sat on the catalog"[..])
    }

    #[test]
    fn word_exact_respects_boundaries() {
        let w = idx();
        // "cat" the word occurs at 4 only; "catalog" at 19 must not count.
        assert_eq!(&*w.occurrences("cat"), &vec![(4, 3)]);
        assert!(w.matches(region(0, 10), "cat"));
        assert!(!w.matches(region(15, 25), "cat"));
    }

    #[test]
    fn word_prefix_covers_whole_word() {
        let w = idx();
        assert_eq!(&*w.occurrences("cat*"), &vec![(4, 3), (19, 7)]);
        // Region must contain the whole matched word.
        assert!(w.matches(region(19, 25), "cat*"));
        assert!(!w.matches(region(19, 23), "cat*"), "catalog truncated");
    }

    #[test]
    fn substring_matches_anywhere() {
        let w = idx();
        assert_eq!(&*w.occurrences("at s"), &vec![(5, 4)]);
        assert!(w.matches(region(0, 12), "at s"));
    }

    #[test]
    fn unknown_pattern_never_matches() {
        let w = idx();
        assert!(!w.matches(region(0, 25), "dog"));
        assert_eq!(w.count("dog"), 0);
    }

    #[test]
    fn occurrence_regions_match_point_sets() {
        let w = idx();
        assert_eq!(
            w.occurrence_regions("cat*").to_vec(),
            &[tr_core::region(4, 6), tr_core::region(19, 25)]
        );
        assert!(w.occurrence_regions("dog").is_empty());
    }

    #[test]
    fn cache_is_reused() {
        let w = idx();
        let a = w.occurrences("cat");
        let b = w.occurrences("cat");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn range_split_occurrences_partition_the_full_list() {
        let w = idx();
        for pat in ["cat*", "at", "the", "dog"] {
            let full = w.occurrences(pat);
            // Any cut sequence partitions the list with nothing lost.
            let bounds = [0u32, 5, 13, 26];
            let mut glued = Vec::new();
            for win in bounds.windows(2) {
                glued.extend(w.occurrences_in(pat, win[0], win[1]));
            }
            assert_eq!(&glued, &*full, "pattern {pat}");
            // And the columnar form agrees, zero-copy per range.
            let all_regions = w.occurrence_regions(pat);
            let mut n = 0;
            for win in bounds.windows(2) {
                let part = w.occurrence_regions_in(pat, win[0], win[1]);
                assert!(part.is_empty() || part.validate().is_ok());
                n += part.len();
            }
            assert_eq!(n, all_regions.len(), "pattern {pat}");
        }
        assert_eq!(w.occurrences_in("cat*", 5, 19), vec![]);
        assert_eq!(w.occurrences_in("cat*", 19, 20), vec![(19, 7)]);
    }

    #[test]
    fn exact_word_at_end_of_text() {
        let w = SuffixWordIndex::new(&b"find the cat"[..]);
        assert_eq!(w.count("cat"), 1);
        assert!(w.matches(region(9, 11), "cat"));
    }
}
