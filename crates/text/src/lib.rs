//! # tr-text — the text substrate
//!
//! The PAT engine the paper builds on indexes *sistrings* (semi-infinite
//! strings) in a Patricia tree; this crate provides the equivalent pure
//! in-memory machinery: a suffix array ([`SuffixArray`]), a tokenizer, a
//! small pattern language ([`Pattern`]), and [`SuffixWordIndex`] — a
//! [`tr_core::WordIndex`] over real text with per-pattern memoization.
//!
//! ```
//! use tr_text::SuffixWordIndex;
//! use tr_core::{WordIndex, region};
//!
//! let w = SuffixWordIndex::new(&b"procedure alpha; var x : integer"[..]);
//! assert!(w.matches(region(0, 31), "alpha"));
//! assert!(w.matches(region(0, 31), "proc*"));
//! assert!(!w.matches(region(0, 8), "alpha"));
//! ```

#![warn(missing_docs)]

pub mod index;
pub mod pattern;
pub mod suffix;
pub mod tokenize;

pub use index::{Occurrence, ReindexStats, SuffixWordIndex};
pub use pattern::Pattern;
pub use suffix::SuffixArray;
pub use tokenize::{is_word_byte, tokens, word_starts, Token};
