//! The *minimal set problem* of Section 6 (Proposition 6.1).
//!
//! The single-loop program that evaluates a direct-inclusion chain
//! `e = R_1 ⊃_d R_2 ⊃_d … ⊃_d R_n` spends most of its time testing
//! inclusion against an auxiliary set `All`. Given a RIG `G`, `All` only
//! needs the regions of a subset `𝓘' ⊆ 𝓘` containing at least one region
//! name on every path from `R_i` to `R_{i+1}` (endpoints excluded), for
//! every consecutive pair. Finding a minimum such `𝓘'` is NP-complete
//! (reduction from vertex cover); this module provides:
//!
//! * [`MinimalSetProblem::solve_exact`] — iterative-deepening branch
//!   search, exponential only in the solution size;
//! * [`MinimalSetProblem::solve_greedy`] — a polynomial heuristic;
//! * [`crate::mincut::min_vertex_cut`] — the polynomial min-cut special
//!   case for a single pair (`e = R_1 ⊃_d R_2`), per the paper's closing
//!   remark;
//! * [`vertex_cover_to_minimal_set`] — the hardness-direction reduction,
//!   used by tests and by experiment E10.

use crate::graph::Rig;
use tr_core::{NameId, Schema};

/// An instance of the minimal set problem: a RIG plus the consecutive
/// `(parent-side, child-side)` pairs of a direct-inclusion chain.
#[derive(Debug, Clone)]
pub struct MinimalSetProblem {
    rig: Rig,
    pairs: Vec<(NameId, NameId)>,
}

impl MinimalSetProblem {
    /// Builds the problem for the chain `names[0] ⊃_d names[1] ⊃_d …`.
    pub fn for_chain(rig: Rig, names: &[NameId]) -> MinimalSetProblem {
        let pairs = names.windows(2).map(|w| (w[0], w[1])).collect();
        MinimalSetProblem { rig, pairs }
    }

    /// Builds the problem from explicit pairs.
    pub fn for_pairs(rig: Rig, pairs: Vec<(NameId, NameId)>) -> MinimalSetProblem {
        MinimalSetProblem { rig, pairs }
    }

    /// The underlying RIG.
    pub fn rig(&self) -> &Rig {
        &self.rig
    }

    /// The pairs to intercept.
    pub fn pairs(&self) -> &[(NameId, NameId)] {
        &self.pairs
    }

    /// True if `set` intercepts every path of every pair.
    pub fn covers(&self, set: &[NameId]) -> bool {
        self.pairs
            .iter()
            .all(|&(u, v)| self.pair_covered(u, v, set))
    }

    /// True if every path `u → v` has an interior node in `set`.
    fn pair_covered(&self, u: NameId, v: NameId, set: &[NameId]) -> bool {
        self.witness_path(u, v, set).is_none()
    }

    /// A shortest unintercepted path `u → … → v` with a *nonempty*
    /// interior (as its interior nodes), or `None` if all such paths are
    /// intercepted. A direct edge `u → v` has nothing between the
    /// endpoints, so it imposes no interception requirement and is
    /// skipped.
    fn witness_path(&self, u: NameId, v: NameId, set: &[NameId]) -> Option<Vec<NameId>> {
        let n = self.rig.num_nodes();
        let blocked = |id: NameId| set.contains(&id);
        // BFS from u; interior nodes must be unblocked; v is always enterable.
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(u.index());
        // u is the source; do not mark it seen so a cycle back through it
        // is handled by the blocked check like any interior node.
        while let Some(x) = queue.pop_front() {
            for y in self.rig.successors(NameId::from_index(x)) {
                let yi = y.index();
                if y == v {
                    if x == u.index() {
                        continue; // the direct edge: no interior to intercept
                    }
                    // Reconstruct interior: x, prev[x], … back to u.
                    let mut interior = Vec::new();
                    let mut cur = x;
                    while cur != u.index() {
                        interior.push(NameId::from_index(cur));
                        cur = prev[cur].expect("interior nodes have predecessors");
                    }
                    interior.reverse();
                    return Some(interior);
                }
                if !seen[yi] && !blocked(y) && yi != u.index() {
                    seen[yi] = true;
                    prev[yi] = Some(x);
                    queue.push_back(yi);
                }
            }
        }
        None
    }

    /// The minimum interception set. Iterative deepening over the
    /// solution size: exponential in `|𝓘'|` only, as expected for an
    /// NP-complete problem. Always succeeds (the full node set minus the
    /// endpoints intercepts everything interceptable, and direct edges
    /// need nothing).
    pub fn solve_exact(&self) -> Option<Vec<NameId>> {
        for k in 0..=self.rig.num_nodes() {
            let mut chosen = Vec::new();
            if self.search(k, &mut chosen) {
                chosen.sort_unstable();
                return Some(chosen);
            }
        }
        None
    }

    fn search(&self, budget: usize, chosen: &mut Vec<NameId>) -> bool {
        let uncovered = self
            .pairs
            .iter()
            .find_map(|&(u, v)| self.witness_path(u, v, chosen));
        let Some(interior) = uncovered else {
            return true; // everything covered
        };
        debug_assert!(!interior.is_empty(), "witness paths have interiors");
        if budget == 0 {
            return false;
        }
        // Some interior node of this path must be chosen: branch on each.
        for cand in interior {
            chosen.push(cand);
            if self.search(budget - 1, chosen) {
                return true;
            }
            chosen.pop();
        }
        false
    }

    /// Greedy heuristic: repeatedly add the node covering the most
    /// still-uncovered pairs. Polynomial; may overshoot the optimum
    /// (experiment E10 quantifies by how much).
    pub fn solve_greedy(&self) -> Option<Vec<NameId>> {
        let mut chosen: Vec<NameId> = Vec::new();
        loop {
            let uncovered: Vec<(NameId, NameId)> = self
                .pairs
                .iter()
                .copied()
                .filter(|&(u, v)| !self.pair_covered(u, v, &chosen))
                .collect();
            if uncovered.is_empty() {
                chosen.sort_unstable();
                return Some(chosen);
            }
            let mut best: Option<(usize, NameId)> = None;
            for cand in (0..self.rig.num_nodes()).map(NameId::from_index) {
                if chosen.contains(&cand) {
                    continue;
                }
                chosen.push(cand);
                let covered_now = uncovered
                    .iter()
                    .filter(|&&(u, v)| self.pair_covered(u, v, &chosen))
                    .count();
                chosen.pop();
                if covered_now > 0 && best.is_none_or(|(b, _)| covered_now > b) {
                    best = Some((covered_now, cand));
                }
            }
            match best {
                Some((_, pick)) => chosen.push(pick),
                None => {
                    // No single node finishes a pair (e.g. parallel interior
                    // paths): block one witness path and keep going — each
                    // pick removes at least one path, so this terminates.
                    let (u, v) = uncovered[0];
                    let interior = self.witness_path(u, v, &chosen).expect("pair is uncovered");
                    chosen.push(interior[0]);
                }
            }
        }
    }
}

/// The hardness-direction reduction behind Proposition 6.1: a vertex cover
/// instance becomes a minimal set instance whose optimum equals the
/// minimum vertex cover size.
///
/// For each graph edge `{a, b}` a fresh source/sink pair `(S_j, T_j)` is
/// created with the serial path `S_j → a → b → T_j`; its interior is
/// exactly `{a, b}` (plus detours that still pass through both), so
/// intercepting every `S_j → T_j` path means choosing `a` or `b` —
/// covering the edge. The chain `S_1, T_1, S_2, T_2, …` makes exactly
/// those pairs consecutive (the cross pairs `(T_j, S_{j+1})` have no paths
/// and are vacuous), so the minimum interception set is a minimum vertex
/// cover.
pub fn vertex_cover_to_minimal_set(
    num_vertices: usize,
    edges: &[(usize, usize)],
) -> MinimalSetProblem {
    let mut names: Vec<String> = (0..num_vertices).map(|i| format!("v{i}")).collect();
    for j in 0..edges.len() {
        names.push(format!("S{j}"));
        names.push(format!("T{j}"));
    }
    let schema = Schema::new(names);
    let mut rig = Rig::new(schema.clone());
    let mut chain = Vec::with_capacity(2 * edges.len());
    for (j, &(a, b)) in edges.iter().enumerate() {
        assert!(
            a < num_vertices && b < num_vertices && a != b,
            "bad edge ({a},{b})"
        );
        let s = schema.expect_id(&format!("S{j}"));
        let t = schema.expect_id(&format!("T{j}"));
        let (va, vb) = (NameId::from_index(a), NameId::from_index(b));
        rig.0.add_edge(s, va);
        rig.0.add_edge(va, vb);
        rig.0.add_edge(vb, t);
        chain.push(s);
        chain.push(t);
    }
    MinimalSetProblem::for_chain(rig, &chain)
}

/// Brute-force minimum vertex cover, for cross-checking the reduction in
/// tests and experiment E10. Exponential; keep `num_vertices` small.
pub fn min_vertex_cover_brute(num_vertices: usize, edges: &[(usize, usize)]) -> usize {
    assert!(
        num_vertices <= 20,
        "brute-force cover limited to 20 vertices"
    );
    (0u32..1 << num_vertices)
        .filter(|mask| {
            edges
                .iter()
                .all(|&(a, b)| mask & (1 << a) != 0 || mask & (1 << b) != 0)
        })
        .map(u32::count_ones)
        .min()
        .unwrap_or(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Rig, Schema) {
        // A → {B, C} → D: two disjoint interior paths.
        let schema = Schema::new(["A", "B", "C", "D"]);
        let rig = Rig::from_edges(
            schema.clone(),
            [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
        );
        (rig, schema)
    }

    #[test]
    fn exact_needs_both_diamond_arms() {
        let (rig, s) = diamond();
        let p = MinimalSetProblem::for_chain(rig, &[s.expect_id("A"), s.expect_id("D")]);
        let sol = p.solve_exact().expect("feasible");
        assert_eq!(sol.len(), 2);
        assert!(p.covers(&sol));
    }

    #[test]
    fn direct_edge_needs_no_interception() {
        // A direct edge has no interior, so nothing needs intercepting —
        // the possible direct parent/child pair is precisely the case the
        // chain program's ⊃ operator handles without blockers.
        let schema = Schema::new(["A", "B"]);
        let rig = Rig::from_edges(schema.clone(), [("A", "B")]);
        let p = MinimalSetProblem::for_chain(rig, &[schema.expect_id("A"), schema.expect_id("B")]);
        assert_eq!(p.solve_exact(), Some(Vec::new()));
        assert_eq!(p.solve_greedy(), Some(Vec::new()));
    }

    #[test]
    fn direct_edge_plus_detour_intercepts_the_detour() {
        // A → B directly and A → M → B: only the detour needs blocking.
        let schema = Schema::new(["A", "M", "B"]);
        let rig = Rig::from_edges(schema.clone(), [("A", "B"), ("A", "M"), ("M", "B")]);
        let p = MinimalSetProblem::for_chain(rig, &[schema.expect_id("A"), schema.expect_id("B")]);
        assert_eq!(p.solve_exact(), Some(vec![schema.expect_id("M")]));
    }

    #[test]
    fn unreachable_pair_needs_nothing() {
        let schema = Schema::new(["A", "B"]);
        let rig = Rig::new(schema.clone());
        let p = MinimalSetProblem::for_chain(rig, &[schema.expect_id("A"), schema.expect_id("B")]);
        assert_eq!(p.solve_exact(), Some(Vec::new()));
        assert_eq!(p.solve_greedy(), Some(Vec::new()));
    }

    #[test]
    fn single_interior_path() {
        let schema = Schema::new(["A", "M", "B"]);
        let rig = Rig::from_edges(schema.clone(), [("A", "M"), ("M", "B")]);
        let p = MinimalSetProblem::for_chain(rig, &[schema.expect_id("A"), schema.expect_id("B")]);
        assert_eq!(p.solve_exact(), Some(vec![schema.expect_id("M")]));
        assert_eq!(p.solve_greedy(), Some(vec![schema.expect_id("M")]));
    }

    #[test]
    fn chain_with_shared_interior() {
        // A → M → B and B → M → C: one node M covers both pairs.
        let schema = Schema::new(["A", "M", "B", "C"]);
        let rig = Rig::from_edges(
            schema.clone(),
            [("A", "M"), ("M", "B"), ("B", "M"), ("M", "C")],
        );
        let p = MinimalSetProblem::for_chain(
            rig,
            &[
                schema.expect_id("A"),
                schema.expect_id("B"),
                schema.expect_id("C"),
            ],
        );
        assert_eq!(p.solve_exact(), Some(vec![schema.expect_id("M")]));
    }

    #[test]
    fn reduction_preserves_cover_size() {
        // Triangle: VC = 2. Path of 3 edges: VC = 2. Star: VC = 1.
        let cases: &[(usize, &[(usize, usize)])] = &[
            (3, &[(0, 1), (1, 2), (0, 2)]),
            (4, &[(0, 1), (1, 2), (2, 3)]),
            (5, &[(0, 1), (0, 2), (0, 3), (0, 4)]),
        ];
        for &(n, edges) in cases {
            let p = vertex_cover_to_minimal_set(n, edges);
            let exact = p.solve_exact().expect("feasible").len();
            assert_eq!(
                exact,
                min_vertex_cover_brute(n, edges),
                "n={n} edges={edges:?}"
            );
        }
    }

    #[test]
    fn greedy_covers_but_may_overshoot() {
        let p = vertex_cover_to_minimal_set(3, &[(0, 1), (1, 2), (0, 2)]);
        let g = p.solve_greedy().expect("feasible");
        assert!(p.covers(&g));
        assert!(g.len() >= 2);
    }

    #[test]
    fn cycles_through_source_are_handled() {
        // A → M → A → … and A → M → B: blocking M suffices even though A
        // lies on a cycle.
        let schema = Schema::new(["A", "M", "B"]);
        let rig = Rig::from_edges(schema.clone(), [("A", "M"), ("M", "A"), ("M", "B")]);
        let p = MinimalSetProblem::for_chain(rig, &[schema.expect_id("A"), schema.expect_id("B")]);
        assert_eq!(p.solve_exact(), Some(vec![schema.expect_id("M")]));
    }
}
