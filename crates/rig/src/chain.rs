//! Inclusion expressions and their RIG-based optimization.
//!
//! Section 2.2's motivating example: with the Figure 1 RIG,
//! `Name ⊂ Proc_header ⊂ Proc ⊂ Program` is equivalent to the cheaper
//! `Name ⊂ Proc_header ⊂ Program`, because every `Proc_header` sits
//! directly inside a `Proc`. Section 5.1 notes that *inclusion
//! expressions* — chains using only `⊂` (or only `⊃`) — can be optimized
//! in polynomial time.
//!
//! The rewrite implemented here drops an interior chain element `B` from
//! `… A ⊂ B ⊂ C …` when every RIG path from `C` down to `A` passes through
//! `B`. On hierarchical instances a region's ancestors are totally ordered,
//! so a `⊂`-chain selects `x` iff the chain names appear, in order, among
//! the names on `x`'s ancestor path; since every direct inclusion step is a
//! RIG edge, the names between the `A`-witness and the `C`-witness trace a
//! RIG path from `C` to `A`, and path interception guarantees a `B`-witness
//! in between. The interception test is plain reachability with `B`
//! removed — polynomial, matching the paper's claim.

use crate::graph::Rig;
use tr_core::{BinOp, Expr, NameId};

/// The direction of an inclusion chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainDir {
    /// `R_1 ⊂ R_2 ⊂ … ⊂ R_n` (innermost first).
    IncludedIn,
    /// `R_1 ⊃ R_2 ⊃ … ⊃ R_n` (outermost first).
    Including,
}

impl ChainDir {
    fn op(self) -> BinOp {
        match self {
            ChainDir::IncludedIn => BinOp::IncludedIn,
            ChainDir::Including => BinOp::Including,
        }
    }
}

/// One element of a chain: a region name with zero or more selections
/// applied (`σ_p(…σ_q(R))`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainItem {
    /// The region name.
    pub name: NameId,
    /// Selection patterns applied to the name, outermost first.
    pub patterns: Vec<String>,
}

impl ChainItem {
    /// An item with no selections.
    pub fn bare(name: NameId) -> ChainItem {
        ChainItem {
            name,
            patterns: Vec::new(),
        }
    }

    fn to_expr(&self) -> Expr {
        let mut e = Expr::name(self.name);
        for p in self.patterns.iter().rev() {
            e = e.select(p.clone());
        }
        e
    }

    fn from_expr(mut e: &Expr) -> Option<ChainItem> {
        let mut patterns = Vec::new();
        loop {
            match e {
                Expr::Select(p, inner) => {
                    patterns.push(p.clone());
                    e = inner;
                }
                Expr::Name(id) => {
                    return Some(ChainItem {
                        name: *id,
                        patterns,
                    })
                }
                Expr::Bin(..) => return None,
            }
        }
    }
}

/// An inclusion expression: a right-grouped chain of `⊂` (or `⊃`) over
/// selection-wrapped region names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// The chain direction.
    pub dir: ChainDir,
    /// The items, in expression order (at least two).
    pub items: Vec<ChainItem>,
}

impl Chain {
    /// Recognizes a right-grouped inclusion chain in an expression.
    /// Returns `None` if the expression has any other shape.
    pub fn from_expr(e: &Expr) -> Option<Chain> {
        let (op, dir) = match find_chain_op(e)? {
            BinOp::IncludedIn => (BinOp::IncludedIn, ChainDir::IncludedIn),
            BinOp::Including => (BinOp::Including, ChainDir::Including),
            _ => return None,
        };
        let mut items = Vec::new();
        let mut cur = e;
        loop {
            match cur {
                Expr::Bin(o, l, r) if *o == op => {
                    items.push(ChainItem::from_expr(l)?);
                    cur = r;
                }
                _ => {
                    items.push(ChainItem::from_expr(cur)?);
                    break;
                }
            }
        }
        (items.len() >= 2).then_some(Chain { dir, items })
    }

    /// Rebuilds the (right-grouped) expression.
    pub fn to_expr(&self) -> Expr {
        let op = self.dir.op();
        let mut it = self.items.iter().rev();
        let mut e = it.next().expect("chains have at least two items").to_expr();
        for item in it {
            e = Expr::bin(op, item.to_expr(), e);
        }
        e
    }

    /// The `(outer, inner)` name pair around interior position `j` — the
    /// direction-aware neighbors used by the droppability test.
    fn around(&self, j: usize) -> (NameId, NameId) {
        match self.dir {
            ChainDir::IncludedIn => (self.items[j + 1].name, self.items[j - 1].name),
            ChainDir::Including => (self.items[j - 1].name, self.items[j + 1].name),
        }
    }

    /// True if interior item `j` can be dropped without changing the
    /// chain's result on any instance satisfying `rig`.
    pub fn droppable(&self, rig: &Rig, j: usize) -> bool {
        if j == 0 || j + 1 >= self.items.len() {
            return false; // endpoints anchor the result / outermost witness
        }
        let item = &self.items[j];
        if !item.patterns.is_empty() {
            return false; // selections filter witnesses; never drop them
        }
        let (outer, inner) = self.around(j);
        let mid = item.name;
        if mid == outer || mid == inner {
            // With equal names the interception argument breaks down (the
            // blocked node is also an endpoint); be conservative.
            return false;
        }
        // Every RIG path outer → inner must pass through mid: with mid
        // removed, inner must be unreachable from outer.
        !rig.reachable_avoiding(outer, &[mid])[inner.index()]
    }

    /// Greedily drops droppable interior items until a fixpoint, returning
    /// the optimized chain. The result is equivalent to `self` on every
    /// instance satisfying `rig`.
    ///
    /// Interior positions are tried outermost-first (right-to-left for a
    /// `⊂`-chain), which reproduces the paper's Section 2.2 rewrite of
    /// `Name ⊂ Proc_header ⊂ Proc ⊂ Program` into
    /// `Name ⊂ Proc_header ⊂ Program`. Several minimal equivalents may
    /// exist (dropping `Proc_header` and keeping `Proc` is equally sound
    /// for that RIG); the scan order just fixes a deterministic choice.
    pub fn optimize(&self, rig: &Rig) -> Chain {
        let mut cur = self.clone();
        loop {
            let Some(j) = (1..cur.items.len().saturating_sub(1))
                .rev()
                .find(|&j| cur.droppable(rig, j))
            else {
                return cur;
            };
            cur.items.remove(j);
        }
    }
}

/// The chain operator of `e`'s spine, if `e` is a binary node with a chain
/// operator.
fn find_chain_op(e: &Expr) -> Option<BinOp> {
    match e {
        Expr::Bin(op, ..) if matches!(op, BinOp::IncludedIn | BinOp::Including) => Some(*op),
        _ => None,
    }
}

/// Optimizes every maximal inclusion chain inside an arbitrary expression.
/// Sub-expressions that are not chains are traversed recursively.
pub fn optimize_expr(e: &Expr, rig: &Rig) -> Expr {
    if let Some(chain) = Chain::from_expr(e) {
        return chain.optimize(rig).to_expr();
    }
    match e {
        Expr::Name(_) => e.clone(),
        Expr::Select(p, inner) => optimize_expr(inner, rig).select(p.clone()),
        Expr::Bin(op, l, r) => Expr::bin(*op, optimize_expr(l, rig), optimize_expr(r, rig)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::Schema;

    fn fig1() -> (Rig, Schema) {
        let rig = Rig::figure_1();
        let s = rig.schema().clone();
        (rig, s)
    }

    fn chain_of(s: &Schema, dir: ChainDir, names: &[&str]) -> Chain {
        Chain {
            dir,
            items: names
                .iter()
                .map(|n| ChainItem::bare(s.expect_id(n)))
                .collect(),
        }
    }

    #[test]
    fn round_trip_expr() {
        let (_, s) = fig1();
        let c = chain_of(
            &s,
            ChainDir::IncludedIn,
            &["Name", "Proc_header", "Proc", "Program"],
        );
        let e = c.to_expr();
        assert_eq!(
            e.display(&s).to_string(),
            "Name ⊂ Proc_header ⊂ Proc ⊂ Program"
        );
        assert_eq!(Chain::from_expr(&e), Some(c));
    }

    #[test]
    fn chain_with_selections_round_trips() {
        let (_, s) = fig1();
        let e = Expr::name(s.expect_id("Var"))
            .select("x")
            .included_in(Expr::name(s.expect_id("Proc")));
        let c = Chain::from_expr(&e).expect("is a chain");
        assert_eq!(c.items[0].patterns, vec!["x".to_string()]);
        assert_eq!(c.to_expr(), e);
    }

    #[test]
    fn non_chains_are_rejected() {
        let (_, s) = fig1();
        let a = Expr::name(s.expect_id("Proc"));
        let b = Expr::name(s.expect_id("Var"));
        assert!(Chain::from_expr(&a).is_none(), "a bare name is not a chain");
        assert!(Chain::from_expr(&a.clone().union(b.clone())).is_none());
        // Mixed ⊂ and ⊃ is not an inclusion expression.
        let mixed = a.clone().included_in(b.clone().including(a.clone()));
        assert!(Chain::from_expr(&mixed).is_none());
        // Left-grouped chains are not the right-grouped canonical form.
        let left = a.clone().included_in(b.clone()).included_in(a);
        assert!(Chain::from_expr(&left).is_none());
    }

    #[test]
    fn paper_example_drops_proc() {
        let (rig, s) = fig1();
        let e1 = chain_of(
            &s,
            ChainDir::IncludedIn,
            &["Name", "Proc_header", "Proc", "Program"],
        );
        let opt = e1.optimize(&rig);
        let e2 = chain_of(
            &s,
            ChainDir::IncludedIn,
            &["Name", "Proc_header", "Program"],
        );
        assert_eq!(opt, e2, "the paper's e1 optimizes to e2");
    }

    #[test]
    fn proc_header_is_not_droppable() {
        // "we cannot further omit the test for inclusion in Proc_header,
        // since we need to distinguish between names of programs and names
        // of procedures" — Name reaches Program via Prog_header too.
        let (rig, s) = fig1();
        let c = chain_of(
            &s,
            ChainDir::IncludedIn,
            &["Name", "Proc_header", "Program"],
        );
        assert_eq!(c.optimize(&rig), c);
    }

    #[test]
    fn including_chain_optimizes_symmetrically() {
        let (rig, s) = fig1();
        let c = chain_of(
            &s,
            ChainDir::Including,
            &["Program", "Proc", "Proc_header", "Name"],
        );
        let opt = c.optimize(&rig);
        // The scan drops Proc_header (every Proc → Name path passes through
        // it); [Program, Proc_header, Name] would be an equally minimal
        // equivalent reached under the opposite scan order.
        assert_eq!(
            opt,
            chain_of(&s, ChainDir::Including, &["Program", "Proc", "Name"])
        );
    }

    #[test]
    fn items_with_patterns_are_kept() {
        let (rig, s) = fig1();
        let mut c = chain_of(
            &s,
            ChainDir::IncludedIn,
            &["Name", "Proc_header", "Proc", "Program"],
        );
        c.items[2].patterns.push("main".into()); // σ_main(Proc)
        let opt = c.optimize(&rig);
        // Proc carries a selection, so it survives; its now-redundant
        // neighbor Proc_header is dropped instead.
        let mut expected = chain_of(&s, ChainDir::IncludedIn, &["Name", "Proc", "Program"]);
        expected.items[1].patterns.push("main".into());
        assert_eq!(opt, expected, "selected items are never dropped");
    }

    #[test]
    fn optimize_expr_recurses_into_non_chain_shapes() {
        let (rig, s) = fig1();
        let chain = chain_of(
            &s,
            ChainDir::IncludedIn,
            &["Name", "Proc_header", "Proc", "Program"],
        )
        .to_expr();
        let e = chain.clone().union(Expr::name(s.expect_id("Var")));
        let opt = optimize_expr(&e, &rig);
        let expected = chain_of(
            &s,
            ChainDir::IncludedIn,
            &["Name", "Proc_header", "Program"],
        )
        .to_expr()
        .union(Expr::name(s.expect_id("Var")));
        assert_eq!(opt, expected);
    }

    #[test]
    fn two_item_chains_never_shrink() {
        let (rig, s) = fig1();
        let c = chain_of(&s, ChainDir::IncludedIn, &["Name", "Program"]);
        assert_eq!(c.optimize(&rig), c);
    }
}
