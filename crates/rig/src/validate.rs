//! Validating that an instance satisfies a RIG (Definition 2.4) or a ROG.
//!
//! `I` satisfies RIG `G` iff for every pair of regions where `r_i` directly
//! includes `r_j`, the edge `(R_i, R_j)` is in `G`. The ROG condition is
//! the analogue for direct precedence.

use crate::graph::{Rig, Rog};
use tr_core::{Instance, NameId, Region};

/// A violation of a RIG: a direct inclusion with no corresponding edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RigViolation {
    /// The directly-including (parent) region and its name.
    pub parent: (Region, NameId),
    /// The directly-included (child) region and its name.
    pub child: (Region, NameId),
}

/// Returns the first RIG violation in `I`, if any.
pub fn check_rig<W>(inst: &Instance<W>, rig: &Rig) -> Option<RigViolation> {
    assert_eq!(
        inst.schema(),
        rig.schema(),
        "instance and RIG schemas differ"
    );
    let forest = inst.forest();
    for (i, child_region, child_name) in forest.iter() {
        if let Some(p) = forest.parent(i) {
            let (parent_region, parent_name) = forest.node(p);
            if !rig.has_edge(parent_name, child_name) {
                return Some(RigViolation {
                    parent: (parent_region, parent_name),
                    child: (child_region, child_name),
                });
            }
        }
    }
    None
}

/// True if `I` satisfies the RIG (`I ∈ 𝓘_G` in the paper's notation).
pub fn satisfies_rig<W>(inst: &Instance<W>, rig: &Rig) -> bool {
    check_rig(inst, rig).is_none()
}

/// A violation of a ROG: a direct precedence with no corresponding edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RogViolation {
    /// The directly-preceding region and its name.
    pub before: (Region, NameId),
    /// The directly-following region and its name.
    pub after: (Region, NameId),
}

/// Returns the first ROG violation in `I`, if any.
///
/// `r` directly precedes `s` iff `r < s` and there is no `t` with
/// `r < t < s` (Section 2.2). With regions sorted by left endpoint, `s` is
/// directly preceded by `r` iff `left(s) > right(r)` and `left(s) ≤ M(r)`,
/// where `M(r)` is the minimum right endpoint among regions entirely to the
/// right of `r`.
pub fn check_rog<W>(inst: &Instance<W>, rog: &Rog) -> Option<RogViolation> {
    assert_eq!(
        inst.schema(),
        rog.schema(),
        "instance and ROG schemas differ"
    );
    let all = inst.all_with_names();
    // suffix_min_right[i] = min right endpoint among regions i.. (sorted by left).
    let n = all.len();
    let mut suffix_min_right = vec![u32::MAX; n + 1];
    for i in (0..n).rev() {
        suffix_min_right[i] = suffix_min_right[i + 1].min(all[i].0.right());
    }
    for &(r, r_name) in all {
        // Regions strictly to the right of r start at index `from`.
        let from = all.partition_point(|&(x, _)| x.left() <= r.right());
        if from == n {
            continue;
        }
        let m = suffix_min_right[from];
        // Every s with right(r) < left(s) ≤ m is directly preceded by r.
        for &(s, s_name) in &all[from..] {
            if s.left() > m {
                break;
            }
            if !rog.has_edge(r_name, s_name) {
                return Some(RogViolation {
                    before: (r, r_name),
                    after: (s, s_name),
                });
            }
        }
    }
    None
}

/// True if `I` satisfies the ROG.
pub fn satisfies_rog<W>(inst: &Instance<W>, rog: &Rog) -> bool {
    check_rog(inst, rog).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Rig, Rog};
    use tr_core::{region, InstanceBuilder, Schema};

    fn schema() -> Schema {
        Schema::new(["A", "B", "C"])
    }

    #[test]
    fn rig_accepts_conforming_instance() {
        let rig = Rig::from_edges(schema(), [("A", "B"), ("B", "C")]);
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 9))
            .add("B", region(1, 8))
            .add("C", region(2, 3))
            .build_valid();
        assert!(satisfies_rig(&inst, &rig));
    }

    #[test]
    fn rig_rejects_wrong_direct_parent() {
        let rig = Rig::from_edges(schema(), [("A", "B"), ("B", "C")]);
        // C directly inside A (no B in between) — not an edge.
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 9))
            .add("C", region(2, 3))
            .build_valid();
        let v = check_rig(&inst, &rig).expect("violation");
        assert_eq!(v.parent.0, region(0, 9));
        assert_eq!(v.child.0, region(2, 3));
    }

    #[test]
    fn rig_only_constrains_direct_inclusion() {
        let rig = Rig::from_edges(schema(), [("A", "B"), ("B", "C")]);
        // C transitively inside A through B: fine even though (A, C) is no edge.
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 9))
            .add("B", region(1, 8))
            .add("C", region(2, 3))
            .build_valid();
        assert!(satisfies_rig(&inst, &rig));
    }

    #[test]
    fn rog_checks_direct_precedence_only() {
        let rog = Rog::from_edges(schema(), [("A", "B"), ("B", "C")]);
        // A [0..1] < B [3..4] < C [6..7]: direct pairs are (A,B), (B,C);
        // (A,C) is *not* direct because B lies between.
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 1))
            .add("B", region(3, 4))
            .add("C", region(6, 7))
            .build_valid();
        assert!(satisfies_rog(&inst, &rog));
    }

    #[test]
    fn rog_rejects_unlisted_direct_pair() {
        let rog = Rog::from_edges(schema(), [("A", "B")]);
        let inst = InstanceBuilder::new(schema())
            .add("B", region(0, 1))
            .add("A", region(3, 4))
            .build_valid();
        let v = check_rog(&inst, &rog).expect("violation");
        assert_eq!(v.before.0, region(0, 1));
        assert_eq!(v.after.0, region(3, 4));
    }

    #[test]
    fn rog_nested_regions_do_not_precede() {
        let rog = Rog::new(schema());
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 9))
            .add("B", region(1, 8))
            .build_valid();
        assert!(
            satisfies_rog(&inst, &rog),
            "nested regions have no precedence pairs"
        );
    }

    #[test]
    fn rog_multiple_direct_successors() {
        // A [0..1]; B [3..10] and C [4..5] nested inside B. Direct
        // precedence: A directly precedes both B and C (C starts before B
        // ends — both are "first" after A with no region between).
        let rog = Rog::from_edges(schema(), [("A", "B"), ("A", "C")]);
        let inst = InstanceBuilder::new(schema())
            .add("A", region(0, 1))
            .add("B", region(3, 10))
            .add("C", region(4, 5))
            .build_valid();
        assert!(satisfies_rog(&inst, &rog));
        let rog2 = Rog::from_edges(schema(), [("A", "B")]);
        assert!(!satisfies_rog(&inst, &rog2));
    }
}
