//! # tr-rig — region inclusion graphs and RIG-based optimization
//!
//! Section 2.2 of the paper introduces the *region inclusion graph* (RIG):
//! a schema-level description of which region names can directly include
//! which. This crate implements:
//!
//! * [`Rig`] / [`Rog`] graphs and their derivation from a [`Grammar`];
//! * validation of instances against a RIG/ROG ([`satisfies_rig`],
//!   [`satisfies_rog`] — Definition 2.4);
//! * the polynomial optimizer for *inclusion expressions* (Section 5.1 /
//!   \[CM94\]): [`Chain::optimize`] and [`optimize_expr`];
//! * the *minimal set problem* of Section 6 (Proposition 6.1):
//!   NP-complete in general ([`MinimalSetProblem`], with the vertex-cover
//!   reduction [`vertex_cover_to_minimal_set`]), polynomial min-cut for a
//!   single pair ([`min_vertex_cut`]).

#![warn(missing_docs)]

pub mod chain;
pub mod grammar;
pub mod graph;
pub mod mincut;
pub mod minimal_set;
pub mod validate;

pub use chain::{optimize_expr, Chain, ChainDir, ChainItem};
pub use grammar::{source_code_grammar, Grammar};
pub use graph::{NameGraph, Rig, Rog};
pub use mincut::min_vertex_cut;
pub use minimal_set::{min_vertex_cover_brute, vertex_cover_to_minimal_set, MinimalSetProblem};
pub use validate::{
    check_rig, check_rog, satisfies_rig, satisfies_rog, RigViolation, RogViolation,
};
