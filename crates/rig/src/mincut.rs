//! The polynomial special case of the minimal set problem: for a chain
//! with a single operation (`e = R_1 ⊃_d R_2`) a minimum interception set
//! is a minimum *vertex* cut between the two names, computable by max-flow
//! (the "variant of the min-cut problem" the paper cites from \[PS82\]).
//!
//! Standard node-splitting construction: every name `x` becomes
//! `x_in → x_out` with capacity 1 (∞ for the two endpoints); every RIG
//! edge `a → b` becomes `a_out → b_in` with capacity ∞. The max flow from
//! `u_out` to `v_in` equals the minimum number of interior names whose
//! removal disconnects `u` from `v`; the cut is read off the residual
//! graph.

use crate::graph::Rig;
use tr_core::NameId;

const INF: u32 = u32::MAX / 4;

/// A minimum set of interior names intercepting every RIG path `u → v`
/// with a nonempty interior, via max-flow/min-cut. The direct edge
/// `u → v` (if present) has nothing to intercept and is excluded from the
/// flow network. Runs in polynomial time.
pub fn min_vertex_cut(rig: &Rig, u: NameId, v: NameId) -> Vec<NameId> {
    let n = rig.num_nodes();
    // Node 2i = x_in, node 2i+1 = x_out.
    let size = 2 * n;
    let mut cap = vec![vec![0u32; size]; size];
    for i in 0..n {
        let c = if i == u.index() || i == v.index() {
            INF
        } else {
            1
        };
        cap[2 * i][2 * i + 1] = c;
    }
    for (a, b) in rig.edges() {
        if (a, b) == (u, v) {
            continue; // the direct edge needs no interception
        }
        cap[2 * a.index() + 1][2 * b.index()] = INF;
    }
    let (source, sink) = (2 * u.index() + 1, 2 * v.index());
    let flow = max_flow(&mut cap, source, sink);
    debug_assert!(
        flow < INF,
        "every remaining u→v path has an interior unit-capacity node"
    );
    // Residual reachability from the source determines the cut: a name is
    // cut iff its in-node is reachable but its out-node is not.
    let reach = residual_reachable(&cap, source, size);
    let mut cut: Vec<NameId> = (0..n)
        .filter(|&i| reach[2 * i] && !reach[2 * i + 1])
        .map(NameId::from_index)
        .collect();
    cut.sort_unstable();
    debug_assert_eq!(cut.len(), flow as usize);
    cut
}

/// Edmonds–Karp max flow on a dense capacity matrix. `cap` is mutated
/// into the residual network.
fn max_flow(cap: &mut [Vec<u32>], source: usize, sink: usize) -> u32 {
    let size = cap.len();
    let mut total = 0u32;
    loop {
        // BFS for an augmenting path.
        let mut prev = vec![usize::MAX; size];
        prev[source] = source;
        let mut queue = std::collections::VecDeque::from([source]);
        'bfs: while let Some(x) = queue.pop_front() {
            for y in 0..size {
                if prev[y] == usize::MAX && cap[x][y] > 0 {
                    prev[y] = x;
                    if y == sink {
                        break 'bfs;
                    }
                    queue.push_back(y);
                }
            }
        }
        if prev[sink] == usize::MAX {
            return total;
        }
        // Bottleneck along the path.
        let mut bottleneck = u32::MAX;
        let mut y = sink;
        while y != source {
            let x = prev[y];
            bottleneck = bottleneck.min(cap[x][y]);
            y = x;
        }
        let mut y = sink;
        while y != source {
            let x = prev[y];
            cap[x][y] -= bottleneck;
            cap[y][x] += bottleneck;
            y = x;
        }
        total += bottleneck;
    }
}

fn residual_reachable(cap: &[Vec<u32>], source: usize, size: usize) -> Vec<bool> {
    let mut seen = vec![false; size];
    seen[source] = true;
    let mut stack = vec![source];
    while let Some(x) = stack.pop() {
        for y in 0..size {
            if !seen[y] && cap[x][y] > 0 {
                seen[y] = true;
                stack.push(y);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimal_set::MinimalSetProblem;
    use tr_core::Schema;

    #[test]
    fn diamond_needs_two() {
        let schema = Schema::new(["A", "B", "C", "D"]);
        let rig = Rig::from_edges(
            schema.clone(),
            [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
        );
        let cut = min_vertex_cut(&rig, schema.expect_id("A"), schema.expect_id("D"));
        assert_eq!(cut, vec![schema.expect_id("B"), schema.expect_id("C")]);
    }

    #[test]
    fn bottleneck_of_one() {
        let schema = Schema::new(["A", "B", "C", "M", "D"]);
        let rig = Rig::from_edges(
            schema.clone(),
            [("A", "B"), ("A", "C"), ("B", "M"), ("C", "M"), ("M", "D")],
        );
        let cut = min_vertex_cut(&rig, schema.expect_id("A"), schema.expect_id("D"));
        assert_eq!(cut, vec![schema.expect_id("M")]);
    }

    #[test]
    fn direct_edge_alone_needs_nothing() {
        let schema = Schema::new(["A", "B"]);
        let rig = Rig::from_edges(schema.clone(), [("A", "B")]);
        assert!(min_vertex_cut(&rig, schema.expect_id("A"), schema.expect_id("B")).is_empty());
    }

    #[test]
    fn disconnected_pair_has_empty_cut() {
        let schema = Schema::new(["A", "B"]);
        let rig = Rig::new(schema.clone());
        let cut = min_vertex_cut(&rig, schema.expect_id("A"), schema.expect_id("B"));
        assert!(cut.is_empty());
    }

    #[test]
    fn agrees_with_exact_solver_on_random_dags() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..30 {
            let n = rng.gen_range(4..9);
            let names: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
            let schema = Schema::new(names);
            let mut rig = Rig::new(schema.clone());
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.35) {
                        rig.0.add_edge(NameId::from_index(i), NameId::from_index(j));
                    }
                }
            }
            let (u, v) = (NameId::from_index(0), NameId::from_index(n - 1));
            let cut = min_vertex_cut(&rig, u, v);
            let p = MinimalSetProblem::for_chain(rig, &[u, v]);
            assert!(p.covers(&cut), "trial {trial}: min-cut result must cover");
            let exact = p.solve_exact().expect("always feasible");
            assert_eq!(cut.len(), exact.len(), "trial {trial}: sizes must agree");
        }
    }

    #[test]
    fn cut_respects_cycles() {
        // u → M → u cycle plus u → M → v: M is still the unique cut.
        let schema = Schema::new(["U", "M", "V"]);
        let rig = Rig::from_edges(schema.clone(), [("U", "M"), ("M", "U"), ("M", "V")]);
        let cut = min_vertex_cut(&rig, schema.expect_id("U"), schema.expect_id("V"));
        assert_eq!(cut, vec![schema.expect_id("M")]);
    }
}
