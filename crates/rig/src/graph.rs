//! Region inclusion graphs (RIGs) and region order graphs (ROGs),
//! Section 2.2 of the paper.
//!
//! Both are directed graphs over the region names of a [`Schema`]: a RIG
//! edge `(R_i, R_j)` says an `R_i` region *can directly include* an `R_j`
//! region; a ROG edge says an `R_i` region *can directly precede* an `R_j`
//! region. The two share the [`NameGraph`] representation.

use tr_core::{NameId, Schema};

/// A directed graph over the names of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameGraph {
    schema: Schema,
    /// Adjacency by source node (indexed by `NameId::index()`), each list
    /// sorted and duplicate-free.
    adj: Vec<Vec<u16>>,
}

impl NameGraph {
    /// An edgeless graph over `schema`.
    pub fn new(schema: Schema) -> NameGraph {
        let adj = vec![Vec::new(); schema.len()];
        NameGraph { schema, adj }
    }

    /// Builds a graph from `(from, to)` name pairs (strings resolved
    /// against the schema).
    pub fn from_edges<'a>(
        schema: Schema,
        edges: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> NameGraph {
        let mut g = NameGraph::new(schema);
        for (a, b) in edges {
            let (a, b) = (g.schema.expect_id(a), g.schema.expect_id(b));
            g.add_edge(a, b);
        }
        g
    }

    /// The underlying schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Adds an edge; returns false if it was already present.
    pub fn add_edge(&mut self, from: NameId, to: NameId) -> bool {
        let list = &mut self.adj[from.index()];
        match list.binary_search(&(to.index() as u16)) {
            Ok(_) => false,
            Err(i) => {
                list.insert(i, to.index() as u16);
                true
            }
        }
    }

    /// True if the edge is present.
    pub fn has_edge(&self, from: NameId, to: NameId) -> bool {
        self.adj[from.index()]
            .binary_search(&(to.index() as u16))
            .is_ok()
    }

    /// The successors of a node.
    pub fn successors(&self, from: NameId) -> impl Iterator<Item = NameId> + '_ {
        self.adj[from.index()]
            .iter()
            .map(|&i| NameId::from_index(i as usize))
    }

    /// All edges, in `(from, to)` order.
    pub fn edges(&self) -> impl Iterator<Item = (NameId, NameId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(i, list)| {
            list.iter()
                .map(move |&j| (NameId::from_index(i), NameId::from_index(j as usize)))
        })
    }

    /// Nodes reachable from `from` (excluding `from` itself unless it lies
    /// on a cycle), with the nodes in `blocked` removed from the graph.
    pub fn reachable_avoiding(&self, from: NameId, blocked: &[NameId]) -> Vec<bool> {
        let n = self.num_nodes();
        let mut blocked_mask = vec![false; n];
        for b in blocked {
            blocked_mask[b.index()] = true;
        }
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        // Seed with successors so `from` is only marked if re-entered (and
        // so it always works as a source even when listed in `blocked`).
        for s in self.successors(from) {
            if !blocked_mask[s.index()] && !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s.index());
            }
        }
        while let Some(u) = stack.pop() {
            for &v in &self.adj[u] {
                let v = v as usize;
                if !blocked_mask[v] && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Nodes reachable from `from` by one or more edges.
    pub fn reachable(&self, from: NameId) -> Vec<bool> {
        self.reachable_avoiding(from, &[])
    }

    /// True if `to` is reachable from `from` by one or more edges.
    pub fn can_reach(&self, from: NameId, to: NameId) -> bool {
        self.reachable(from)[to.index()]
    }

    /// True if the graph has no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm.
        let n = self.num_nodes();
        let mut indeg = vec![0usize; n];
        for (_, to) in self.edges() {
            indeg[to.index()] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in &self.adj[u] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v as usize);
                }
            }
        }
        seen == n
    }

    /// The number of nodes on the longest directed path (for an acyclic
    /// graph). Returns `None` if the graph has a cycle. For a RIG this
    /// bounds the nesting depth of satisfying instances (Section 5.1).
    pub fn longest_path_nodes(&self) -> Option<usize> {
        if !self.is_acyclic() {
            return None;
        }
        let n = self.num_nodes();
        let mut memo: Vec<Option<usize>> = vec![None; n];
        fn dfs(g: &NameGraph, u: usize, memo: &mut Vec<Option<usize>>) -> usize {
            if let Some(v) = memo[u] {
                return v;
            }
            let best = g.adj[u]
                .iter()
                .map(|&v| dfs(g, v as usize, memo))
                .max()
                .unwrap_or(0)
                + 1;
            memo[u] = Some(best);
            best
        }
        (0..n).map(|u| dfs(self, u, &mut memo)).max().or(Some(0))
    }
}

/// A region inclusion graph: edge `(R_i, R_j)` ⇔ an `R_i` region can
/// directly include an `R_j` region (Definition 2.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rig(pub NameGraph);

/// A region order graph: edge `(R_i, R_j)` ⇔ an `R_i` region can directly
/// precede an `R_j` region (Section 2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rog(pub NameGraph);

impl Rig {
    /// An edgeless RIG.
    pub fn new(schema: Schema) -> Rig {
        Rig(NameGraph::new(schema))
    }

    /// Builds a RIG from `(parent, child)` name pairs.
    pub fn from_edges<'a>(
        schema: Schema,
        edges: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Rig {
        Rig(NameGraph::from_edges(schema, edges))
    }

    /// The paper's Figure 1: the RIG for source-code regions.
    pub fn figure_1() -> Rig {
        let schema = Schema::new([
            "Program",
            "Prog_header",
            "Prog_body",
            "Proc",
            "Proc_header",
            "Proc_body",
            "Name",
            "Var",
        ]);
        Rig::from_edges(
            schema,
            [
                ("Program", "Prog_header"),
                ("Program", "Prog_body"),
                ("Prog_header", "Name"),
                ("Prog_body", "Var"),
                ("Prog_body", "Proc"),
                ("Proc", "Proc_header"),
                ("Proc", "Proc_body"),
                ("Proc_header", "Name"),
                ("Proc_body", "Var"),
                ("Proc_body", "Proc"),
            ],
        )
    }
}

impl Rog {
    /// An edgeless ROG.
    pub fn new(schema: Schema) -> Rog {
        Rog(NameGraph::new(schema))
    }

    /// An upper bound on the number of pairwise non-overlapping regions in
    /// instances satisfying an *acyclic* ROG: the longest directed path
    /// (in nodes). `None` for cyclic ROGs (unbounded). This is the bound
    /// Proposition 5.4 needs to make both-included expressible
    /// (`tr_ext::both_included_expr`'s `width`).
    pub fn width_bound(&self) -> Option<usize> {
        self.0.longest_path_nodes()
    }

    /// Builds a ROG from `(before, after)` name pairs.
    pub fn from_edges<'a>(
        schema: Schema,
        edges: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Rog {
        Rog(NameGraph::from_edges(schema, edges))
    }
}

impl std::ops::Deref for Rig {
    type Target = NameGraph;
    fn deref(&self) -> &NameGraph {
        &self.0
    }
}

impl std::ops::Deref for Rog {
    type Target = NameGraph;
    fn deref(&self) -> &NameGraph {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_shape() {
        let rig = Rig::figure_1();
        let s = rig.schema().clone();
        assert_eq!(rig.num_edges(), 10);
        assert!(rig.has_edge(s.expect_id("Proc"), s.expect_id("Proc_header")));
        assert!(!rig.has_edge(s.expect_id("Program"), s.expect_id("Proc")));
        assert!(!rig.is_acyclic(), "Proc_body → Proc → Proc_body is a cycle");
    }

    #[test]
    fn reachability() {
        let rig = Rig::figure_1();
        let s = rig.schema().clone();
        assert!(rig.can_reach(s.expect_id("Program"), s.expect_id("Name")));
        assert!(!rig.can_reach(s.expect_id("Name"), s.expect_id("Program")));
        // Cyclic self-reachability.
        assert!(rig.can_reach(s.expect_id("Proc"), s.expect_id("Proc")));
        assert!(!rig.can_reach(s.expect_id("Program"), s.expect_id("Program")));
    }

    #[test]
    fn reachability_avoiding_blocks_paths() {
        let rig = Rig::figure_1();
        let s = rig.schema().clone();
        let program = s.expect_id("Program");
        let name = s.expect_id("Name");
        let hdrs = [s.expect_id("Prog_header"), s.expect_id("Proc_header")];
        let reach = rig.reachable_avoiding(program, &hdrs);
        assert!(
            !reach[name.index()],
            "all paths to Name go through a header"
        );
        let reach2 = rig.reachable_avoiding(program, &[s.expect_id("Prog_header")]);
        assert!(reach2[name.index()], "Proc_header path remains");
    }

    #[test]
    fn acyclic_and_longest_path() {
        let schema = Schema::new(["A", "B", "C"]);
        let g = NameGraph::from_edges(schema, [("A", "B"), ("B", "C"), ("A", "C")]);
        assert!(g.is_acyclic());
        assert_eq!(g.longest_path_nodes(), Some(3));
        assert_eq!(Rig::figure_1().longest_path_nodes(), None);
    }

    #[test]
    fn rog_width_bound() {
        let schema = Schema::new(["A", "B", "C"]);
        let rog = Rog::from_edges(schema.clone(), [("A", "B"), ("B", "C")]);
        assert_eq!(rog.width_bound(), Some(3));
        let cyclic = Rog::from_edges(schema, [("A", "B"), ("B", "A")]);
        assert_eq!(
            cyclic.width_bound(),
            None,
            "self-following regions are unbounded"
        );
    }

    #[test]
    fn empty_graph() {
        let g = NameGraph::new(Schema::new(["A"]));
        assert!(g.is_acyclic());
        assert_eq!(g.longest_path_nodes(), Some(1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn add_edge_dedups() {
        let schema = Schema::new(["A", "B"]);
        let mut g = NameGraph::new(schema.clone());
        let (a, b) = (schema.expect_id("A"), schema.expect_id("B"));
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(a, b)]);
    }
}
