//! Deriving RIGs and ROGs from a grammar (Section 2.2: "if the structure
//! of the file follows some grammar G, then the RIG can be automatically
//! derived from G").
//!
//! We model the grammar as a context-free skeleton: productions map a
//! region name to a sequence of region names (terminal content is
//! irrelevant to the graphs and is omitted).

use crate::graph::{NameGraph, Rig, Rog};
use tr_core::{NameId, Schema};

/// A context-free structural grammar over region names.
#[derive(Debug, Clone)]
pub struct Grammar {
    schema: Schema,
    /// Productions: `lhs → rhs₁ … rhsₖ` (nonterminals only).
    productions: Vec<(NameId, Vec<NameId>)>,
}

impl Grammar {
    /// Starts an empty grammar over `schema`.
    pub fn new(schema: Schema) -> Grammar {
        Grammar {
            schema,
            productions: Vec::new(),
        }
    }

    /// Adds a production, with names given as strings.
    pub fn production(mut self, lhs: &str, rhs: &[&str]) -> Grammar {
        let l = self.schema.expect_id(lhs);
        let r = rhs.iter().map(|n| self.schema.expect_id(n)).collect();
        self.productions.push((l, r));
        self
    }

    /// The grammar's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The productions.
    pub fn productions(&self) -> &[(NameId, Vec<NameId>)] {
        &self.productions
    }

    /// Derives the RIG: an edge `(A_i, A_j)` iff the grammar has a rule
    /// with `A_i` on the left and `A_j` on the right (the paper's rule,
    /// end of Section 2.2).
    pub fn derive_rig(&self) -> Rig {
        let mut g = NameGraph::new(self.schema.clone());
        for (lhs, rhs) in &self.productions {
            for r in rhs {
                g.add_edge(*lhs, *r);
            }
        }
        Rig(g)
    }

    /// Derives a ROG: an edge `(A_i, A_j)` whenever `A_i` appears
    /// immediately before `A_j` on some right-hand side.
    ///
    /// This captures direct precedence between *siblings*. Direct
    /// precedence in an instance can also hold between non-siblings (e.g.
    /// the last leaf of one subtree and the head of the next); deriving
    /// those edges requires first/last-descendant closures and is
    /// intentionally out of scope — the paper only notes that a ROG "can
    /// also be derived from a grammar" without fixing the construction.
    pub fn derive_sibling_rog(&self) -> Rog {
        let mut g = NameGraph::new(self.schema.clone());
        for (_, rhs) in &self.productions {
            for w in rhs.windows(2) {
                g.add_edge(w[0], w[1]);
            }
        }
        Rog(g)
    }
}

impl Grammar {
    /// Generates a random instance whose structure follows the grammar:
    /// starting from `start`, each region expands by a randomly chosen
    /// production (or stays a leaf), recursively, until `max_regions` or
    /// `max_depth` is reached. The result always satisfies the derived
    /// RIG — the executable form of Section 2.2's "if the structure of
    /// the file follows some grammar G, then the RIG can be automatically
    /// derived from G".
    pub fn random_instance<R: rand::Rng>(
        &self,
        start: &str,
        max_regions: usize,
        max_depth: usize,
        rng: &mut R,
    ) -> tr_core::Instance {
        let start = self.schema.expect_id(start);
        let mut remaining = max_regions.max(1);
        let tree = self.grow(start, 1, max_depth, &mut remaining, rng);
        let mut builder = tr_core::InstanceBuilder::new(self.schema.clone());
        emit(&tree, 0, &mut builder);
        builder.build_valid()
    }

    fn grow<R: rand::Rng>(
        &self,
        name: NameId,
        depth: usize,
        max_depth: usize,
        remaining: &mut usize,
        rng: &mut R,
    ) -> GenNode {
        *remaining = remaining.saturating_sub(1);
        let mut node = GenNode {
            name,
            children: Vec::new(),
        };
        if depth >= max_depth || *remaining == 0 {
            return node;
        }
        let options: Vec<&Vec<NameId>> = self
            .productions
            .iter()
            .filter(|(lhs, _)| *lhs == name)
            .map(|(_, rhs)| rhs)
            .collect();
        if options.is_empty() || rng.gen_bool(0.25) {
            return node; // leaf (terminal content only)
        }
        let rhs = options[rng.gen_range(0..options.len())].clone();
        for child in rhs {
            if *remaining == 0 {
                break;
            }
            node.children
                .push(self.grow(child, depth + 1, max_depth, remaining, rng));
        }
        node
    }
}

struct GenNode {
    name: NameId,
    children: Vec<GenNode>,
}

fn width(n: &GenNode) -> u64 {
    2 + n.children.iter().map(width).sum::<u64>()
}

fn emit(n: &GenNode, start: u64, b: &mut tr_core::InstanceBuilder) -> u64 {
    let right = start + width(n) - 1;
    b.push_id(n.name, tr_core::Region::new(start as u32, right as u32));
    let mut cursor = start + 1;
    for c in &n.children {
        cursor = emit(c, cursor, b) + 1;
    }
    right
}

/// The paper's running example as a grammar: programs with headers and
/// bodies, procedures nesting recursively (Section 2.2).
pub fn source_code_grammar() -> Grammar {
    let schema = Schema::new([
        "Program",
        "Prog_header",
        "Prog_body",
        "Proc",
        "Proc_header",
        "Proc_body",
        "Name",
        "Var",
    ]);
    Grammar::new(schema)
        .production("Program", &["Prog_header", "Prog_body"])
        .production("Prog_header", &["Name"])
        .production("Prog_body", &["Var", "Proc"])
        .production("Proc", &["Proc_header", "Proc_body"])
        .production("Proc_header", &["Name"])
        .production("Proc_body", &["Var", "Proc"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Rig;

    #[test]
    fn derived_rig_matches_figure_1() {
        let derived = source_code_grammar().derive_rig();
        assert_eq!(derived, Rig::figure_1());
    }

    #[test]
    fn sibling_rog_edges() {
        let rog = source_code_grammar().derive_sibling_rog();
        let s = rog.schema().clone();
        assert!(rog.has_edge(s.expect_id("Prog_header"), s.expect_id("Prog_body")));
        assert!(rog.has_edge(s.expect_id("Var"), s.expect_id("Proc")));
        assert!(!rog.has_edge(s.expect_id("Proc"), s.expect_id("Var")));
    }

    #[test]
    fn generated_instances_satisfy_the_derived_rig() {
        use rand::prelude::*;
        let g = source_code_grammar();
        let rig = g.derive_rig();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..20 {
            let inst = g.random_instance("Program", 120, 8, &mut rng);
            assert!(crate::validate::satisfies_rig(&inst, &rig));
            assert!(!inst.is_empty());
            assert!(inst.len() <= 121);
        }
    }

    #[test]
    fn generation_respects_depth_and_budget() {
        use rand::prelude::*;
        let g = source_code_grammar();
        let mut rng = StdRng::seed_from_u64(22);
        let inst = g.random_instance("Program", 10, 3, &mut rng);
        assert!(inst.nesting_depth() <= 3);
        assert!(inst.len() <= 11);
        // A start symbol with no productions yields a single region.
        let inst = g.random_instance("Name", 10, 3, &mut rng);
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn empty_grammar_gives_edgeless_graphs() {
        let g = Grammar::new(Schema::new(["A"]));
        assert_eq!(g.derive_rig().num_edges(), 0);
        assert_eq!(g.derive_sibling_rog().num_edges(), 0);
    }
}
