//! Read-only file mappings for the v3 zero-decode open path.
//!
//! [`MappedBytes::open`] maps a store file into memory (private,
//! read-only `mmap(2)` via a minimal FFI shim — the workspace is
//! dependency-free) and falls back to an aligned heap read-copy when
//! mapping is unavailable: non-Unix targets, builds without the `mmap`
//! feature, a failing syscall, or the [`force_read_copy`] test switch.
//! Either way the caller gets a [`tr_core::ColumnSource`]: stable,
//! immutable bytes that `RegionSet` views can borrow for the mapping's
//! whole lifetime.
//!
//! Both paths guarantee at least 8-byte base alignment (pages for mmap,
//! a `u64` heap buffer for the copy), so the format's 64-byte-aligned
//! column offsets always land `u32`-aligned in memory.
//!
//! A fresh mapping is advised `MADV_WILLNEED` so the kernel starts
//! reading the column pages ahead of the first query touching them —
//! the mapped open path otherwise pays its deferred decode as a burst of
//! major faults on the first scan. The hint is best-effort (`madvise`
//! failures are ignored) and compiled out off Unix or without the `mmap`
//! feature.
//!
//! Three registry counters make the dispatch observable: `store.mmap_opens`
//! counts true mappings, `store.decode_fallbacks` counts opens served by
//! a copy or by the streaming decoder instead, and `store.madvise_willneed`
//! counts mappings whose readahead hint the kernel accepted.

use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use tr_core::ColumnSource;
use tr_obs::Counter;

/// Counters for the open-path dispatch, cached once per process.
struct MmapMetrics {
    mmap_opens: Arc<Counter>,
    decode_fallbacks: Arc<Counter>,
}

fn metrics() -> &'static MmapMetrics {
    static METRICS: OnceLock<MmapMetrics> = OnceLock::new();
    METRICS.get_or_init(|| MmapMetrics {
        mmap_opens: tr_obs::counter("store.mmap_opens"),
        decode_fallbacks: tr_obs::counter("store.decode_fallbacks"),
    })
}

/// Records an open that bypassed the mapped path entirely (v1/v2 file,
/// or a v3 open that had to read-copy).
pub(crate) fn note_decode_fallback() {
    metrics().decode_fallbacks.inc();
}

static FORCE_READ_COPY: AtomicBool = AtomicBool::new(false);

/// Forces [`MappedBytes::open`] onto the aligned read-copy fallback
/// (tests use this to exercise the no-mmap path on any platform).
pub fn force_read_copy(on: bool) {
    FORCE_READ_COPY.store(on, Ordering::SeqCst);
}

/// A whole store file as stable read-only bytes: an `mmap` when
/// available, an aligned heap copy otherwise.
pub struct MappedBytes {
    backing: Backing,
}

enum Backing {
    #[cfg(all(unix, feature = "mmap"))]
    Map(Mapping),
    Heap(AlignedBytes),
}

impl MappedBytes {
    /// Opens `path` as mapped (preferred) or copied bytes. Only I/O can
    /// fail; a failed `mmap` syscall silently falls back to the copy.
    pub fn open(path: &Path) -> std::io::Result<MappedBytes> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large"))?;
        if !FORCE_READ_COPY.load(Ordering::SeqCst) {
            #[cfg(all(unix, feature = "mmap"))]
            if len > 0 {
                if let Some(map) = Mapping::new(&file, len) {
                    metrics().mmap_opens.inc();
                    return Ok(MappedBytes {
                        backing: Backing::Map(map),
                    });
                }
            }
        }
        metrics().decode_fallbacks.inc();
        Ok(MappedBytes {
            backing: Backing::Heap(AlignedBytes::read_from(&mut file, len)?),
        })
    }

    /// The file contents.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, feature = "mmap"))]
            Backing::Map(m) => m.bytes(),
            Backing::Heap(h) => h.bytes(),
        }
    }

    /// True when backed by a real mapping (false on the copy fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, feature = "mmap"))]
            Backing::Map(_) => true,
            Backing::Heap(_) => false,
        }
    }
}

impl ColumnSource for MappedBytes {
    fn bytes(&self) -> &[u8] {
        MappedBytes::bytes(self)
    }
}

/// A byte buffer with `u64` base alignment — `Vec<u8>` only guarantees
/// alignment 1, which would break the in-place `u32` column views.
struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    fn read_from(file: &mut File, len: usize) -> std::io::Result<AlignedBytes> {
        let mut words = vec![0u64; len.div_ceil(8)];
        // View the zeroed u64 buffer as bytes for the read; the tail
        // bytes past `len` stay zero.
        let buf: &mut [u8] =
            unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast(), len) };
        file.read_exact(buf)?;
        Ok(AlignedBytes { words, len })
    }

    fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast(), self.len) }
    }
}

/// A private read-only `mmap(2)` of a whole file, unmapped on drop.
#[cfg(all(unix, feature = "mmap"))]
struct Mapping {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

// Safety: the mapping is PROT_READ MAP_PRIVATE — the kernel never lets
// anyone write through it, and the pointer/length pair is immutable for
// the struct's lifetime.
#[cfg(all(unix, feature = "mmap"))]
unsafe impl Send for Mapping {}
#[cfg(all(unix, feature = "mmap"))]
unsafe impl Sync for Mapping {}

#[cfg(all(unix, feature = "mmap"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    /// `MADV_WILLNEED` — same value on Linux and the BSDs/macOS.
    pub const MADV_WILLNEED: i32 = 3;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }
}

#[cfg(all(unix, feature = "mmap"))]
impl Mapping {
    /// Maps `len` bytes of `file`; `None` when the syscall fails (the
    /// caller falls back to a read-copy).
    fn new(file: &File, len: usize) -> Option<Mapping> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr.is_null() || ptr as isize == -1 {
            return None;
        }
        // Best-effort readahead: the v3 open path defers all column
        // decoding to first touch, so telling the kernel the whole file
        // is about to be needed turns the first scan's major-fault burst
        // into background I/O. A refusing kernel costs nothing.
        if unsafe { sys::madvise(ptr, len, sys::MADV_WILLNEED) } == 0 {
            tr_obs::counter("store.madvise_willneed").inc();
        }
        Some(Mapping { ptr, len })
    }

    fn bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr.cast(), self.len) }
    }
}

#[cfg(all(unix, feature = "mmap"))]
impl Drop for Mapping {
    fn drop(&mut self) {
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tr_store_mmap_{}_{name}.bin", std::process::id()))
    }

    #[test]
    fn mapped_and_copied_bytes_agree() {
        let path = tmp("agree");
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        std::fs::write(&path, &data).unwrap();

        let mapped = MappedBytes::open(&path).unwrap();
        assert_eq!(mapped.bytes(), &data[..]);

        force_read_copy(true);
        let copied = MappedBytes::open(&path).unwrap();
        force_read_copy(false);
        assert!(!copied.is_mapped());
        assert_eq!(copied.bytes(), &data[..]);
        // The copy fallback must still hand out u32-alignable memory.
        assert_eq!(copied.bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(all(unix, feature = "mmap"))]
    #[test]
    fn willneed_hint_is_counted_for_real_mappings() {
        let path = tmp("willneed");
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let before = tr_obs::counter("store.madvise_willneed").get();
        let m = MappedBytes::open(&path).unwrap();
        if m.is_mapped() {
            assert!(
                tr_obs::counter("store.madvise_willneed").get() > before,
                "a successful mapping should record its accepted hint"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_opens() {
        let path = tmp("empty");
        std::fs::write(&path, b"").unwrap();
        let m = MappedBytes::open(&path).unwrap();
        assert!(m.bytes().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
