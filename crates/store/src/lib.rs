//! # tr-store — index persistence
//!
//! PAT's whole point (and the paper's opening observation) is that "it is
//! impractical to fully scan large documents while processing on-line
//! queries — some of the data must be indexed". Indexing once and
//! querying many times needs the index on disk; this crate provides a
//! small, dependency-free binary format for an indexed document: the
//! text, its suffix array, the region schema and sets, and an optional
//! RIG.
//!
//! Three format generations coexist:
//!
//! * **v1** (`TRXIDX01`): a streamed body (text, suffix array, schema,
//!   region columns, RIG) with a checksum trailer. Load-only.
//! * **v2** (`TRXIDX02`): a peekable segment [`Manifest`] before the v1
//!   body, so a catalog can describe a document without decoding it.
//!   Load-only; [`save_document_v2`] keeps it writable for tests.
//! * **v3** (`TRXIDX03`, current): the manifest, then a directory of
//!   64-byte-aligned section offsets and sectional hashes, then the raw
//!   little-endian `u32` columns (suffix array, per-name lefts/rights)
//!   laid out for in-place use, then the text + RIG tail. A v3 file can
//!   be opened two ways: streamed through the same decoder as v1/v2
//!   ([`load_document`]), or **mapped** ([`MappedStore`]) — the columns
//!   are handed to the engine as zero-decode views borrowing the mapping,
//!   so a cold open costs O(manifest + directory), not O(file).
//!
//! [`load_document_auto`] picks the best loader by magic.
//!
//! ```
//! use tr_store::{save_document, load_document, StoredDocument};
//!
//! let inst = tr_markup::parse_sgml("<d><s>hi</s></d>").unwrap();
//! let dir = std::env::temp_dir().join("tr_store_doctest.trx");
//! save_document(&dir, "<d><s>hi</s></d>", &inst, None).unwrap();
//! let doc: StoredDocument = load_document(&dir).unwrap();
//! assert_eq!(doc.instance.len(), 2);
//! # std::fs::remove_file(dir).ok();
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod mmap;

use codec::{fnv1a_words, DecodeError, Decoder, Encoder, FNV_SEED};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use tr_core::{Instance, RegionSet, Schema};
use tr_rig::Rig;
use tr_text::{SuffixArray, SuffixWordIndex};

pub use mmap::force_read_copy;

/// File magic of the legacy v1 format: a single implicit segment, no
/// manifest. Still loadable; no longer written by [`save_document`].
pub const MAGIC: &[u8; 8] = b"TRXIDX01";

/// File magic of the v2 format: a segment [`Manifest`] (bounds, names,
/// per-segment region counts) right after the magic, then the v1 body,
/// then the checksum. The up-front manifest lets a reader answer "what is
/// in this document?" ([`peek_manifest`]) without decoding the text,
/// suffix array, or columns — the basis of lazy catalog loading. Still
/// loadable; no longer written by [`save_document`].
pub const MAGIC_V2: &[u8; 8] = b"TRXIDX02";

/// File magic of the current v3 format: manifest, then an offset/hash
/// directory, then 64-byte-aligned raw `u32` column sections the engine
/// can use in place (see [`MappedStore`]), then the text + RIG tail and
/// the global checksum trailer.
pub const MAGIC_V3: &[u8; 8] = b"TRXIDX03";

/// v3 section alignment: every column section starts on a 64-byte
/// boundary (cache-line sized, a multiple of every scalar alignment the
/// kernels need), with zero-filled gaps.
const COL_ALIGN: u64 = 64;

/// Hard caps applied while decoding untrusted files.
const MAX_TEXT: u64 = 1 << 32;
const MAX_NAMES: u64 = 1 << 16;
const MAX_REGIONS: u64 = 1 << 28;
const MAX_STORED_SEGMENTS: u64 = 1 << 12;

/// Largest `Vec` capacity committed on the strength of an (untrusted)
/// count field alone; anything larger grows as elements actually decode,
/// so a corrupted count fails with a decode error instead of a giant
/// allocation.
const MAX_TRUSTED_PREALLOC: usize = 1 << 16;

/// The v2/v3 segment manifest: everything a reader needs to describe (or
/// plan the loading of) a stored document without decoding its body.
///
/// Regions are assigned to segments by left endpoint against `bounds`
/// (the `tr_core::seg` rule); `counts[name][seg]` is the number of that
/// name's regions in that segment, so per-segment extents — and totals —
/// come straight off the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Byte length of the document text.
    pub text_bytes: u64,
    /// `num_segments() + 1` monotone segment boundaries starting at 0.
    pub bounds: Vec<u32>,
    /// Region names, in schema order.
    pub names: Vec<String>,
    /// Per-name, per-segment region counts (`counts[name].len() ==
    /// num_segments()` for every name).
    pub counts: Vec<Vec<u64>>,
}

impl Manifest {
    /// Number of position-range segments.
    pub fn num_segments(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Total regions across all names and segments.
    pub fn total_regions(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Per-name region totals, in schema order.
    fn name_totals(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.iter().sum()).collect()
    }

    /// Computes the manifest [`save_document`] writes for this document:
    /// segment count from `tr_core::seg::segment_count_for(text len)`,
    /// counts from the left-endpoint assignment rule.
    pub fn for_document(text: &str, instance: &Instance<SuffixWordIndex>) -> Manifest {
        let n = tr_core::seg::segment_count_for(text.len());
        let bounds = tr_core::seg::segment_bounds(text.len(), n);
        let schema = instance.schema();
        let counts = schema
            .ids()
            .map(|id| {
                let ps = tr_core::seg::split_points(instance.regions_of(id), &bounds);
                ps.windows(2).map(|w| (w[1] - w[0]) as u64).collect()
            })
            .collect();
        Manifest {
            text_bytes: text.len() as u64,
            bounds,
            names: schema.names().map(str::to_owned).collect(),
            counts,
        }
    }
}

/// A loaded document: text, instance (with a ready suffix-array word
/// index), and the optional RIG it was saved with.
pub struct StoredDocument {
    /// The original document text.
    pub text: String,
    /// The region instance over a suffix-array word index.
    pub instance: Instance<SuffixWordIndex>,
    /// The RIG, if one was attached at save time.
    pub rig: Option<Rig>,
    /// The segment manifest (`None` for legacy v1 files, which describe a
    /// single implicit segment).
    pub manifest: Option<Manifest>,
}

/// Errors from [`load_document`] and the mapped open path.
#[derive(Debug)]
pub enum LoadError {
    /// Decoding failed (I/O, checksum, malformed lengths).
    Decode(DecodeError),
    /// The file is not a textregion index file.
    BadMagic,
    /// The contents are inconsistent (bad suffix array, invalid regions,
    /// non-hierarchical instance…).
    Invalid(&'static str),
    /// A mapped v3 section failed verification (hash, bounds, or column
    /// invariant).
    Map(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Decode(e) => write!(f, "{e}"),
            LoadError::BadMagic => write!(f, "not a textregion index file"),
            LoadError::Invalid(what) => write!(f, "invalid index file: {what}"),
            LoadError::Map(why) => write!(f, "invalid mapped index: {why}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<DecodeError> for LoadError {
    fn from(e: DecodeError) -> LoadError {
        LoadError::Decode(e)
    }
}

// ---------------------------------------------------------------------------
// v3 layout
// ---------------------------------------------------------------------------

/// One name's column section in the v3 directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct V3Col {
    lefts_off: u64,
    rights_off: u64,
    /// Chained [`fnv1a_words`] over the lefts bytes then the rights bytes.
    hash: u64,
}

/// The decoded v3 directory: section offsets and sectional hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct V3Dir {
    sa_off: u64,
    sa_hash: u64,
    cols: Vec<V3Col>,
    body_off: u64,
    tail_hash: u64,
}

fn align_up(x: u64) -> u64 {
    x.next_multiple_of(COL_ALIGN)
}

/// The deterministic v3 section layout: given where the header ends, the
/// text length (= suffix array length), and the per-name region totals,
/// every section offset follows. Writer and readers share this function,
/// so a reader *recomputes* the layout and rejects any directory that
/// disagrees — misaligned or overlapping offsets can never be followed.
fn v3_layout(header_end: u64, text_bytes: u64, totals: &[u64]) -> (u64, Vec<(u64, u64)>, u64) {
    let sa_off = align_up(header_end);
    let mut cursor = sa_off + 4 * text_bytes;
    let mut cols = Vec::with_capacity(totals.len());
    for &t in totals {
        let l = align_up(cursor);
        let r = align_up(l + 4 * t);
        cursor = r + 4 * t;
        cols.push((l, r));
    }
    (sa_off, cols, align_up(cursor))
}

/// Byte size of the v3 directory for `n` names: suffix-array entry
/// (offset + hash), per-name entries (two offsets + hash), body offset,
/// tail hash, header hash.
fn v3_dir_size(n: usize) -> u64 {
    16 + 24 * n as u64 + 24
}

// ---------------------------------------------------------------------------
// Saving
// ---------------------------------------------------------------------------

/// Saves an indexed document (text, suffix array, regions, optional RIG)
/// in the current v3 format: manifest, offset/hash directory, aligned raw
/// column sections, text + RIG tail, checksum trailer.
pub fn save_document<W: AsRef<Path>>(
    path: W,
    text: &str,
    instance: &Instance<SuffixWordIndex>,
    rig: Option<&Rig>,
) -> std::io::Result<()> {
    let m = Manifest::for_document(text, instance);
    let file = BufWriter::new(File::create(path)?);
    let mut enc = Encoder::new(file);
    enc.fixed(MAGIC_V3)?;
    encode_manifest(&mut enc, &m)?;
    let header_end = enc.position() + v3_dir_size(m.names.len());
    let totals = m.name_totals();
    let (sa_off, col_offs, body_off) = v3_layout(header_end, m.text_bytes, &totals);

    // Materialize each section so its hash is known before the directory
    // is written; the write itself then streams in one pass.
    let sa_bytes = u32s_le(instance.word_index().suffix_array().raw());
    let schema = instance.schema();
    let col_bytes: Vec<(Vec<u8>, Vec<u8>)> = schema
        .ids()
        .map(|id| {
            let set = instance.regions_of(id);
            (u32s_le(set.lefts()), u32s_le(set.rights()))
        })
        .collect();
    let tail = encode_tail(text, rig);

    // Directory, closed by a hash of everything before it: a reader
    // verifies the manifest + directory alone, then trusts the offsets.
    enc.u64(sa_off)?;
    enc.u64(fnv1a_words(FNV_SEED, &sa_bytes))?;
    for ((l, r), (lb, rb)) in col_offs.iter().zip(&col_bytes) {
        enc.u64(*l)?;
        enc.u64(*r)?;
        enc.u64(fnv1a_words(fnv1a_words(FNV_SEED, lb), rb))?;
    }
    enc.u64(body_off)?;
    enc.u64(fnv1a_words(FNV_SEED, &tail))?;
    let header_hash = enc.running_hash();
    enc.u64(header_hash)?;
    debug_assert_eq!(enc.position(), header_end);

    // Aligned sections with zero-filled gaps, then the tail and trailer.
    pad_to(&mut enc, sa_off)?;
    enc.fixed(&sa_bytes)?;
    for ((l, r), (lb, rb)) in col_offs.iter().zip(&col_bytes) {
        pad_to(&mut enc, *l)?;
        enc.fixed(lb)?;
        pad_to(&mut enc, *r)?;
        enc.fixed(rb)?;
    }
    pad_to(&mut enc, body_off)?;
    enc.fixed(&tail)?;
    enc.finish()?
        .into_inner()
        .map_err(|e| e.into_error())?
        .sync_all()
}

/// Saves in the v2 format (manifest + streamed body). Kept so the
/// backward-compatibility path — old files must keep loading — stays
/// exercisable by tests and benchmarks; new files should use
/// [`save_document`].
pub fn save_document_v2<W: AsRef<Path>>(
    path: W,
    text: &str,
    instance: &Instance<SuffixWordIndex>,
    rig: Option<&Rig>,
) -> std::io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    let mut enc = Encoder::new(file);
    enc.fixed(MAGIC_V2)?;
    encode_manifest(&mut enc, &Manifest::for_document(text, instance))?;
    encode_body(&mut enc, text, instance, rig)?;
    enc.finish()?
        .into_inner()
        .map_err(|e| e.into_error())?
        .sync_all()
}

/// Saves in the legacy v1 single-segment format (no manifest). Kept so
/// the backward-compatibility path stays exercisable by tests and
/// tooling; new files should use [`save_document`].
pub fn save_document_v1<W: AsRef<Path>>(
    path: W,
    text: &str,
    instance: &Instance<SuffixWordIndex>,
    rig: Option<&Rig>,
) -> std::io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    let mut enc = Encoder::new(file);
    enc.fixed(MAGIC)?;
    encode_body(&mut enc, text, instance, rig)?;
    enc.finish()?
        .into_inner()
        .map_err(|e| e.into_error())?
        .sync_all()
}

fn encode_manifest<W: std::io::Write>(enc: &mut Encoder<W>, m: &Manifest) -> std::io::Result<()> {
    enc.u64(m.text_bytes)?;
    enc.u64(m.num_segments() as u64)?;
    for &b in &m.bounds {
        enc.u32(b)?;
    }
    enc.u64(m.names.len() as u64)?;
    for (name, counts) in m.names.iter().zip(&m.counts) {
        enc.str(name)?;
        for &c in counts {
            enc.u64(c)?;
        }
    }
    Ok(())
}

/// The streamed body shared by v1 and v2: text, suffix array, schema,
/// region columns, optional RIG.
fn encode_body<W: std::io::Write>(
    enc: &mut Encoder<W>,
    text: &str,
    instance: &Instance<SuffixWordIndex>,
    rig: Option<&Rig>,
) -> std::io::Result<()> {
    enc.str(text)?;
    // Suffix array offsets (so loading skips reconstruction).
    let sa = instance.word_index().suffix_array();
    enc.u64(sa.raw().len() as u64)?;
    for &off in sa.raw() {
        enc.u32(off)?;
    }
    // Schema + region sets.
    let schema = instance.schema();
    enc.u64(schema.len() as u64)?;
    for name in schema.names() {
        enc.str(name)?;
    }
    for id in schema.ids() {
        let set = instance.regions_of(id);
        enc.u64(set.len() as u64)?;
        // Serialize straight off the columnar storage.
        for (&l, &r) in set.lefts().iter().zip(set.rights()) {
            enc.u32(l)?;
            enc.u32(r)?;
        }
    }
    // Optional RIG.
    match rig {
        None => enc.u64(0)?,
        Some(rig) => {
            let edges: Vec<_> = rig.edges().collect();
            enc.u64(1)?;
            enc.u64(edges.len() as u64)?;
            for (a, b) in edges {
                enc.u32(a.index() as u32)?;
                enc.u32(b.index() as u32)?;
            }
        }
    }
    Ok(())
}

/// The v3 tail (text + RIG), assembled in memory — byte-identical to the
/// `Encoder` encodings — so its sectional hash is known before the
/// directory is written.
fn encode_tail(text: &str, rig: Option<&Rig>) -> Vec<u8> {
    let mut out = Vec::with_capacity(text.len() + 32);
    out.extend_from_slice(&(text.len() as u64).to_le_bytes());
    out.extend_from_slice(text.as_bytes());
    match rig {
        None => out.extend_from_slice(&0u64.to_le_bytes()),
        Some(rig) => {
            let edges: Vec<_> = rig.edges().collect();
            out.extend_from_slice(&1u64.to_le_bytes());
            out.extend_from_slice(&(edges.len() as u64).to_le_bytes());
            for (a, b) in edges {
                out.extend_from_slice(&(a.index() as u32).to_le_bytes());
                out.extend_from_slice(&(b.index() as u32).to_le_bytes());
            }
        }
    }
    out
}

fn u32s_le(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn pad_to<W: std::io::Write>(enc: &mut Encoder<W>, off: u64) -> std::io::Result<()> {
    const ZEROS: [u8; COL_ALIGN as usize] = [0; COL_ALIGN as usize];
    let gap = off - enc.position();
    debug_assert!(gap < COL_ALIGN);
    enc.fixed(&ZEROS[..gap as usize])
}

// ---------------------------------------------------------------------------
// Loading (streamed)
// ---------------------------------------------------------------------------

/// Reads only the magic and [`Manifest`] of a v2/v3 file — constant work
/// in the document size, so a catalog can describe (and defer) a large
/// document without decoding its text, suffix array, or columns.
///
/// The checksum trailer sits at the end of the file and is *not*
/// verified here; a full load still authenticates everything before any
/// query runs (v3 additionally covers the manifest with the directory's
/// header hash). Legacy v1 files have no manifest and return
/// `Err(LoadError::Invalid(..))`.
pub fn peek_manifest<P: AsRef<Path>>(path: P) -> Result<Manifest, LoadError> {
    let file = BufReader::new(File::open(path).map_err(DecodeError::Io)?);
    let mut dec = Decoder::new(file);
    match dec.fixed(8)? {
        m if m == MAGIC_V2 || m == MAGIC_V3 => decode_manifest(&mut dec),
        m if m == MAGIC => Err(LoadError::Invalid("v1 store has no manifest")),
        _ => Err(LoadError::BadMagic),
    }
}

fn decode_manifest<R: std::io::Read>(dec: &mut Decoder<R>) -> Result<Manifest, LoadError> {
    let text_bytes = dec.u64()?;
    if text_bytes > MAX_TEXT {
        return Err(LoadError::Invalid("text too large"));
    }
    let n_segments = dec.u64()?;
    if n_segments == 0 || n_segments > MAX_STORED_SEGMENTS {
        return Err(LoadError::Invalid("implausible segment count"));
    }
    let mut bounds = Vec::with_capacity(n_segments as usize + 1);
    for _ in 0..=n_segments {
        bounds.push(dec.u32()?);
    }
    if bounds[0] != 0 || bounds.windows(2).any(|w| w[0] > w[1]) {
        return Err(LoadError::Invalid("segment bounds not monotone"));
    }
    let n_names = dec.u64()?;
    if n_names > MAX_NAMES {
        return Err(LoadError::Invalid("too many region names"));
    }
    let mut names = Vec::with_capacity((n_names as usize).min(MAX_TRUSTED_PREALLOC));
    let mut counts = Vec::with_capacity((n_names as usize).min(MAX_TRUSTED_PREALLOC));
    for _ in 0..n_names {
        names.push(dec.str(1 << 16)?);
        let mut per_seg = Vec::with_capacity(n_segments as usize);
        let mut total: u64 = 0;
        for _ in 0..n_segments {
            let c = dec.u64()?;
            total = total.saturating_add(c);
            per_seg.push(c);
        }
        if total > MAX_REGIONS {
            return Err(LoadError::Invalid("too many regions"));
        }
        counts.push(per_seg);
    }
    Ok(Manifest {
        text_bytes,
        bounds,
        names,
        counts,
    })
}

/// A decoded v3 header: manifest, validated directory, per-name totals.
struct V3Header {
    manifest: Manifest,
    totals: Vec<u64>,
    dir: V3Dir,
}

/// Decodes and validates the v3 header (manifest + directory), with the
/// magic already consumed. The directory is authenticated against the
/// running header hash, then cross-checked against the recomputed layout:
/// the offsets are a pure function of the manifest, so a directory that
/// survives both checks cannot name misaligned, overlapping, or
/// out-of-order sections.
fn decode_v3_header<R: std::io::Read>(dec: &mut Decoder<R>) -> Result<V3Header, LoadError> {
    let manifest = decode_manifest(dec)?;
    let sa_off = dec.u64()?;
    let sa_hash = dec.u64()?;
    let mut cols = Vec::with_capacity(manifest.names.len().min(MAX_TRUSTED_PREALLOC));
    for _ in 0..manifest.names.len() {
        cols.push(V3Col {
            lefts_off: dec.u64()?,
            rights_off: dec.u64()?,
            hash: dec.u64()?,
        });
    }
    let body_off = dec.u64()?;
    let tail_hash = dec.u64()?;
    let expect = dec.running_hash();
    if dec.u64()? != expect {
        return Err(LoadError::Invalid("v3 header hash mismatch"));
    }
    let totals = manifest.name_totals();
    let (e_sa, e_cols, e_body) = v3_layout(dec.position(), manifest.text_bytes, &totals);
    let offsets_ok = sa_off == e_sa
        && body_off == e_body
        && cols
            .iter()
            .zip(&e_cols)
            .all(|(c, &(l, r))| c.lefts_off == l && c.rights_off == r);
    if !offsets_ok {
        return Err(LoadError::Invalid("v3 directory does not match manifest"));
    }
    Ok(V3Header {
        manifest,
        totals,
        dir: V3Dir {
            sa_off,
            sa_hash,
            cols,
            body_off,
            tail_hash,
        },
    })
}

/// Consumes the zero padding up to offset `to`, failing on any nonzero
/// byte — padding is not covered by any sectional hash, so it must be
/// checked directly.
fn read_zero_pad<R: std::io::Read>(dec: &mut Decoder<R>, to: u64) -> Result<(), LoadError> {
    let gap = to
        .checked_sub(dec.position())
        .ok_or(LoadError::Invalid("v3 sections out of order"))?;
    if gap >= COL_ALIGN {
        return Err(LoadError::Invalid("v3 padding too large"));
    }
    if dec.fixed(gap as usize)?.iter().any(|&b| b != 0) {
        return Err(LoadError::Invalid("v3 padding not zeroed"));
    }
    Ok(())
}

fn decode_rig_edges<R: std::io::Read>(
    dec: &mut Decoder<R>,
) -> Result<Option<Vec<(u32, u32)>>, LoadError> {
    match dec.u64()? {
        0 => Ok(None),
        1 => {
            let count = dec.u64()?;
            if count > MAX_REGIONS {
                return Err(LoadError::Invalid("too many RIG edges"));
            }
            let mut edges = Vec::with_capacity((count as usize).min(MAX_TRUSTED_PREALLOC));
            for _ in 0..count {
                edges.push((dec.u32()?, dec.u32()?));
            }
            Ok(Some(edges))
        }
        _ => Err(LoadError::Invalid("bad RIG tag")),
    }
}

/// Loads a document saved by any writer version through the streaming
/// decoder, verifying the checksum, the suffix array, the hierarchy
/// invariant, and — v2/v3 — that the manifest agrees with the decoded
/// body. For v3 files [`load_document_auto`] (or [`MappedStore`])
/// normally skips this full decode.
pub fn load_document<P: AsRef<Path>>(path: P) -> Result<StoredDocument, LoadError> {
    let file = BufReader::new(File::open(path).map_err(DecodeError::Io)?);
    let mut dec = Decoder::new(file);
    let magic = dec.fixed(8)?;
    if magic == MAGIC_V3 {
        return load_v3_streamed(dec);
    }
    let manifest = match magic {
        m if m == MAGIC_V2 => Some(decode_manifest(&mut dec)?),
        m if m == MAGIC => None,
        _ => return Err(LoadError::BadMagic),
    };
    let text = dec.str(MAX_TEXT)?;
    let sa_len = dec.u64()?;
    if sa_len != text.len() as u64 {
        return Err(LoadError::Invalid("suffix array length mismatch"));
    }
    let mut sa = Vec::with_capacity((sa_len as usize).min(MAX_TRUSTED_PREALLOC));
    for _ in 0..sa_len {
        sa.push(dec.u32()?);
    }
    let n_names = dec.u64()?;
    if n_names > MAX_NAMES {
        return Err(LoadError::Invalid("too many region names"));
    }
    let mut names = Vec::with_capacity(n_names as usize);
    for _ in 0..n_names {
        names.push(dec.str(1 << 16)?);
    }
    let mut sets = Vec::with_capacity(n_names as usize);
    for _ in 0..n_names {
        let count = dec.u64()?;
        if count > MAX_REGIONS {
            return Err(LoadError::Invalid("too many regions"));
        }
        // Decode straight into the columnar buffer — no intermediate
        // `Vec<Region>`.
        let prealloc = (count as usize).min(MAX_TRUSTED_PREALLOC);
        let mut lefts: Vec<u32> = Vec::with_capacity(prealloc);
        let mut rights: Vec<u32> = Vec::with_capacity(prealloc);
        for _ in 0..count {
            let (l, r) = (dec.u32()?, dec.u32()?);
            if l > r {
                return Err(LoadError::Invalid("inverted region"));
            }
            lefts.push(l);
            rights.push(r);
        }
        sets.push(RegionSet::from_columns(lefts, rights));
    }
    let rig_edges = decode_rig_edges(&mut dec)?;
    dec.finish()?;
    assemble_document(text, sa, true, names, sets, rig_edges, manifest)
}

/// The v3 arm of [`load_document`]: same streaming decoder and global
/// trailer, plus the header-hash and layout cross-checks and the
/// zero-padding sweep. This is also the no-`mmap` correctness oracle for
/// the mapped path.
fn load_v3_streamed<R: std::io::Read>(mut dec: Decoder<R>) -> Result<StoredDocument, LoadError> {
    let h = decode_v3_header(&mut dec)?;
    read_zero_pad(&mut dec, h.dir.sa_off)?;
    let sa_len = h.manifest.text_bytes as usize;
    let mut sa = Vec::with_capacity(sa_len.min(MAX_TRUSTED_PREALLOC));
    for _ in 0..sa_len {
        sa.push(dec.u32()?);
    }
    let mut sets = Vec::with_capacity(h.dir.cols.len());
    for (col, &total) in h.dir.cols.iter().zip(&h.totals) {
        read_zero_pad(&mut dec, col.lefts_off)?;
        let prealloc = (total as usize).min(MAX_TRUSTED_PREALLOC);
        let mut lefts: Vec<u32> = Vec::with_capacity(prealloc);
        for _ in 0..total {
            lefts.push(dec.u32()?);
        }
        read_zero_pad(&mut dec, col.rights_off)?;
        let mut rights: Vec<u32> = Vec::with_capacity(prealloc);
        for &l in &lefts {
            let r = dec.u32()?;
            if l > r {
                return Err(LoadError::Invalid("inverted region"));
            }
            rights.push(r);
        }
        sets.push(RegionSet::from_columns(lefts, rights));
    }
    read_zero_pad(&mut dec, h.dir.body_off)?;
    let text = dec.str(MAX_TEXT)?;
    if text.len() as u64 != h.manifest.text_bytes {
        return Err(LoadError::Invalid("manifest text length mismatch"));
    }
    let rig_edges = decode_rig_edges(&mut dec)?;
    dec.finish()?;
    let names = h.manifest.names.clone();
    assemble_document(text, sa, true, names, sets, rig_edges, Some(h.manifest))
}

/// Rebuilds and validates a [`StoredDocument`] from decoded parts.
/// `check_sa` runs the full suffix-array/text consistency scan (the
/// streamed paths do; the mapped path relies on its sectional hash — see
/// [`MappedStore::into_document`]).
fn assemble_document(
    text: String,
    sa: Vec<u32>,
    check_sa: bool,
    names: Vec<String>,
    sets: Vec<RegionSet>,
    rig_edges: Option<Vec<(u32, u32)>>,
    manifest: Option<Manifest>,
) -> Result<StoredDocument, LoadError> {
    if sa.len() != text.len() {
        return Err(LoadError::Invalid("suffix array length mismatch"));
    }
    let suffix = SuffixArray::from_parts(text.clone().into_bytes(), sa);
    if check_sa && !suffix.is_consistent() {
        return Err(LoadError::Invalid("suffix array does not match text"));
    }
    let schema = Schema::new(names);
    let word = SuffixWordIndex::from_suffix_array(suffix);
    let instance = Instance::build(schema.clone(), sets, word)
        .map_err(|_| LoadError::Invalid("regions are not hierarchical"))?;
    let rig = match rig_edges {
        None => None,
        Some(edges) => {
            let mut rig = Rig::new(schema.clone());
            for (a, b) in edges {
                if a as usize >= schema.len() || b as usize >= schema.len() {
                    return Err(LoadError::Invalid("RIG edge out of schema"));
                }
                rig.0.add_edge(
                    tr_core::NameId::from_index(a as usize),
                    tr_core::NameId::from_index(b as usize),
                );
            }
            Some(rig)
        }
    };

    // v2/v3: the manifest must describe exactly the body we decoded —
    // text size, names, and the per-segment extents of every column under
    // the left-endpoint assignment rule.
    if let Some(m) = &manifest {
        if m.text_bytes != text.len() as u64 {
            return Err(LoadError::Invalid("manifest text length mismatch"));
        }
        let names_match =
            m.names.len() == schema.len() && m.names.iter().map(String::as_str).eq(schema.names());
        if !names_match {
            return Err(LoadError::Invalid("manifest names mismatch"));
        }
        for (id, counts) in schema.ids().zip(&m.counts) {
            let ps = tr_core::seg::split_points(instance.regions_of(id), &m.bounds);
            let actual = ps.windows(2).map(|w| (w[1] - w[0]) as u64);
            if counts.len() != ps.len() - 1 || !actual.eq(counts.iter().copied()) {
                return Err(LoadError::Invalid("manifest segment extents mismatch"));
            }
        }
    }

    Ok(StoredDocument {
        text,
        instance,
        rig,
        manifest,
    })
}

// ---------------------------------------------------------------------------
// Loading (mapped)
// ---------------------------------------------------------------------------

/// A v3 catalog opened in place: the file is mapped (or read-copied, see
/// [`mmap`]) and only the manifest + directory are decoded up front —
/// O(manifest) cold start. Region columns become zero-decode
/// [`RegionSet`] views borrowing the mapping, each verified (sectional
/// hash + order invariant) lazily on first touch and cached.
///
/// Verification is per section, so a flipped bit in one name's column
/// fails that column's first use; [`MappedStore::open`] itself
/// authenticates the manifest and directory (header hash + recomputed
/// layout) and sweeps the alignment padding, so no unverified offset is
/// ever followed. The global checksum trailer is *not* read on this path
/// — every byte except the trailer itself is covered by a sectional
/// check.
pub struct MappedStore {
    map: Arc<mmap::MappedBytes>,
    manifest: Manifest,
    totals: Vec<u64>,
    dir: V3Dir,
    /// Lazily verified column views, one per name (cached errors too).
    views: Vec<OnceLock<Result<RegionSet, String>>>,
}

impl MappedStore {
    /// Opens a v3 file for in-place use. Work is O(manifest + directory)
    /// plus the padding sweep; column bytes are not touched. Non-v3 files
    /// are rejected (`load_document` handles those).
    pub fn open<P: AsRef<Path>>(path: P) -> Result<MappedStore, LoadError> {
        let map = Arc::new(mmap::MappedBytes::open(path.as_ref()).map_err(DecodeError::Io)?);
        let bytes = map.bytes();
        let mut dec = Decoder::new(bytes);
        match dec.fixed(8)? {
            m if m == MAGIC_V3 => {}
            m if m == MAGIC || m == MAGIC_V2 => {
                return Err(LoadError::Invalid("not a v3 store (use the decode loader)"))
            }
            _ => return Err(LoadError::BadMagic),
        }
        let h = decode_v3_header(&mut dec)?;
        let header_end = dec.position();
        // Minimum tail: text length prefix + RIG tag, then the trailer.
        let min_len = h
            .dir
            .body_off
            .checked_add(24)
            .ok_or(LoadError::Invalid("v3 offsets overflow"))?;
        if (bytes.len() as u64) < min_len {
            return Err(LoadError::Invalid("v3 file truncated"));
        }
        // Sweep the alignment gaps: no sectional hash covers them, and a
        // file the writer produced has them zeroed.
        let mut gaps: Vec<(u64, u64)> = Vec::with_capacity(2 * h.dir.cols.len() + 2);
        gaps.push((header_end, h.dir.sa_off));
        let mut cursor = h.dir.sa_off + 4 * h.manifest.text_bytes;
        for (col, &t) in h.dir.cols.iter().zip(&h.totals) {
            gaps.push((cursor, col.lefts_off));
            gaps.push((col.lefts_off + 4 * t, col.rights_off));
            cursor = col.rights_off + 4 * t;
        }
        gaps.push((cursor, h.dir.body_off));
        for (from, to) in gaps {
            if bytes[from as usize..to as usize].iter().any(|&b| b != 0) {
                return Err(LoadError::Invalid("v3 padding not zeroed"));
            }
        }
        let views = (0..h.totals.len()).map(|_| OnceLock::new()).collect();
        Ok(MappedStore {
            map,
            manifest: h.manifest,
            totals: h.totals,
            dir: h.dir,
            views,
        })
    }

    /// The document's manifest (decoded at open).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// True when the backing bytes are a real mapping (false on the
    /// read-copy fallback).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// The regions of name `i` (schema order; `i < manifest.names.len()`)
    /// as a zero-decode view into the mapping. First touch verifies the
    /// column's sectional hash and order invariant; the verified view —
    /// or the failure — is cached.
    pub fn regions(&self, i: usize) -> Result<RegionSet, LoadError> {
        let col = self.dir.cols[i];
        let total = self.totals[i] as usize;
        self.views[i]
            .get_or_init(|| {
                let bytes = self.map.bytes();
                let (lo, ro) = (col.lefts_off as usize, col.rights_off as usize);
                let lb = &bytes[lo..lo + 4 * total];
                let rb = &bytes[ro..ro + 4 * total];
                if fnv1a_words(fnv1a_words(FNV_SEED, lb), rb) != col.hash {
                    return Err("v3 column hash mismatch".to_owned());
                }
                RegionSet::from_borrowed_columns(
                    Arc::clone(&self.map) as Arc<dyn tr_core::ColumnSource>,
                    lo,
                    ro,
                    total,
                )
            })
            .clone()
            .map_err(LoadError::Map)
    }

    /// Builds the full [`StoredDocument`] — suffix array, instance over
    /// the mapped columns, RIG. The suffix array and tail sections are
    /// hash-verified here; the per-suffix text consistency scan is
    /// skipped (the sectional hash already authenticates the bytes as
    /// written, and `Instance::build` still re-validates the hierarchy).
    pub fn into_document(self) -> Result<StoredDocument, LoadError> {
        self.document()
    }

    /// Like [`MappedStore::into_document`], but borrowing: the store
    /// stays usable, so a *shared* store (see [`open_mapped_shared`])
    /// can hand a document to each holder while they all keep the one
    /// mapping alive. The returned document's region sets are views into
    /// the mapping either way; only the manifest is copied.
    pub fn document(&self) -> Result<StoredDocument, LoadError> {
        let bytes = self.map.bytes();
        let sa_lo = self.dir.sa_off as usize;
        let sa_bytes = &bytes[sa_lo..sa_lo + 4 * self.manifest.text_bytes as usize];
        if fnv1a_words(FNV_SEED, sa_bytes) != self.dir.sa_hash {
            return Err(LoadError::Invalid("v3 suffix array hash mismatch"));
        }
        let sa: Vec<u32> = sa_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        // The tail spans from `body_off` to the global trailer.
        let tail = &bytes[self.dir.body_off as usize..bytes.len() - 8];
        if fnv1a_words(FNV_SEED, tail) != self.dir.tail_hash {
            return Err(LoadError::Invalid("v3 tail hash mismatch"));
        }
        let mut dec = Decoder::new(tail);
        let text = dec.str(MAX_TEXT)?;
        if text.len() as u64 != self.manifest.text_bytes {
            return Err(LoadError::Invalid("manifest text length mismatch"));
        }
        let rig_edges = decode_rig_edges(&mut dec)?;
        if dec.position() != tail.len() as u64 {
            return Err(LoadError::Invalid("v3 tail has trailing bytes"));
        }
        let sets = (0..self.manifest.names.len())
            .map(|i| self.regions(i))
            .collect::<Result<Vec<_>, _>>()?;
        let names = self.manifest.names.clone();
        let manifest = self.manifest.clone();
        assemble_document(text, sa, false, names, sets, rig_edges, Some(manifest))
    }
}

/// Process-wide weak cache behind [`open_mapped_shared`], keyed by
/// canonical path. Weak entries mean the cache never keeps a mapping
/// alive by itself — holders do; dead entries are swept on each miss.
fn shared_stores() -> &'static Mutex<HashMap<PathBuf, Weak<MappedStore>>> {
    static CACHE: OnceLock<Mutex<HashMap<PathBuf, Weak<MappedStore>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Opens a v3 file as a **shared** mapping: while any holder keeps the
/// returned `Arc` alive, further opens of the same file (paths are
/// canonicalized, so symlinked aliases coalesce) reuse the existing
/// [`MappedStore`] instead of mapping it again — `store.mmap_cache_hits`
/// counts the reuses and `store.mmap_opens` stays flat. The cache holds
/// weak references only: dropping the last holder unmaps the file
/// exactly as with [`MappedStore::open`]. The cache lock is held across
/// a miss's open, so two threads racing on one path map it once.
pub fn open_mapped_shared<P: AsRef<Path>>(path: P) -> Result<Arc<MappedStore>, LoadError> {
    let path = path.as_ref();
    let key = path.canonicalize().unwrap_or_else(|_| path.to_path_buf());
    let mut cache = shared_stores().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(live) = cache.get(&key).and_then(Weak::upgrade) {
        tr_obs::counter("store.mmap_cache_hits").inc();
        return Ok(live);
    }
    let store = Arc::new(MappedStore::open(&key)?);
    cache.retain(|_, w| w.strong_count() > 0);
    cache.insert(key, Arc::downgrade(&store));
    Ok(store)
}

/// Like [`load_document_auto`], but v3 files open through the shared
/// mapping cache ([`open_mapped_shared`]). The second tuple element is
/// the cache guard — `Some` exactly when the mapped path was taken.
/// Hold it alongside the document: while it lives, later opens of the
/// same path reuse this mapping instead of re-mapping the file.
pub fn load_document_shared<P: AsRef<Path>>(
    path: P,
) -> Result<(StoredDocument, Option<Arc<MappedStore>>), LoadError> {
    let path = path.as_ref();
    let mut magic = [0u8; 8];
    {
        use std::io::Read;
        let mut f = File::open(path).map_err(DecodeError::Io)?;
        f.read_exact(&mut magic).map_err(DecodeError::Io)?;
    }
    if &magic == MAGIC_V3 {
        let store = open_mapped_shared(path)?;
        let doc = store.document()?;
        Ok((doc, Some(store)))
    } else {
        mmap::note_decode_fallback();
        load_document(path).map(|doc| (doc, None))
    }
}

/// Loads a document by the best available path for its format: v3 files
/// open mapped (zero-decode columns, sectional verification), v1/v2 fall
/// back to the streaming decoder (counted in `store.decode_fallbacks`).
pub fn load_document_auto<P: AsRef<Path>>(path: P) -> Result<StoredDocument, LoadError> {
    let path = path.as_ref();
    let mut magic = [0u8; 8];
    {
        use std::io::Read;
        let mut f = File::open(path).map_err(DecodeError::Io)?;
        f.read_exact(&mut magic).map_err(DecodeError::Io)?;
    }
    if &magic == MAGIC_V3 {
        MappedStore::open(path)?.into_document()
    } else {
        mmap::note_decode_fallback();
        load_document(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::eval;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tr_store_test_{}_{name}.trx", std::process::id()))
    }

    /// The per-byte FNV-1a the codec streams — reimplemented here so
    /// corruption tests can *re-forge* checksums after tampering and
    /// prove the structural checks fail closed on their own.
    fn fnv_bytes(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Opens a v3 file mapped and touches every section, mirroring what a
    /// querying catalog would eventually do.
    fn mapped_load_all(path: &std::path::Path) -> Result<StoredDocument, LoadError> {
        let store = MappedStore::open(path)?;
        for i in 0..store.manifest().names.len() {
            store.regions(i)?;
        }
        store.into_document()
    }

    #[test]
    fn round_trip_sgml_document() {
        let text = "<doc><sec>alpha</sec><sec>beta gamma</sec></doc>";
        let inst = tr_markup::parse_sgml(text).unwrap();
        let path = tmp("sgml");
        save_document(&path, text, &inst, None).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[..8], MAGIC_V3);
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.text, text);
        assert_eq!(doc.instance.len(), inst.len());
        assert!(doc.rig.is_none());
        // Queries work identically on the loaded instance.
        let s = doc.instance.schema().clone();
        let q = tr_core::Expr::name(s.expect_id("sec")).select("beta");
        assert_eq!(eval(&q, &doc.instance), eval(&q, &inst));
    }

    #[test]
    fn round_trip_with_rig() {
        let text = "program a; proc b; begin end; begin end.";
        let inst = tr_markup::parse_program(text).unwrap();
        let path = tmp("rig");
        save_document(&path, text, &inst, Some(&Rig::figure_1())).unwrap();
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.rig.as_ref().map(|r| r.num_edges()), Some(10));
        assert_eq!(doc.rig.unwrap(), Rig::figure_1());
    }

    #[test]
    fn mapped_open_matches_streamed_load() {
        let text = "program a; proc b; var x; begin end; begin end.";
        let inst = tr_markup::parse_program(text).unwrap();
        let path = tmp("mapped");
        save_document(&path, text, &inst, Some(&Rig::figure_1())).unwrap();

        let streamed = load_document(&path).unwrap();
        let store = MappedStore::open(&path).unwrap();
        assert_eq!(store.manifest(), streamed.manifest.as_ref().unwrap());
        // Every column view equals the decoded set, region for region.
        let schema = streamed.instance.schema().clone();
        for (i, id) in schema.ids().enumerate() {
            let view = store.regions(i).unwrap();
            assert_eq!(&view, streamed.instance.regions_of(id));
            assert!(view.validate().is_ok());
        }
        // And the full document round-trips through the mapped path.
        let doc = store.into_document().unwrap();
        assert_eq!(doc.text, streamed.text);
        assert_eq!(doc.instance.len(), streamed.instance.len());
        assert_eq!(doc.rig, streamed.rig);
        let q = tr_core::Expr::name(schema.expect_id("Var")).select("x");
        assert_eq!(eval(&q, &doc.instance), eval(&q, &streamed.instance));

        // The auto loader takes the mapped path for v3.
        let auto = load_document_auto(&path).unwrap();
        assert_eq!(auto.instance.len(), streamed.instance.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_open_reuses_one_mapping() {
        let text = "<doc><sec>alpha beta</sec><sec>gamma</sec></doc>";
        let inst = tr_markup::parse_sgml(text).unwrap();
        let path = tmp("shared");
        save_document(&path, text, &inst, None).unwrap();

        // Counter deltas are safe here: this is the only test in the
        // binary touching the shared cache.
        let hits = || tr_obs::counter_value("store.mmap_cache_hits");
        let before = hits();
        let a = open_mapped_shared(&path).unwrap();
        assert_eq!(hits(), before, "first open is a miss");
        let b = open_mapped_shared(&path).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same path must share one store");
        assert_eq!(hits(), before + 1);

        // Every holder materializes its own document from the one mapping.
        let doc_a = a.document().unwrap();
        let doc_b = b.document().unwrap();
        assert_eq!(doc_a.text, doc_b.text);
        assert_eq!(doc_a.instance.len(), doc_b.instance.len());

        // The cache is weak: with no holders left, the next open re-maps
        // rather than resurrecting a dead entry.
        drop((a, b));
        let c = open_mapped_shared(&path).unwrap();
        assert_eq!(hits(), before + 1, "dead entry must not count as a hit");

        // `load_document_shared` takes the cached path for v3 and hands
        // back the guard that keeps the entry alive.
        let (doc, guard) = load_document_shared(&path).unwrap();
        assert_eq!(hits(), before + 2);
        assert!(guard.is_some(), "v3 load must return the cache guard");
        assert!(Arc::ptr_eq(&c, guard.as_ref().unwrap()));
        assert_eq!(doc.text, text);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_copy_fallback_matches_mmap() {
        let text = "<doc><sec>alpha beta</sec><sec>gamma</sec></doc>";
        let inst = tr_markup::parse_sgml(text).unwrap();
        let path = tmp("fallback");
        save_document(&path, text, &inst, None).unwrap();

        force_read_copy(true);
        let store = MappedStore::open(&path);
        force_read_copy(false);
        let store = store.unwrap();
        assert!(!store.is_mapped(), "forced fallback must not map");
        let doc = store.into_document().unwrap();
        let direct = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.text, direct.text);
        assert_eq!(doc.instance.len(), direct.instance.len());
    }

    #[test]
    fn rejects_garbage_and_tampering() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not an index").unwrap();
        assert!(load_document(&path).is_err());
        assert!(MappedStore::open(&path).is_err());

        let text = "<a>hi</a>";
        let inst = tr_markup::parse_sgml(text).unwrap();
        save_document(&path, text, &inst, None).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            load_document(&path).is_err(),
            "checksum must catch tampering"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_and_bit_flip_fails_cleanly() {
        // The server loads `.trx` files from operator-supplied corpus
        // directories, so *every* corruption — not just a lucky sample —
        // must come back as an error, never a panic or a wild allocation.
        let text = "program a; proc b; var x; begin end; begin end.";
        let inst = tr_markup::parse_program(text).unwrap();
        let path = tmp("sweep");
        save_document(&path, text, &inst, Some(&Rig::figure_1())).unwrap();
        let good = std::fs::read(&path).unwrap();
        assert!(load_document(&path).is_ok(), "pristine file loads");
        for len in 0..good.len() {
            std::fs::write(&path, &good[..len]).unwrap();
            assert!(load_document(&path).is_err(), "truncated to {len} bytes");
        }
        // FNV-1a folds every byte through a bijection (xor, then multiply
        // by an odd prime), so any single-bit flip in the payload changes
        // the computed checksum, and any flip in the trailer changes the
        // stored one — either way the load must fail.
        for i in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[i] ^= 1 << bit;
                std::fs::write(&path, &bad).unwrap();
                assert!(load_document(&path).is_err(), "bit {bit} of byte {i}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_path_fails_closed_on_truncation_and_bit_flips() {
        // The mapped open never reads the global trailer, so its
        // per-section defenses must catch everything on their own:
        // header hash over manifest + directory, recomputed layout,
        // padding sweep, sectional hashes over SA/columns/tail.
        let text = "program a; proc b; var x; begin end; begin end.";
        let inst = tr_markup::parse_program(text).unwrap();
        let path = tmp("mapped_sweep");
        save_document(&path, text, &inst, Some(&Rig::figure_1())).unwrap();
        let good = std::fs::read(&path).unwrap();
        assert!(mapped_load_all(&path).is_ok(), "pristine file maps");
        for len in 0..good.len() {
            std::fs::write(&path, &good[..len]).unwrap();
            assert!(mapped_load_all(&path).is_err(), "truncated to {len} bytes");
        }
        // Every bit of every byte except the trailer (the mapped path
        // does not promise to verify the trailer itself).
        for i in 0..good.len() - 8 {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[i] ^= 1 << bit;
                std::fs::write(&path, &bad).unwrap();
                assert!(mapped_load_all(&path).is_err(), "bit {bit} of byte {i}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn forged_checksums_do_not_resurrect_bad_layout() {
        // Tampering that also re-forges the checksums — the structural
        // checks (layout recomputation, padding sweep) must fail closed
        // on their own, never alias garbage columns.
        let text = "program a; proc b; var x; begin end; begin end.";
        let inst = tr_markup::parse_program(text).unwrap();
        let path = tmp("forged");
        save_document(&path, text, &inst, Some(&Rig::figure_1())).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Locate the directory: magic + manifest, sized by re-encoding.
        let m = Manifest::for_document(text, &inst);
        let mut probe = Encoder::new(Vec::new());
        encode_manifest(&mut probe, &m).unwrap();
        let dir_start = 8 + probe.position() as usize;
        let dir_size = v3_dir_size(m.names.len()) as usize;
        let header_end = dir_start + dir_size;

        let reforge = |mut bad: Vec<u8>| {
            // Recompute the header hash over everything before it, then
            // the global trailer over everything before *it*.
            let hh = fnv_bytes(&bad[..header_end - 8]);
            bad[header_end - 8..header_end].copy_from_slice(&hh.to_le_bytes());
            let n = bad.len();
            let trailer = fnv_bytes(&bad[..n - 8]);
            bad[n - 8..].copy_from_slice(&trailer.to_le_bytes());
            bad
        };

        // (a) Misaligned suffix-array offset (+4): hashes check out, but
        // the recomputed layout disagrees.
        let mut bad = good.clone();
        let sa_off = u64::from_le_bytes(bad[dir_start..dir_start + 8].try_into().unwrap());
        bad[dir_start..dir_start + 8].copy_from_slice(&(sa_off + 4).to_le_bytes());
        std::fs::write(&path, reforge(bad)).unwrap();
        assert!(matches!(
            MappedStore::open(&path),
            Err(LoadError::Invalid("v3 directory does not match manifest"))
        ));
        assert!(load_document(&path).is_err());

        // (b) A nonzero byte in the alignment padding right before the
        // suffix array: no sectional hash covers padding, so only the
        // explicit sweep can (and must) catch it.
        let mut bad = good.clone();
        assert!(sa_off as usize > header_end, "v3 files pad before the SA");
        bad[header_end] = 0xAA;
        std::fs::write(&path, reforge(bad)).unwrap();
        assert!(matches!(
            MappedStore::open(&path),
            Err(LoadError::Invalid("v3 padding not zeroed"))
        ));
        assert!(load_document(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_document_round_trips() {
        let text = "no markup";
        let inst = tr_markup::parse_sgml(text).unwrap();
        let path = tmp("empty");
        save_document(&path, text, &inst, None).unwrap();
        let doc = load_document(&path).unwrap();
        let mapped = mapped_load_all(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(doc.instance.is_empty());
        assert_eq!(doc.text, text);
        assert_eq!(mapped.text, text);
    }

    #[test]
    fn zero_byte_document_round_trips() {
        // The degenerate end of the empty-text audit: no text at all.
        let inst = tr_markup::parse_sgml("").unwrap();
        let path = tmp("zero");
        save_document(&path, "", &inst, None).unwrap();
        let m = peek_manifest(&path).unwrap();
        assert_eq!(m.text_bytes, 0);
        assert_eq!(m.num_segments(), 1);
        assert_eq!(m.total_regions(), 0);
        let doc = load_document(&path).unwrap();
        let mapped = mapped_load_all(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.text, "");
        assert!(doc.instance.is_empty());
        assert_eq!(mapped.text, "");
    }

    #[test]
    fn v1_stores_still_load() {
        let text = "program a; proc b; var x; begin end; begin end.";
        let inst = tr_markup::parse_program(text).unwrap();
        let path = tmp("v1_compat");
        save_document_v1(&path, text, &inst, Some(&Rig::figure_1())).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[..8], MAGIC);
        // No manifest to peek…
        assert!(matches!(
            peek_manifest(&path),
            Err(LoadError::Invalid("v1 store has no manifest"))
        ));
        // …but the document loads in full, flagged as manifest-less.
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(doc.manifest.is_none());
        assert_eq!(doc.text, text);
        assert_eq!(doc.instance.len(), inst.len());
        assert_eq!(doc.rig.unwrap(), Rig::figure_1());
    }

    #[test]
    fn v2_stores_still_load() {
        let text = "program a; proc b; var x; begin end; begin end.";
        let inst = tr_markup::parse_program(text).unwrap();
        let path = tmp("v2_compat");
        save_document_v2(&path, text, &inst, Some(&Rig::figure_1())).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[..8], MAGIC_V2);
        // The manifest peeks, the body decodes, and the auto loader
        // routes v2 through the streaming path.
        let peeked = peek_manifest(&path).unwrap();
        let doc = load_document_auto(&path).unwrap();
        // A mapped open of a non-v3 file is a clean refusal.
        assert!(MappedStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.manifest.as_ref(), Some(&peeked));
        assert_eq!(doc.text, text);
        assert_eq!(doc.instance.len(), inst.len());
        assert_eq!(doc.rig.unwrap(), Rig::figure_1());
    }

    #[test]
    fn manifest_peek_matches_full_load() {
        let text = "<doc><sec>alpha beta</sec><sec>gamma</sec></doc>";
        let inst = tr_markup::parse_sgml(text).unwrap();
        let path = tmp("peek");
        save_document(&path, text, &inst, None).unwrap();
        let peeked = peek_manifest(&path).unwrap();
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.manifest.as_ref(), Some(&peeked));
        assert_eq!(peeked.text_bytes as usize, text.len());
        assert_eq!(peeked.total_regions() as usize, inst.len());
        assert_eq!(
            peeked.names,
            inst.schema().names().collect::<Vec<_>>(),
            "schema order preserved"
        );
        // The manifest's extents are the left-endpoint assignment rule.
        assert_eq!(peeked, Manifest::for_document(text, &inst));
    }
}
