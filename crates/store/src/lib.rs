//! # tr-store — index persistence
//!
//! PAT's whole point (and the paper's opening observation) is that "it is
//! impractical to fully scan large documents while processing on-line
//! queries — some of the data must be indexed". Indexing once and
//! querying many times needs the index on disk; this crate provides a
//! small, dependency-free binary format for an indexed document: the
//! text, its suffix array, the region schema and sets, and an optional
//! RIG.
//!
//! ```
//! use tr_store::{save_document, load_document, StoredDocument};
//!
//! let inst = tr_markup::parse_sgml("<d><s>hi</s></d>").unwrap();
//! let dir = std::env::temp_dir().join("tr_store_doctest.trx");
//! save_document(&dir, "<d><s>hi</s></d>", &inst, None).unwrap();
//! let doc: StoredDocument = load_document(&dir).unwrap();
//! assert_eq!(doc.instance.len(), 2);
//! # std::fs::remove_file(dir).ok();
//! ```

#![warn(missing_docs)]

pub mod codec;

use codec::{DecodeError, Decoder, Encoder};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use tr_core::{Instance, RegionSet, Schema};
use tr_rig::Rig;
use tr_text::{SuffixArray, SuffixWordIndex};

/// File magic + format version.
pub const MAGIC: &[u8; 8] = b"TRXIDX01";

/// Hard caps applied while decoding untrusted files.
const MAX_TEXT: u64 = 1 << 32;
const MAX_NAMES: u64 = 1 << 16;
const MAX_REGIONS: u64 = 1 << 28;

/// Largest `Vec` capacity committed on the strength of an (untrusted)
/// count field alone; anything larger grows as elements actually decode,
/// so a corrupted count fails with a decode error instead of a giant
/// allocation.
const MAX_TRUSTED_PREALLOC: usize = 1 << 16;

/// A loaded document: text, instance (with a ready suffix-array word
/// index), and the optional RIG it was saved with.
pub struct StoredDocument {
    /// The original document text.
    pub text: String,
    /// The region instance over a suffix-array word index.
    pub instance: Instance<SuffixWordIndex>,
    /// The RIG, if one was attached at save time.
    pub rig: Option<Rig>,
}

/// Errors from [`load_document`].
#[derive(Debug)]
pub enum LoadError {
    /// Decoding failed (I/O, checksum, malformed lengths).
    Decode(DecodeError),
    /// The file is not a `TRXIDX01` file.
    BadMagic,
    /// The contents are inconsistent (bad suffix array, invalid regions,
    /// non-hierarchical instance…).
    Invalid(&'static str),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Decode(e) => write!(f, "{e}"),
            LoadError::BadMagic => write!(f, "not a textregion index file"),
            LoadError::Invalid(what) => write!(f, "invalid index file: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<DecodeError> for LoadError {
    fn from(e: DecodeError) -> LoadError {
        LoadError::Decode(e)
    }
}

/// Saves an indexed document (text, suffix array, regions, optional RIG).
pub fn save_document<W: AsRef<Path>>(
    path: W,
    text: &str,
    instance: &Instance<SuffixWordIndex>,
    rig: Option<&Rig>,
) -> std::io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    let mut enc = Encoder::new(file);
    enc.fixed(MAGIC)?;
    enc.str(text)?;
    // Suffix array offsets (so loading skips reconstruction).
    let sa = instance.word_index().suffix_array();
    enc.u64(sa.raw().len() as u64)?;
    for &off in sa.raw() {
        enc.u32(off)?;
    }
    // Schema + region sets.
    let schema = instance.schema();
    enc.u64(schema.len() as u64)?;
    for name in schema.names() {
        enc.str(name)?;
    }
    for id in schema.ids() {
        let set = instance.regions_of(id);
        enc.u64(set.len() as u64)?;
        // Serialize straight off the columnar storage.
        for (&l, &r) in set.lefts().iter().zip(set.rights()) {
            enc.u32(l)?;
            enc.u32(r)?;
        }
    }
    // Optional RIG.
    match rig {
        None => enc.u64(0)?,
        Some(rig) => {
            let edges: Vec<_> = rig.edges().collect();
            enc.u64(1)?;
            enc.u64(edges.len() as u64)?;
            for (a, b) in edges {
                enc.u32(a.index() as u32)?;
                enc.u32(b.index() as u32)?;
            }
        }
    }
    enc.finish()?
        .into_inner()
        .map_err(|e| e.into_error())?
        .sync_all()
}

/// Loads a document saved by [`save_document`], verifying the checksum,
/// the suffix array, and the hierarchy invariant.
pub fn load_document<P: AsRef<Path>>(path: P) -> Result<StoredDocument, LoadError> {
    let file = BufReader::new(File::open(path).map_err(DecodeError::Io)?);
    let mut dec = Decoder::new(file);
    if dec.fixed(8)? != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let text = dec.str(MAX_TEXT)?;
    let sa_len = dec.u64()?;
    if sa_len != text.len() as u64 {
        return Err(LoadError::Invalid("suffix array length mismatch"));
    }
    let mut sa = Vec::with_capacity((sa_len as usize).min(MAX_TRUSTED_PREALLOC));
    for _ in 0..sa_len {
        sa.push(dec.u32()?);
    }
    let n_names = dec.u64()?;
    if n_names > MAX_NAMES {
        return Err(LoadError::Invalid("too many region names"));
    }
    let mut names = Vec::with_capacity(n_names as usize);
    for _ in 0..n_names {
        names.push(dec.str(1 << 16)?);
    }
    let mut sets = Vec::with_capacity(n_names as usize);
    for _ in 0..n_names {
        let count = dec.u64()?;
        if count > MAX_REGIONS {
            return Err(LoadError::Invalid("too many regions"));
        }
        // Decode straight into the columnar buffer — no intermediate
        // `Vec<Region>`.
        let prealloc = (count as usize).min(MAX_TRUSTED_PREALLOC);
        let mut lefts: Vec<u32> = Vec::with_capacity(prealloc);
        let mut rights: Vec<u32> = Vec::with_capacity(prealloc);
        for _ in 0..count {
            let (l, r) = (dec.u32()?, dec.u32()?);
            if l > r {
                return Err(LoadError::Invalid("inverted region"));
            }
            lefts.push(l);
            rights.push(r);
        }
        sets.push(RegionSet::from_columns(lefts, rights));
    }
    let rig_edges = match dec.u64()? {
        0 => None,
        1 => {
            let count = dec.u64()?;
            if count > MAX_REGIONS {
                return Err(LoadError::Invalid("too many RIG edges"));
            }
            let mut edges = Vec::with_capacity((count as usize).min(MAX_TRUSTED_PREALLOC));
            for _ in 0..count {
                edges.push((dec.u32()?, dec.u32()?));
            }
            Some(edges)
        }
        _ => return Err(LoadError::Invalid("bad RIG tag")),
    };
    dec.finish()?;

    // Reassemble and validate.
    let suffix = SuffixArray::from_parts(text.clone().into_bytes(), sa);
    if !suffix.is_consistent() {
        return Err(LoadError::Invalid("suffix array does not match text"));
    }
    let schema = Schema::new(names);
    let word = SuffixWordIndex::from_suffix_array(suffix);
    let instance = Instance::build(schema.clone(), sets, word)
        .map_err(|_| LoadError::Invalid("regions are not hierarchical"))?;
    let rig = match rig_edges {
        None => None,
        Some(edges) => {
            let mut rig = Rig::new(schema.clone());
            for (a, b) in edges {
                if a as usize >= schema.len() || b as usize >= schema.len() {
                    return Err(LoadError::Invalid("RIG edge out of schema"));
                }
                rig.0.add_edge(
                    tr_core::NameId::from_index(a as usize),
                    tr_core::NameId::from_index(b as usize),
                );
            }
            Some(rig)
        }
    };
    Ok(StoredDocument {
        text,
        instance,
        rig,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::eval;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tr_store_test_{}_{name}.trx", std::process::id()))
    }

    #[test]
    fn round_trip_sgml_document() {
        let text = "<doc><sec>alpha</sec><sec>beta gamma</sec></doc>";
        let inst = tr_markup::parse_sgml(text).unwrap();
        let path = tmp("sgml");
        save_document(&path, text, &inst, None).unwrap();
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.text, text);
        assert_eq!(doc.instance.len(), inst.len());
        assert!(doc.rig.is_none());
        // Queries work identically on the loaded instance.
        let s = doc.instance.schema().clone();
        let q = tr_core::Expr::name(s.expect_id("sec")).select("beta");
        assert_eq!(eval(&q, &doc.instance), eval(&q, &inst));
    }

    #[test]
    fn round_trip_with_rig() {
        let text = "program a; proc b; begin end; begin end.";
        let inst = tr_markup::parse_program(text).unwrap();
        let path = tmp("rig");
        save_document(&path, text, &inst, Some(&Rig::figure_1())).unwrap();
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.rig.as_ref().map(|r| r.num_edges()), Some(10));
        assert_eq!(doc.rig.unwrap(), Rig::figure_1());
    }

    #[test]
    fn rejects_garbage_and_tampering() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not an index").unwrap();
        assert!(load_document(&path).is_err());

        let text = "<a>hi</a>";
        let inst = tr_markup::parse_sgml(text).unwrap();
        save_document(&path, text, &inst, None).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            load_document(&path).is_err(),
            "checksum must catch tampering"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_and_bit_flip_fails_cleanly() {
        // The server loads `.trx` files from operator-supplied corpus
        // directories, so *every* corruption — not just a lucky sample —
        // must come back as an error, never a panic or a wild allocation.
        let text = "program a; proc b; var x; begin end; begin end.";
        let inst = tr_markup::parse_program(text).unwrap();
        let path = tmp("sweep");
        save_document(&path, text, &inst, Some(&Rig::figure_1())).unwrap();
        let good = std::fs::read(&path).unwrap();
        assert!(load_document(&path).is_ok(), "pristine file loads");
        for len in 0..good.len() {
            std::fs::write(&path, &good[..len]).unwrap();
            assert!(load_document(&path).is_err(), "truncated to {len} bytes");
        }
        // FNV-1a folds every byte through a bijection (xor, then multiply
        // by an odd prime), so any single-bit flip in the payload changes
        // the computed checksum, and any flip in the trailer changes the
        // stored one — either way the load must fail.
        for i in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[i] ^= 1 << bit;
                std::fs::write(&path, &bad).unwrap();
                assert!(load_document(&path).is_err(), "bit {bit} of byte {i}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_document_round_trips() {
        let text = "no markup";
        let inst = tr_markup::parse_sgml(text).unwrap();
        let path = tmp("empty");
        save_document(&path, text, &inst, None).unwrap();
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(doc.instance.is_empty());
        assert_eq!(doc.text, text);
    }
}
