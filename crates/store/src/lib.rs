//! # tr-store — index persistence
//!
//! PAT's whole point (and the paper's opening observation) is that "it is
//! impractical to fully scan large documents while processing on-line
//! queries — some of the data must be indexed". Indexing once and
//! querying many times needs the index on disk; this crate provides a
//! small, dependency-free binary format for an indexed document: the
//! text, its suffix array, the region schema and sets, and an optional
//! RIG.
//!
//! ```
//! use tr_store::{save_document, load_document, StoredDocument};
//!
//! let inst = tr_markup::parse_sgml("<d><s>hi</s></d>").unwrap();
//! let dir = std::env::temp_dir().join("tr_store_doctest.trx");
//! save_document(&dir, "<d><s>hi</s></d>", &inst, None).unwrap();
//! let doc: StoredDocument = load_document(&dir).unwrap();
//! assert_eq!(doc.instance.len(), 2);
//! # std::fs::remove_file(dir).ok();
//! ```

#![warn(missing_docs)]

pub mod codec;

use codec::{DecodeError, Decoder, Encoder};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use tr_core::{Instance, RegionSet, Schema};
use tr_rig::Rig;
use tr_text::{SuffixArray, SuffixWordIndex};

/// File magic of the legacy v1 format: a single implicit segment, no
/// manifest. Still loadable; no longer written by [`save_document`].
pub const MAGIC: &[u8; 8] = b"TRXIDX01";

/// File magic of the current v2 format: a segment [`Manifest`] (bounds,
/// names, per-segment region counts) right after the magic, then the v1
/// body, then the checksum. The up-front manifest lets a reader answer
/// "what is in this document?" ([`peek_manifest`]) without decoding the
/// text, suffix array, or columns — the basis of lazy catalog loading.
pub const MAGIC_V2: &[u8; 8] = b"TRXIDX02";

/// Hard caps applied while decoding untrusted files.
const MAX_TEXT: u64 = 1 << 32;
const MAX_NAMES: u64 = 1 << 16;
const MAX_REGIONS: u64 = 1 << 28;
const MAX_STORED_SEGMENTS: u64 = 1 << 12;

/// Largest `Vec` capacity committed on the strength of an (untrusted)
/// count field alone; anything larger grows as elements actually decode,
/// so a corrupted count fails with a decode error instead of a giant
/// allocation.
const MAX_TRUSTED_PREALLOC: usize = 1 << 16;

/// The v2 segment manifest: everything a reader needs to describe (or
/// plan the loading of) a stored document without decoding its body.
///
/// Regions are assigned to segments by left endpoint against `bounds`
/// (the `tr_core::seg` rule); `counts[name][seg]` is the number of that
/// name's regions in that segment, so per-segment extents — and totals —
/// come straight off the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Byte length of the document text.
    pub text_bytes: u64,
    /// `num_segments() + 1` monotone segment boundaries starting at 0.
    pub bounds: Vec<u32>,
    /// Region names, in schema order.
    pub names: Vec<String>,
    /// Per-name, per-segment region counts (`counts[name].len() ==
    /// num_segments()` for every name).
    pub counts: Vec<Vec<u64>>,
}

impl Manifest {
    /// Number of position-range segments.
    pub fn num_segments(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Total regions across all names and segments.
    pub fn total_regions(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Computes the manifest [`save_document`] writes for this document:
    /// segment count from `tr_core::seg::segment_count_for(text len)`,
    /// counts from the left-endpoint assignment rule.
    pub fn for_document(text: &str, instance: &Instance<SuffixWordIndex>) -> Manifest {
        let n = tr_core::seg::segment_count_for(text.len());
        let bounds = tr_core::seg::segment_bounds(text.len(), n);
        let schema = instance.schema();
        let counts = schema
            .ids()
            .map(|id| {
                let ps = tr_core::seg::split_points(instance.regions_of(id), &bounds);
                ps.windows(2).map(|w| (w[1] - w[0]) as u64).collect()
            })
            .collect();
        Manifest {
            text_bytes: text.len() as u64,
            bounds,
            names: schema.names().map(str::to_owned).collect(),
            counts,
        }
    }
}

/// A loaded document: text, instance (with a ready suffix-array word
/// index), and the optional RIG it was saved with.
pub struct StoredDocument {
    /// The original document text.
    pub text: String,
    /// The region instance over a suffix-array word index.
    pub instance: Instance<SuffixWordIndex>,
    /// The RIG, if one was attached at save time.
    pub rig: Option<Rig>,
    /// The segment manifest (`None` for legacy v1 files, which describe a
    /// single implicit segment).
    pub manifest: Option<Manifest>,
}

/// Errors from [`load_document`].
#[derive(Debug)]
pub enum LoadError {
    /// Decoding failed (I/O, checksum, malformed lengths).
    Decode(DecodeError),
    /// The file is not a `TRXIDX01` file.
    BadMagic,
    /// The contents are inconsistent (bad suffix array, invalid regions,
    /// non-hierarchical instance…).
    Invalid(&'static str),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Decode(e) => write!(f, "{e}"),
            LoadError::BadMagic => write!(f, "not a textregion index file"),
            LoadError::Invalid(what) => write!(f, "invalid index file: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<DecodeError> for LoadError {
    fn from(e: DecodeError) -> LoadError {
        LoadError::Decode(e)
    }
}

/// Saves an indexed document (text, suffix array, regions, optional RIG)
/// in the current v2 format: segment manifest first, then the body.
pub fn save_document<W: AsRef<Path>>(
    path: W,
    text: &str,
    instance: &Instance<SuffixWordIndex>,
    rig: Option<&Rig>,
) -> std::io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    let mut enc = Encoder::new(file);
    enc.fixed(MAGIC_V2)?;
    encode_manifest(&mut enc, &Manifest::for_document(text, instance))?;
    encode_body(&mut enc, text, instance, rig)?;
    enc.finish()?
        .into_inner()
        .map_err(|e| e.into_error())?
        .sync_all()
}

/// Saves in the legacy v1 single-segment format (no manifest). Kept so
/// the backward-compatibility path — old files must keep loading — stays
/// exercisable by tests and tooling; new files should use
/// [`save_document`].
pub fn save_document_v1<W: AsRef<Path>>(
    path: W,
    text: &str,
    instance: &Instance<SuffixWordIndex>,
    rig: Option<&Rig>,
) -> std::io::Result<()> {
    let file = BufWriter::new(File::create(path)?);
    let mut enc = Encoder::new(file);
    enc.fixed(MAGIC)?;
    encode_body(&mut enc, text, instance, rig)?;
    enc.finish()?
        .into_inner()
        .map_err(|e| e.into_error())?
        .sync_all()
}

fn encode_manifest<W: std::io::Write>(enc: &mut Encoder<W>, m: &Manifest) -> std::io::Result<()> {
    enc.u64(m.text_bytes)?;
    enc.u64(m.num_segments() as u64)?;
    for &b in &m.bounds {
        enc.u32(b)?;
    }
    enc.u64(m.names.len() as u64)?;
    for (name, counts) in m.names.iter().zip(&m.counts) {
        enc.str(name)?;
        for &c in counts {
            enc.u64(c)?;
        }
    }
    Ok(())
}

/// The body shared by both format versions: text, suffix array, schema,
/// region columns, optional RIG.
fn encode_body<W: std::io::Write>(
    enc: &mut Encoder<W>,
    text: &str,
    instance: &Instance<SuffixWordIndex>,
    rig: Option<&Rig>,
) -> std::io::Result<()> {
    enc.str(text)?;
    // Suffix array offsets (so loading skips reconstruction).
    let sa = instance.word_index().suffix_array();
    enc.u64(sa.raw().len() as u64)?;
    for &off in sa.raw() {
        enc.u32(off)?;
    }
    // Schema + region sets.
    let schema = instance.schema();
    enc.u64(schema.len() as u64)?;
    for name in schema.names() {
        enc.str(name)?;
    }
    for id in schema.ids() {
        let set = instance.regions_of(id);
        enc.u64(set.len() as u64)?;
        // Serialize straight off the columnar storage.
        for (&l, &r) in set.lefts().iter().zip(set.rights()) {
            enc.u32(l)?;
            enc.u32(r)?;
        }
    }
    // Optional RIG.
    match rig {
        None => enc.u64(0)?,
        Some(rig) => {
            let edges: Vec<_> = rig.edges().collect();
            enc.u64(1)?;
            enc.u64(edges.len() as u64)?;
            for (a, b) in edges {
                enc.u32(a.index() as u32)?;
                enc.u32(b.index() as u32)?;
            }
        }
    }
    Ok(())
}

/// Reads only the magic and [`Manifest`] of a v2 file — constant work in
/// the document size, so a catalog can describe (and defer) a large
/// document without decoding its text, suffix array, or columns.
///
/// The checksum trailer sits at the end of the file and is *not*
/// verified here; a full [`load_document`] still authenticates
/// everything, including the manifest bytes, before any query runs.
/// Legacy v1 files have no manifest and return
/// `Err(LoadError::Invalid(..))`.
pub fn peek_manifest<P: AsRef<Path>>(path: P) -> Result<Manifest, LoadError> {
    let file = BufReader::new(File::open(path).map_err(DecodeError::Io)?);
    let mut dec = Decoder::new(file);
    match dec.fixed(8)? {
        m if m == MAGIC_V2 => decode_manifest(&mut dec),
        m if m == MAGIC => Err(LoadError::Invalid("v1 store has no manifest")),
        _ => Err(LoadError::BadMagic),
    }
}

fn decode_manifest<R: std::io::Read>(dec: &mut Decoder<R>) -> Result<Manifest, LoadError> {
    let text_bytes = dec.u64()?;
    if text_bytes > MAX_TEXT {
        return Err(LoadError::Invalid("text too large"));
    }
    let n_segments = dec.u64()?;
    if n_segments == 0 || n_segments > MAX_STORED_SEGMENTS {
        return Err(LoadError::Invalid("implausible segment count"));
    }
    let mut bounds = Vec::with_capacity(n_segments as usize + 1);
    for _ in 0..=n_segments {
        bounds.push(dec.u32()?);
    }
    if bounds[0] != 0 || bounds.windows(2).any(|w| w[0] > w[1]) {
        return Err(LoadError::Invalid("segment bounds not monotone"));
    }
    let n_names = dec.u64()?;
    if n_names > MAX_NAMES {
        return Err(LoadError::Invalid("too many region names"));
    }
    let mut names = Vec::with_capacity((n_names as usize).min(MAX_TRUSTED_PREALLOC));
    let mut counts = Vec::with_capacity((n_names as usize).min(MAX_TRUSTED_PREALLOC));
    for _ in 0..n_names {
        names.push(dec.str(1 << 16)?);
        let mut per_seg = Vec::with_capacity(n_segments as usize);
        let mut total: u64 = 0;
        for _ in 0..n_segments {
            let c = dec.u64()?;
            total = total.saturating_add(c);
            per_seg.push(c);
        }
        if total > MAX_REGIONS {
            return Err(LoadError::Invalid("too many regions"));
        }
        counts.push(per_seg);
    }
    Ok(Manifest {
        text_bytes,
        bounds,
        names,
        counts,
    })
}

/// Loads a document saved by [`save_document`] (v2, with manifest) or the
/// legacy v1 writer, verifying the checksum, the suffix array, the
/// hierarchy invariant, and — for v2 — that the manifest agrees with the
/// decoded body.
pub fn load_document<P: AsRef<Path>>(path: P) -> Result<StoredDocument, LoadError> {
    let file = BufReader::new(File::open(path).map_err(DecodeError::Io)?);
    let mut dec = Decoder::new(file);
    let manifest = match dec.fixed(8)? {
        m if m == MAGIC_V2 => Some(decode_manifest(&mut dec)?),
        m if m == MAGIC => None,
        _ => return Err(LoadError::BadMagic),
    };
    let text = dec.str(MAX_TEXT)?;
    let sa_len = dec.u64()?;
    if sa_len != text.len() as u64 {
        return Err(LoadError::Invalid("suffix array length mismatch"));
    }
    let mut sa = Vec::with_capacity((sa_len as usize).min(MAX_TRUSTED_PREALLOC));
    for _ in 0..sa_len {
        sa.push(dec.u32()?);
    }
    let n_names = dec.u64()?;
    if n_names > MAX_NAMES {
        return Err(LoadError::Invalid("too many region names"));
    }
    let mut names = Vec::with_capacity(n_names as usize);
    for _ in 0..n_names {
        names.push(dec.str(1 << 16)?);
    }
    let mut sets = Vec::with_capacity(n_names as usize);
    for _ in 0..n_names {
        let count = dec.u64()?;
        if count > MAX_REGIONS {
            return Err(LoadError::Invalid("too many regions"));
        }
        // Decode straight into the columnar buffer — no intermediate
        // `Vec<Region>`.
        let prealloc = (count as usize).min(MAX_TRUSTED_PREALLOC);
        let mut lefts: Vec<u32> = Vec::with_capacity(prealloc);
        let mut rights: Vec<u32> = Vec::with_capacity(prealloc);
        for _ in 0..count {
            let (l, r) = (dec.u32()?, dec.u32()?);
            if l > r {
                return Err(LoadError::Invalid("inverted region"));
            }
            lefts.push(l);
            rights.push(r);
        }
        sets.push(RegionSet::from_columns(lefts, rights));
    }
    let rig_edges = match dec.u64()? {
        0 => None,
        1 => {
            let count = dec.u64()?;
            if count > MAX_REGIONS {
                return Err(LoadError::Invalid("too many RIG edges"));
            }
            let mut edges = Vec::with_capacity((count as usize).min(MAX_TRUSTED_PREALLOC));
            for _ in 0..count {
                edges.push((dec.u32()?, dec.u32()?));
            }
            Some(edges)
        }
        _ => return Err(LoadError::Invalid("bad RIG tag")),
    };
    dec.finish()?;

    // Reassemble and validate.
    let suffix = SuffixArray::from_parts(text.clone().into_bytes(), sa);
    if !suffix.is_consistent() {
        return Err(LoadError::Invalid("suffix array does not match text"));
    }
    let schema = Schema::new(names);
    let word = SuffixWordIndex::from_suffix_array(suffix);
    let instance = Instance::build(schema.clone(), sets, word)
        .map_err(|_| LoadError::Invalid("regions are not hierarchical"))?;
    let rig = match rig_edges {
        None => None,
        Some(edges) => {
            let mut rig = Rig::new(schema.clone());
            for (a, b) in edges {
                if a as usize >= schema.len() || b as usize >= schema.len() {
                    return Err(LoadError::Invalid("RIG edge out of schema"));
                }
                rig.0.add_edge(
                    tr_core::NameId::from_index(a as usize),
                    tr_core::NameId::from_index(b as usize),
                );
            }
            Some(rig)
        }
    };

    // v2: the manifest must describe exactly the body we decoded — text
    // size, names, and the per-segment extents of every column under the
    // left-endpoint assignment rule.
    if let Some(m) = &manifest {
        if m.text_bytes != text.len() as u64 {
            return Err(LoadError::Invalid("manifest text length mismatch"));
        }
        let names_match =
            m.names.len() == schema.len() && m.names.iter().map(String::as_str).eq(schema.names());
        if !names_match {
            return Err(LoadError::Invalid("manifest names mismatch"));
        }
        for (id, counts) in schema.ids().zip(&m.counts) {
            let ps = tr_core::seg::split_points(instance.regions_of(id), &m.bounds);
            let actual = ps.windows(2).map(|w| (w[1] - w[0]) as u64);
            if counts.len() != ps.len() - 1 || !actual.eq(counts.iter().copied()) {
                return Err(LoadError::Invalid("manifest segment extents mismatch"));
            }
        }
    }

    Ok(StoredDocument {
        text,
        instance,
        rig,
        manifest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_core::eval;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tr_store_test_{}_{name}.trx", std::process::id()))
    }

    #[test]
    fn round_trip_sgml_document() {
        let text = "<doc><sec>alpha</sec><sec>beta gamma</sec></doc>";
        let inst = tr_markup::parse_sgml(text).unwrap();
        let path = tmp("sgml");
        save_document(&path, text, &inst, None).unwrap();
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.text, text);
        assert_eq!(doc.instance.len(), inst.len());
        assert!(doc.rig.is_none());
        // Queries work identically on the loaded instance.
        let s = doc.instance.schema().clone();
        let q = tr_core::Expr::name(s.expect_id("sec")).select("beta");
        assert_eq!(eval(&q, &doc.instance), eval(&q, &inst));
    }

    #[test]
    fn round_trip_with_rig() {
        let text = "program a; proc b; begin end; begin end.";
        let inst = tr_markup::parse_program(text).unwrap();
        let path = tmp("rig");
        save_document(&path, text, &inst, Some(&Rig::figure_1())).unwrap();
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.rig.as_ref().map(|r| r.num_edges()), Some(10));
        assert_eq!(doc.rig.unwrap(), Rig::figure_1());
    }

    #[test]
    fn rejects_garbage_and_tampering() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not an index").unwrap();
        assert!(load_document(&path).is_err());

        let text = "<a>hi</a>";
        let inst = tr_markup::parse_sgml(text).unwrap();
        save_document(&path, text, &inst, None).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            load_document(&path).is_err(),
            "checksum must catch tampering"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_and_bit_flip_fails_cleanly() {
        // The server loads `.trx` files from operator-supplied corpus
        // directories, so *every* corruption — not just a lucky sample —
        // must come back as an error, never a panic or a wild allocation.
        let text = "program a; proc b; var x; begin end; begin end.";
        let inst = tr_markup::parse_program(text).unwrap();
        let path = tmp("sweep");
        save_document(&path, text, &inst, Some(&Rig::figure_1())).unwrap();
        let good = std::fs::read(&path).unwrap();
        assert!(load_document(&path).is_ok(), "pristine file loads");
        for len in 0..good.len() {
            std::fs::write(&path, &good[..len]).unwrap();
            assert!(load_document(&path).is_err(), "truncated to {len} bytes");
        }
        // FNV-1a folds every byte through a bijection (xor, then multiply
        // by an odd prime), so any single-bit flip in the payload changes
        // the computed checksum, and any flip in the trailer changes the
        // stored one — either way the load must fail.
        for i in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[i] ^= 1 << bit;
                std::fs::write(&path, &bad).unwrap();
                assert!(load_document(&path).is_err(), "bit {bit} of byte {i}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_document_round_trips() {
        let text = "no markup";
        let inst = tr_markup::parse_sgml(text).unwrap();
        let path = tmp("empty");
        save_document(&path, text, &inst, None).unwrap();
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(doc.instance.is_empty());
        assert_eq!(doc.text, text);
    }

    #[test]
    fn zero_byte_document_round_trips() {
        // The degenerate end of the empty-text audit: no text at all.
        let inst = tr_markup::parse_sgml("").unwrap();
        let path = tmp("zero");
        save_document(&path, "", &inst, None).unwrap();
        let m = peek_manifest(&path).unwrap();
        assert_eq!(m.text_bytes, 0);
        assert_eq!(m.num_segments(), 1);
        assert_eq!(m.total_regions(), 0);
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.text, "");
        assert!(doc.instance.is_empty());
    }

    #[test]
    fn v1_stores_still_load() {
        let text = "program a; proc b; var x; begin end; begin end.";
        let inst = tr_markup::parse_program(text).unwrap();
        let path = tmp("v1_compat");
        save_document_v1(&path, text, &inst, Some(&Rig::figure_1())).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[..8], MAGIC);
        // No manifest to peek…
        assert!(matches!(
            peek_manifest(&path),
            Err(LoadError::Invalid("v1 store has no manifest"))
        ));
        // …but the document loads in full, flagged as manifest-less.
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(doc.manifest.is_none());
        assert_eq!(doc.text, text);
        assert_eq!(doc.instance.len(), inst.len());
        assert_eq!(doc.rig.unwrap(), Rig::figure_1());
    }

    #[test]
    fn manifest_peek_matches_full_load() {
        let text = "<doc><sec>alpha beta</sec><sec>gamma</sec></doc>";
        let inst = tr_markup::parse_sgml(text).unwrap();
        let path = tmp("peek");
        save_document(&path, text, &inst, None).unwrap();
        let peeked = peek_manifest(&path).unwrap();
        let doc = load_document(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(doc.manifest.as_ref(), Some(&peeked));
        assert_eq!(peeked.text_bytes as usize, text.len());
        assert_eq!(peeked.total_regions() as usize, inst.len());
        assert_eq!(
            peeked.names,
            inst.schema().names().collect::<Vec<_>>(),
            "schema order preserved"
        );
        // The manifest's extents are the left-endpoint assignment rule.
        assert_eq!(peeked, Manifest::for_document(text, &inst));
    }
}
