//! A small, dependency-free binary codec: little-endian integers,
//! length-prefixed byte strings, and a checksum trailer.
//!
//! The on-disk format is deliberately simple (no compression, no
//! alignment games) — region indexes are written once and mapped into
//! memory-shaped vectors on load.

use std::io::{self, Read, Write};

/// Writer half of the codec, accumulating an FNV-1a checksum.
pub struct Encoder<W: Write> {
    out: W,
    hash: u64,
    position: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Initial state for the standalone section hashes ([`fnv1a_words`]).
pub const FNV_SEED: u64 = FNV_OFFSET;

/// Word-wise FNV-1a over a byte section, chained from `seed`
/// ([`FNV_SEED`] for the first section).
///
/// Folds 8 bytes per multiply instead of 1 — an order of magnitude
/// cheaper than the per-byte stream hash, which matters when verifying
/// multi-megabyte mapped columns on the cold-open path. The tail is
/// zero-padded to a word and the total length is mixed in last, so
/// `b"a"` and `b"a\0"` hash differently. Not interchangeable with the
/// per-byte [`Encoder`]/[`Decoder`] stream hash.
pub fn fnv1a_words(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_mul(FNV_PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(last);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(FNV_PRIME)
}

impl<W: Write> Encoder<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Encoder<W> {
        Encoder {
            out,
            hash: FNV_OFFSET,
            position: 0,
        }
    }

    /// Bytes written so far (the offset the next write lands at).
    pub fn position(&self) -> u64 {
        self.position
    }

    /// The checksum over everything written so far. Writing this value
    /// with [`Encoder::u64`] plants a verifiable prefix hash mid-stream:
    /// a reader at the same position computes the same state before
    /// reading the field.
    pub fn running_hash(&self) -> u64 {
        self.hash
    }

    fn raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        self.position += bytes.len() as u64;
        self.out.write_all(bytes)
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) -> io::Result<()> {
        self.raw(&v.to_le_bytes())
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) -> io::Result<()> {
        self.raw(&v.to_le_bytes())
    }

    /// Writes raw bytes with no length prefix (fixed-width fields like
    /// file magic).
    pub fn fixed(&mut self, v: &[u8]) -> io::Result<()> {
        self.raw(v)
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> io::Result<()> {
        self.u64(v.len() as u64)?;
        self.raw(v)
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> io::Result<()> {
        self.bytes(v.as_bytes())
    }

    /// Writes the checksum trailer and returns the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        let h = self.hash;
        self.out.write_all(&h.to_le_bytes())?;
        Ok(self.out)
    }
}

/// Reader half, verifying the checksum on [`Decoder::finish`].
pub struct Decoder<R: Read> {
    input: R,
    hash: u64,
    position: u64,
}

/// Decoding errors.
#[derive(Debug)]
pub enum DecodeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The trailer checksum did not match.
    Corrupt,
    /// A length or value was implausible.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "i/o error: {e}"),
            DecodeError::Corrupt => write!(f, "checksum mismatch (file corrupt or truncated)"),
            DecodeError::Malformed(what) => write!(f, "malformed file: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> DecodeError {
        DecodeError::Io(e)
    }
}

impl<R: Read> Decoder<R> {
    /// Wraps a reader.
    pub fn new(input: R) -> Decoder<R> {
        Decoder {
            input,
            hash: FNV_OFFSET,
            position: 0,
        }
    }

    /// Bytes consumed so far (the offset the next read starts at).
    pub fn position(&self) -> u64 {
        self.position
    }

    /// The checksum over everything read so far — the reader-side mirror
    /// of [`Encoder::running_hash`].
    pub fn running_hash(&self) -> u64 {
        self.hash
    }

    fn raw(&mut self, buf: &mut [u8]) -> Result<(), DecodeError> {
        self.input.read_exact(buf)?;
        for &b in buf.iter() {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        self.position += buf.len() as u64;
        Ok(())
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let mut b = [0u8; 4];
        self.raw(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut b = [0u8; 8];
        self.raw(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads exactly `n` raw bytes (fixed-width fields like file magic).
    pub fn fixed(&mut self, n: usize) -> Result<Vec<u8>, DecodeError> {
        let mut v = vec![0u8; n];
        self.raw(&mut v)?;
        Ok(v)
    }

    /// Reads a length-prefixed byte string, bounded by `max` bytes.
    pub fn bytes(&mut self, max: u64) -> Result<Vec<u8>, DecodeError> {
        let len = self.u64()?;
        if len > max {
            return Err(DecodeError::Malformed("length exceeds bound"));
        }
        // Grow as data actually arrives rather than trusting the length
        // prefix: a corrupted length under `max` must fail with an I/O
        // error, not commit gigabytes of memory up front.
        let mut v = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        let mut remaining = len as usize;
        while remaining > 0 {
            let n = remaining.min(chunk.len());
            self.raw(&mut chunk[..n])?;
            v.extend_from_slice(&chunk[..n]);
            remaining -= n;
        }
        Ok(v)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, max: u64) -> Result<String, DecodeError> {
        String::from_utf8(self.bytes(max)?).map_err(|_| DecodeError::Malformed("invalid utf-8"))
    }

    /// Verifies the checksum trailer.
    pub fn finish(mut self) -> Result<(), DecodeError> {
        let expect = self.hash;
        let mut b = [0u8; 8];
        self.input.read_exact(&mut b)?;
        if u64::from_le_bytes(b) != expect {
            return Err(DecodeError::Corrupt);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut enc = Encoder::new(Vec::new());
        enc.u32(7).unwrap();
        enc.u64(1 << 40).unwrap();
        enc.str("hello").unwrap();
        enc.bytes(&[1, 2, 3]).unwrap();
        let buf = enc.finish().unwrap();

        let mut dec = Decoder::new(buf.as_slice());
        assert_eq!(dec.u32().unwrap(), 7);
        assert_eq!(dec.u64().unwrap(), 1 << 40);
        assert_eq!(dec.str(100).unwrap(), "hello");
        assert_eq!(dec.bytes(100).unwrap(), vec![1, 2, 3]);
        dec.finish().unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let mut enc = Encoder::new(Vec::new());
        enc.str("payload").unwrap();
        let mut buf = enc.finish().unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        let mut dec = Decoder::new(buf.as_slice());
        let _ = dec.str(100); // may or may not fail here…
        assert!(dec.finish().is_err(), "…but the checksum must catch it");
    }

    #[test]
    fn truncation_is_detected() {
        let mut enc = Encoder::new(Vec::new());
        enc.u64(42).unwrap();
        let buf = enc.finish().unwrap();
        let mut dec = Decoder::new(&buf[..buf.len() - 1]);
        assert_eq!(dec.u64().unwrap(), 42);
        assert!(dec.finish().is_err());
    }

    #[test]
    fn running_hash_and_position_mirror_across_sides() {
        let mut enc = Encoder::new(Vec::new());
        enc.u32(7).unwrap();
        enc.str("hello").unwrap();
        let mid_hash = enc.running_hash();
        let mid_pos = enc.position();
        // Plant the prefix hash mid-stream, like the v3 header does.
        enc.u64(mid_hash).unwrap();
        let buf = enc.finish().unwrap();

        let mut dec = Decoder::new(buf.as_slice());
        dec.u32().unwrap();
        dec.str(100).unwrap();
        assert_eq!(dec.position(), mid_pos);
        assert_eq!(dec.running_hash(), mid_hash);
        assert_eq!(dec.u64().unwrap(), mid_hash);
        dec.finish().unwrap();
    }

    #[test]
    fn word_hash_separates_sections_and_lengths() {
        let a = fnv1a_words(FNV_SEED, b"alpha");
        assert_eq!(a, fnv1a_words(FNV_SEED, b"alpha"), "deterministic");
        assert_ne!(a, fnv1a_words(FNV_SEED, b"alphb"));
        // Zero padding of the tail word must not collide with explicit
        // trailing zeros: length is mixed in.
        assert_ne!(fnv1a_words(FNV_SEED, b"a"), fnv1a_words(FNV_SEED, b"a\0"));
        assert_ne!(fnv1a_words(FNV_SEED, b""), 0);
        // Chaining sections is order-sensitive.
        let ab = fnv1a_words(fnv1a_words(FNV_SEED, b"aa"), b"bb");
        let ba = fnv1a_words(fnv1a_words(FNV_SEED, b"bb"), b"aa");
        assert_ne!(ab, ba);
    }

    #[test]
    fn length_bound_is_enforced() {
        let mut enc = Encoder::new(Vec::new());
        enc.bytes(&[0u8; 64]).unwrap();
        let buf = enc.finish().unwrap();
        let mut dec = Decoder::new(buf.as_slice());
        assert!(matches!(dec.bytes(16), Err(DecodeError::Malformed(_))));
    }
}
