//! The region index schema (Definition 2.1): the fixed set of region names
//! `R_1, …, R_n` a file is indexed with.

use std::fmt;

/// Identifies a region name within a [`Schema`]. Cheap to copy; stable for
/// the lifetime of the schema.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(pub(crate) u16);

impl NameId {
    /// The index of this name in its schema.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NameId` from a raw index. The caller must ensure the index
    /// is valid for the schema it will be used with.
    #[inline]
    pub fn from_index(i: usize) -> NameId {
        NameId(u16::try_from(i).expect("schema supports at most 65536 names"))
    }
}

impl fmt::Debug for NameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NameId({})", self.0)
    }
}

/// A region index schema: an ordered set of distinct region names.
///
/// The paper writes `𝓘 = {R_1, …, R_n}`; queries refer to names, instances
/// map each name to a set of regions.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    names: Vec<String>,
}

impl Schema {
    /// Builds a schema from names. Panics on duplicates — the paper's region
    /// names are a *set*.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Schema {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(
                !names[..i].contains(n),
                "duplicate region name {n:?} in schema"
            );
        }
        assert!(
            names.len() <= u16::MAX as usize + 1,
            "too many region names"
        );
        Schema { names }
    }

    /// Number of region names.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the schema has no names.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks a name up by string.
    pub fn id(&self, name: &str) -> Option<NameId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(NameId::from_index)
    }

    /// Looks a name up by string, panicking with a helpful message if absent.
    /// Intended for examples and tests where the name is statically known.
    pub fn expect_id(&self, name: &str) -> NameId {
        self.id(name)
            .unwrap_or_else(|| panic!("region name {name:?} not in schema {:?}", self.names))
    }

    /// The string for a name id.
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id.index()]
    }

    /// All name ids, in schema order.
    pub fn ids(&self) -> impl Iterator<Item = NameId> + '_ {
        (0..self.names.len()).map(NameId::from_index)
    }

    /// All names, in schema order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_round_trips() {
        let s = Schema::new(["Prog", "Proc", "Var"]);
        assert_eq!(s.len(), 3);
        let proc_id = s.expect_id("Proc");
        assert_eq!(s.name(proc_id), "Proc");
        assert_eq!(s.id("Nope"), None);
        assert_eq!(s.ids().count(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate region name")]
    fn rejects_duplicates() {
        let _ = Schema::new(["A", "B", "A"]);
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn expect_id_panics_with_context() {
        Schema::new(["A"]).expect_id("B");
    }
}
