//! Evaluation of region algebra expressions over an instance
//! (`e(I)` in the paper's notation).

use crate::exec::{execute, ExecConfig};
use crate::expr::{BinOp, Expr};
use crate::instance::Instance;
use crate::plan::Plan;
use crate::set::RegionSet;
use crate::word::WordIndex;
use crate::{naive, ops};

/// Evaluates `e(I)` using the fast operator implementations.
pub fn eval<W: WordIndex>(e: &Expr, inst: &Instance<W>) -> RegionSet {
    eval_with(e, inst, &FAST)
}

/// Evaluates `e(I)` through the plan-based parallel executor with default
/// settings (all cores, default kernel cutoff). Results are byte-identical
/// to [`eval`]; see [`crate::exec`] for tuning and batch execution.
pub fn eval_parallel<W: WordIndex + Sync>(e: &Expr, inst: &Instance<W>) -> RegionSet {
    eval_parallel_with(e, inst, &ExecConfig::default())
}

/// [`eval_parallel`] with explicit execution settings.
pub fn eval_parallel_with<W: WordIndex + Sync>(
    e: &Expr,
    inst: &Instance<W>,
    cfg: &ExecConfig,
) -> RegionSet {
    let mut plan = Plan::new();
    let root = plan.lower(e);
    let executed = execute(&plan, inst, cfg);
    executed.take(&[root]).pop().expect("one root requested")
}

/// Evaluates `e(I)` using the naive (literal Definition 2.3) operators.
/// The results are always identical to [`eval`]; this exists as the oracle
/// and baseline.
pub fn eval_naive<W: WordIndex>(e: &Expr, inst: &Instance<W>) -> RegionSet {
    eval_with(e, inst, &NAIVE)
}

/// The structural-operator vtable, letting callers pick the fast or naive
/// engine (experiment E2 sweeps both).
pub struct OpTable {
    /// Implementation of `R ⊃ S`.
    pub includes: fn(&RegionSet, &RegionSet) -> RegionSet,
    /// Implementation of `R ⊂ S`.
    pub included_in: fn(&RegionSet, &RegionSet) -> RegionSet,
    /// Implementation of `R < S`.
    pub precedes: fn(&RegionSet, &RegionSet) -> RegionSet,
    /// Implementation of `R > S`.
    pub follows: fn(&RegionSet, &RegionSet) -> RegionSet,
}

/// The sub-quadratic engine of [`crate::ops`].
pub static FAST: OpTable = OpTable {
    includes: ops::includes,
    included_in: ops::included_in,
    precedes: ops::precedes,
    follows: ops::follows,
};

/// The quadratic reference engine of [`crate::naive`].
pub static NAIVE: OpTable = OpTable {
    includes: naive::includes,
    included_in: naive::included_in,
    precedes: naive::precedes,
    follows: naive::follows,
};

/// Evaluates `e(I)` with memoization of repeated sub-expressions.
///
/// Results are identical to [`eval`]. The payoff is on expressions with
/// massive internal duplication — e.g. the bounded-depth constructions of
/// Proposition 5.2 repeat their `rest ⊂ rest` sub-expression
/// exponentially while only O(depth) duplicates are *distinct* — but note
/// the trade-off: memo lookups hash whole sub-trees, so on instances
/// small enough that operator evaluation is cheaper than hashing, plain
/// [`eval`] wins. Experiment E8 measures both sides of the crossover.
pub fn eval_memo<W: WordIndex>(e: &Expr, inst: &Instance<W>) -> RegionSet {
    let mut memo: std::collections::HashMap<&Expr, RegionSet> = std::collections::HashMap::new();
    fn go<'e, W: WordIndex>(
        e: &'e Expr,
        inst: &Instance<W>,
        memo: &mut std::collections::HashMap<&'e Expr, RegionSet>,
    ) -> RegionSet {
        if let Some(hit) = memo.get(e) {
            return hit.clone();
        }
        let value = match e {
            Expr::Name(id) => inst.regions_of(*id).clone(),
            Expr::Select(p, inner) => inst.select(&go(inner, inst, memo), p),
            Expr::Bin(op, l, r) => {
                let lv = go(l, inst, memo);
                let rv = go(r, inst, memo);
                match op {
                    BinOp::Union => lv.union(&rv),
                    BinOp::Intersect => lv.intersect(&rv),
                    BinOp::Diff => lv.difference(&rv),
                    BinOp::Including => ops::includes(&lv, &rv),
                    BinOp::IncludedIn => ops::included_in(&lv, &rv),
                    BinOp::Before => ops::precedes(&lv, &rv),
                    BinOp::After => ops::follows(&lv, &rv),
                }
            }
        };
        memo.insert(e, value.clone());
        value
    }
    go(e, inst, &mut memo)
}

/// Evaluates `e(I)` with an explicit operator table.
pub fn eval_with<W: WordIndex>(e: &Expr, inst: &Instance<W>, t: &OpTable) -> RegionSet {
    match e {
        Expr::Name(id) => inst.regions_of(*id).clone(),
        Expr::Select(p, inner) => inst.select(&eval_with(inner, inst, t), p),
        Expr::Bin(op, l, r) => {
            let lv = eval_with(l, inst, t);
            let rv = eval_with(r, inst, t);
            match op {
                BinOp::Union => lv.union(&rv),
                BinOp::Intersect => lv.intersect(&rv),
                BinOp::Diff => lv.difference(&rv),
                BinOp::Including => (t.includes)(&lv, &rv),
                BinOp::IncludedIn => (t.included_in)(&lv, &rv),
                BinOp::Before => (t.precedes)(&lv, &rv),
                BinOp::After => (t.follows)(&lv, &rv),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::region::region;
    use crate::schema::Schema;

    /// The paper's Section 2.2 example: `e1 = Name ⊂ Proc_header ⊂ Proc ⊂
    /// Program` and `e2 = Name ⊂ Proc_header ⊂ Program` agree on instances
    /// shaped like real programs.
    #[test]
    fn section_2_2_example() {
        let schema = Schema::new(["Program", "Proc", "Proc_header", "Name", "Var"]);
        // program [0..99] { proc [10..40] { header [11..20] { name [12..14] } },
        //                   name [2..4] (program's own name, directly in program) }
        let inst = InstanceBuilder::new(schema.clone())
            .add("Program", region(0, 99))
            .add("Name", region(2, 4))
            .add("Proc", region(10, 40))
            .add("Proc_header", region(11, 20))
            .add("Name", region(12, 14))
            .add("Var", region(25, 30))
            .build_valid();
        let name = Expr::name(schema.expect_id("Name"));
        let hdr = Expr::name(schema.expect_id("Proc_header"));
        let prc = Expr::name(schema.expect_id("Proc"));
        let prg = Expr::name(schema.expect_id("Program"));
        let e1 = name
            .clone()
            .included_in(hdr.clone().included_in(prc.included_in(prg.clone())));
        let e2 = name.included_in(hdr.included_in(prg));
        let r1 = eval(&e1, &inst);
        let r2 = eval(&e2, &inst);
        assert_eq!(r1, r2);
        assert_eq!(r1.to_vec(), &[region(12, 14)], "only the procedure's name");
    }

    #[test]
    fn selection_uses_word_index() {
        let schema = Schema::new(["Var"]);
        let inst = InstanceBuilder::new(schema.clone())
            .add("Var", region(0, 9))
            .add("Var", region(20, 29))
            .occurrence("x", 5, 1)
            .build_valid();
        let e = Expr::name(schema.expect_id("Var")).select("x");
        assert_eq!(eval(&e, &inst).to_vec(), &[region(0, 9)]);
    }

    #[test]
    fn set_operators() {
        let schema = Schema::new(["A", "B"]);
        let inst = InstanceBuilder::new(schema.clone())
            .add("A", region(0, 9))
            .add("A", region(20, 29))
            .add("B", region(20, 29))
            .build();
        // A and B share [20..29]: that violates the unique-name assumption,
        // so build it differently: B gets a nested region instead.
        assert!(inst.is_err());
        let inst = InstanceBuilder::new(schema.clone())
            .add("A", region(0, 9))
            .add("A", region(20, 29))
            .add("B", region(21, 28))
            .build_valid();
        let a = Expr::name(schema.expect_id("A"));
        let b = Expr::name(schema.expect_id("B"));
        assert_eq!(eval(&a.clone().union(b.clone()), &inst).len(), 3);
        assert_eq!(eval(&a.clone().intersect(b.clone()), &inst).len(), 0);
        assert_eq!(eval(&a.clone().diff(b.clone()), &inst).len(), 2);
        assert_eq!(
            eval(&a.clone().including(b.clone()), &inst).to_vec(),
            &[region(20, 29)]
        );
        assert_eq!(
            eval(&b.clone().included_in(a.clone()), &inst).to_vec(),
            &[region(21, 28)]
        );
        assert_eq!(
            eval(&a.clone().before(b.clone()), &inst).to_vec(),
            &[region(0, 9)]
        );
        assert_eq!(eval(&b.after(a), &inst).to_vec(), &[region(21, 28)]);
    }

    #[test]
    fn memoized_evaluation_agrees_with_plain() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(19);
        let schema = Schema::new(["A", "B"]);
        for _ in 0..30 {
            let mut b = InstanceBuilder::new(schema.clone());
            let mut pos = 0u32;
            for _ in 0..rng.gen_range(1..8) {
                let len = rng.gen_range(1..20);
                b = b.add(
                    if rng.gen_bool(0.5) { "A" } else { "B" },
                    region(pos, pos + len),
                );
                pos += len + 2;
            }
            let inst = b.build_valid();
            let a = Expr::name(schema.expect_id("A"));
            let bb = Expr::name(schema.expect_id("B"));
            // Deliberately share sub-expressions.
            let shared = a.clone().included_in(bb.clone());
            let e = shared
                .clone()
                .union(shared.clone().intersect(shared.clone()));
            assert_eq!(eval_memo(&e, &inst), eval(&e, &inst));
            let e2 = a.clone().including(bb.clone()).diff(bb.including(a));
            assert_eq!(eval_memo(&e2, &inst), eval(&e2, &inst));
        }
    }

    #[test]
    fn fast_and_naive_agree_on_random_instances() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        let schema = Schema::new(["A", "B"]);
        for _ in 0..40 {
            // Random hierarchical instance: segments of a balanced bracket walk.
            let mut b = InstanceBuilder::new(schema.clone());
            let mut pos = 0u32;
            for _ in 0..rng.gen_range(0..8) {
                let len = rng.gen_range(1..20);
                let name = if rng.gen_bool(0.5) { "A" } else { "B" };
                b = b.add(name, region(pos, pos + len));
                if rng.gen_bool(0.5) && len >= 3 {
                    let other = if name == "A" { "B" } else { "A" };
                    b = b.add(other, region(pos + 1, pos + len - 1));
                }
                pos += len + 2;
            }
            let inst = b.build_valid();
            let a = Expr::name(schema.expect_id("A"));
            let bb = Expr::name(schema.expect_id("B"));
            for e in [
                a.clone().including(bb.clone()),
                a.clone().included_in(bb.clone()),
                a.clone().before(bb.clone()).after(bb.clone()),
                a.clone().diff(bb.clone().included_in(a.clone())),
            ] {
                assert_eq!(
                    eval(&e, &inst),
                    eval_naive(&e, &inst),
                    "expr {e} inst {inst:?}"
                );
            }
        }
    }
}
