//! Region algebra expressions (Definition 2.2):
//!
//! ```text
//! e → R_i | e ∪ e | e ∩ e | e − e | e ⊃ e | e ⊂ e | e < e | e > e | σ_p(e) | (e)
//! ```
//!
//! Expressions are plain trees over [`NameId`]s and pattern strings.
//! Following the paper, the structural operators are *not* associative and
//! unparenthesized chains group from the right; the [`fmt::Display`]
//! implementation prints the minimal parentheses under that convention.

use crate::schema::{NameId, Schema};
use std::collections::BTreeSet;
use std::fmt;

/// The binary operators of the algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// `e ∪ e` — set union.
    Union,
    /// `e ∩ e` — set intersection.
    Intersect,
    /// `e − e` — set difference.
    Diff,
    /// `e ⊃ e` — regions of the left including some region of the right.
    Including,
    /// `e ⊂ e` — regions of the left included in some region of the right.
    IncludedIn,
    /// `e < e` — regions of the left preceding some region of the right.
    Before,
    /// `e > e` — regions of the left following some region of the right.
    After,
}

impl BinOp {
    /// All seven operators, in a fixed order (used by the expression
    /// enumerator in `tr-ext`).
    pub const ALL: [BinOp; 7] = [
        BinOp::Union,
        BinOp::Intersect,
        BinOp::Diff,
        BinOp::Including,
        BinOp::IncludedIn,
        BinOp::Before,
        BinOp::After,
    ];

    /// True for `<` and `>` — the operators counted by `k` in Theorem 4.4.
    pub fn is_order(self) -> bool {
        matches!(self, BinOp::Before | BinOp::After)
    }

    /// The operator's symbol as printed by `Display`.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Union => "∪",
            BinOp::Intersect => "∩",
            BinOp::Diff => "−",
            BinOp::Including => "⊃",
            BinOp::IncludedIn => "⊂",
            BinOp::Before => "<",
            BinOp::After => ">",
        }
    }
}

/// A region algebra expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A region name `R_i`.
    Name(NameId),
    /// A binary operator application.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A selection `σ_p(e)`.
    Select(String, Box<Expr>),
}

impl Expr {
    /// `R_i` as an expression.
    pub fn name(id: NameId) -> Expr {
        Expr::Name(id)
    }

    /// Applies a binary operator.
    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Bin(op, Box::new(left), Box::new(right))
    }

    /// `self ∪ rhs`.
    pub fn union(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Union, self, rhs)
    }

    /// `self ∩ rhs`.
    pub fn intersect(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Intersect, self, rhs)
    }

    /// `self − rhs`.
    pub fn diff(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Diff, self, rhs)
    }

    /// `self ⊃ rhs`.
    pub fn including(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Including, self, rhs)
    }

    /// `self ⊂ rhs`.
    pub fn included_in(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::IncludedIn, self, rhs)
    }

    /// `self < rhs`.
    pub fn before(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Before, self, rhs)
    }

    /// `self > rhs`.
    pub fn after(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::After, self, rhs)
    }

    /// `σ_p(self)`.
    pub fn select(self, pattern: impl Into<String>) -> Expr {
        Expr::Select(pattern.into(), Box::new(self))
    }

    /// The number of operations in the expression — `|e|` in the paper's
    /// theorems. Each binary operator and each selection counts as one
    /// operation; a bare region name has zero.
    pub fn num_ops(&self) -> usize {
        match self {
            Expr::Name(_) => 0,
            Expr::Bin(_, l, r) => 1 + l.num_ops() + r.num_ops(),
            Expr::Select(_, e) => 1 + e.num_ops(),
        }
    }

    /// The number of `<` and `>` operations — `k` in Theorem 4.4.
    pub fn num_order_ops(&self) -> usize {
        match self {
            Expr::Name(_) => 0,
            Expr::Bin(op, l, r) => {
                usize::from(op.is_order()) + l.num_order_ops() + r.num_order_ops()
            }
            Expr::Select(_, e) => e.num_order_ops(),
        }
    }

    /// The set of patterns appearing in selections — `P` in the theorems.
    pub fn patterns(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_patterns(&mut out);
        out
    }

    fn collect_patterns<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Expr::Name(_) => {}
            Expr::Bin(_, l, r) => {
                l.collect_patterns(out);
                r.collect_patterns(out);
            }
            Expr::Select(p, e) => {
                out.insert(p.as_str());
                e.collect_patterns(out);
            }
        }
    }

    /// The set of region names appearing in the expression.
    pub fn names(&self) -> BTreeSet<NameId> {
        let mut out = BTreeSet::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names(&self, out: &mut BTreeSet<NameId>) {
        match self {
            Expr::Name(id) => {
                out.insert(*id);
            }
            Expr::Bin(_, l, r) => {
                l.collect_names(out);
                r.collect_names(out);
            }
            Expr::Select(_, e) => e.collect_names(out),
        }
    }

    /// Renders the expression with names resolved against a schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> ExprDisplay<'a> {
        ExprDisplay { expr: self, schema }
    }
}

/// Helper returned by [`Expr::display`].
pub struct ExprDisplay<'a> {
    expr: &'a Expr,
    schema: &'a Schema,
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self.expr, Some(self.schema), f, false)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, None, f, false)
    }
}

/// Prints `e`; `left_of_bin` is true when `e` is the left operand of a
/// binary operator, in which case a binary `e` needs parentheses (the
/// paper's convention groups unparenthesized chains from the right).
fn fmt_expr(
    e: &Expr,
    schema: Option<&Schema>,
    f: &mut fmt::Formatter<'_>,
    left_of_bin: bool,
) -> fmt::Result {
    match e {
        Expr::Name(id) => match schema {
            Some(s) => write!(f, "{}", s.name(*id)),
            None => write!(f, "R{}", id.index()),
        },
        Expr::Bin(op, l, r) => {
            if left_of_bin {
                write!(f, "(")?;
            }
            fmt_expr(l, schema, f, true)?;
            write!(f, " {} ", op.symbol())?;
            fmt_expr(r, schema, f, false)?;
            if left_of_bin {
                write!(f, ")")?;
            }
            Ok(())
        }
        Expr::Select(p, inner) => {
            write!(f, "σ[{p:?}](")?;
            fmt_expr(inner, schema, f, false)?;
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (NameId, NameId, NameId) {
        (
            NameId::from_index(0),
            NameId::from_index(1),
            NameId::from_index(2),
        )
    }

    #[test]
    fn counts() {
        let (a, b, c) = ids();
        let e = Expr::name(a)
            .included_in(Expr::name(b).included_in(Expr::name(c)))
            .select("x");
        assert_eq!(e.num_ops(), 3);
        assert_eq!(e.num_order_ops(), 0);
        let e2 = Expr::name(a).before(Expr::name(b).after(Expr::name(c)));
        assert_eq!(e2.num_order_ops(), 2);
    }

    #[test]
    fn pattern_and_name_collection() {
        let (a, b, _) = ids();
        let e = Expr::name(a)
            .select("x")
            .union(Expr::name(b).select("y").select("x"));
        assert_eq!(e.patterns().into_iter().collect::<Vec<_>>(), vec!["x", "y"]);
        assert_eq!(e.names().len(), 2);
    }

    #[test]
    fn display_groups_from_the_right() {
        let (a, b, c) = ids();
        // Right-grouped chain needs no parens.
        let chain = Expr::name(a).included_in(Expr::name(b).included_in(Expr::name(c)));
        assert_eq!(chain.to_string(), "R0 ⊂ R1 ⊂ R2");
        // Left-grouped needs parens on the left operand.
        let left = Expr::name(a)
            .included_in(Expr::name(b))
            .included_in(Expr::name(c));
        assert_eq!(left.to_string(), "(R0 ⊂ R1) ⊂ R2");
    }

    #[test]
    fn display_with_schema_names() {
        let schema = Schema::new(["Name", "Proc_header", "Program"]);
        let e = Expr::name(schema.expect_id("Name")).included_in(
            Expr::name(schema.expect_id("Proc_header"))
                .included_in(Expr::name(schema.expect_id("Program"))),
        );
        assert_eq!(
            e.display(&schema).to_string(),
            "Name ⊂ Proc_header ⊂ Program"
        );
    }

    #[test]
    fn select_displays_pattern() {
        let (a, _, _) = ids();
        assert_eq!(Expr::name(a).select("x").to_string(), "σ[\"x\"](R0)");
    }
}
