//! Document mutation: splice transforms over region sets and instances.
//!
//! A live document changes in two ways — its **text** (append/splice of
//! bytes) and its **regions** (add/remove a named region). This module
//! defines the edit vocabulary ([`Edit`]) and the pure region-coordinate
//! transforms a text splice induces, so every layer (engine swap in
//! `tr-query`, the `mutate` verb in `tr-serve`) agrees on exactly one
//! semantics:
//!
//! A splice replaces `delete` bytes at position `at` with `insert_len`
//! new bytes (`delta = insert_len - delete`). For a region `[l, r]`
//! (inclusive endpoints, as everywhere in the paper's model):
//!
//! * entirely before the edit (`r < at`) — kept verbatim;
//! * entirely after the deleted range (`l ≥ at + delete`) — shifted by
//!   `delta`;
//! * strictly containing the edit — stretched: `[l, r + delta]`;
//! * overlapping from the left — truncated to `[l, at − 1]`;
//! * overlapping from the right — clipped to `[at + insert_len, r + delta]`;
//! * entirely inside the deleted range — dropped.
//!
//! [`splice_set`] lifts the per-region rule to a whole [`RegionSet`] with
//! a zero-copy fast path: a set whose regions all end before the edit is
//! returned as a handle clone of the same `Arc`'d columns (provable via
//! [`RegionSet::shares_buf`]), which is what makes clean-segment reuse
//! free under append-heavy workloads.

use crate::instance::{Instance, InstanceError};
use crate::region::{region, Pos, Region};
use crate::set::RegionSet;

/// One document edit, in the engine's coordinate space (byte offsets).
///
/// Region names are carried as strings because edits originate outside
/// the schema (the serve protocol, the REPL); the engine resolves them
/// when applying.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Edit {
    /// Replace `delete` bytes at `at` with `insert`. `at` past the end
    /// of the text clamps to an append; `delete` clamps to the tail.
    Splice {
        /// Byte offset of the edit.
        at: Pos,
        /// Bytes removed.
        delete: Pos,
        /// Bytes inserted in their place.
        insert: String,
    },
    /// Add `region` under the (existing) name `name`.
    AddRegion {
        /// The schema name to add under.
        name: String,
        /// The region to add.
        region: Region,
    },
    /// Remove `region` from under `name` (a no-op if absent).
    RemoveRegion {
        /// The schema name to remove from.
        name: String,
        /// The region to remove.
        region: Region,
    },
}

impl Edit {
    /// Convenience constructor for an append at the end of the text
    /// (`at` is clamped by the applier, so `Pos::MAX` always appends).
    pub fn append(text: impl Into<String>) -> Edit {
        Edit::Splice {
            at: Pos::MAX,
            delete: 0,
            insert: text.into(),
        }
    }

    /// True when the edit changes text bytes (any splice, even an empty
    /// one — callers that care about no-ops check `delete`/`insert`).
    pub fn touches_text(&self) -> bool {
        matches!(self, Edit::Splice { .. })
    }
}

/// Where a splice maps one region, per the module-level rule. `None`
/// means the region fell entirely inside the deleted range.
pub fn splice_region(r: Region, at: Pos, delete: Pos, insert_len: Pos) -> Option<Region> {
    let zone_end = at as i64 + delete as i64;
    let delta = insert_len as i64 - delete as i64;
    let (l, rr) = (r.left() as i64, r.right() as i64);
    if rr < at as i64 {
        Some(r)
    } else if l >= zone_end {
        Some(region((l + delta) as Pos, (rr + delta) as Pos))
    } else if l < at as i64 && rr >= zone_end {
        Some(region(l as Pos, (rr + delta) as Pos))
    } else if l < at as i64 {
        Some(region(l as Pos, at - 1))
    } else if rr >= zone_end {
        Some(region(at + insert_len, (rr + delta) as Pos))
    } else {
        None
    }
}

/// Lifts [`splice_region`] to a whole set. Regions that survive are
/// re-sorted and de-duplicated (two overlapping regions can truncate to
/// identical endpoints). Fast path: a set entirely before the edit is
/// returned as a zero-copy handle clone.
pub fn splice_set(set: &RegionSet, at: Pos, delete: Pos, insert_len: Pos) -> RegionSet {
    if set.is_empty() {
        return set.clone();
    }
    // All regions end before the edit: columns are byte-identical, so the
    // Arc'd buffer is reused verbatim.
    if set.iter().map(|r| r.right()).max().is_some_and(|m| m < at) {
        return set.clone();
    }
    let survivors: Vec<Region> = set
        .iter()
        .filter_map(|r| splice_region(r, at, delete, insert_len))
        .collect();
    RegionSet::from_regions(survivors)
}

/// Applies a text splice to every region set of an instance, pairing the
/// transformed sets with a new word index (built by the caller over the
/// new text — see `tr_text::SuffixWordIndex::spliced`). Re-validates the
/// hierarchy: a splice that truncates two nested regions onto partially
/// overlapping endpoints is an error, not a corrupt instance.
pub fn splice_instance<W, V>(
    inst: &Instance<W>,
    at: Pos,
    delete: Pos,
    insert_len: Pos,
    word: V,
) -> Result<Instance<V>, InstanceError> {
    let sets: Vec<RegionSet> = inst
        .schema()
        .ids()
        .map(|id| splice_set(inst.regions_of(id), at, delete, insert_len))
        .collect();
    Instance::build(inst.schema().clone(), sets, word)
}

/// Returns a copy of the instance with `r` added under `id`,
/// re-validated (duplicate or partially-overlapping additions surface as
/// an [`InstanceError`]). The word index is shared via clone — region
/// membership does not affect `W`.
pub fn with_region_added<W: Clone>(
    inst: &Instance<W>,
    id: crate::schema::NameId,
    r: Region,
) -> Result<Instance<W>, InstanceError> {
    let sets: Vec<RegionSet> = inst
        .schema()
        .ids()
        .map(|name| {
            let mut s = inst.regions_of(name).clone();
            if name == id {
                s.insert(r);
            }
            s
        })
        .collect();
    Instance::build(inst.schema().clone(), sets, inst.word_index().clone())
}

/// Returns a copy of the instance with `r` removed from under `id` (a
/// no-op when absent). Removal cannot break the hierarchy, but the
/// result is rebuilt through the same validated path for uniformity.
pub fn with_region_removed<W: Clone>(
    inst: &Instance<W>,
    id: crate::schema::NameId,
    r: Region,
) -> Result<Instance<W>, InstanceError> {
    let doomed = RegionSet::singleton(r);
    let sets: Vec<RegionSet> = inst
        .schema()
        .ids()
        .map(|name| {
            if name == id {
                inst.regions_of(name).difference(&doomed)
            } else {
                inst.regions_of(name).clone()
            }
        })
        .collect();
    Instance::build(inst.schema().clone(), sets, inst.word_index().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::schema::Schema;

    #[test]
    fn splice_region_case_table() {
        // Splice at 10, delete 4 (zone [10, 14)), insert 2 → delta −2.
        let case = |l, r| splice_region(region(l, r), 10, 4, 2);
        assert_eq!(case(0, 9), Some(region(0, 9)), "before: kept");
        assert_eq!(case(14, 20), Some(region(12, 18)), "after: shifted");
        assert_eq!(case(5, 20), Some(region(5, 18)), "contains: stretched");
        assert_eq!(case(8, 12), Some(region(8, 9)), "left overlap: truncated");
        assert_eq!(case(12, 20), Some(region(12, 18)), "right overlap: clipped");
        assert_eq!(case(10, 13), None, "inside: dropped");
        assert_eq!(case(11, 13), None, "inside: dropped");
    }

    #[test]
    fn pure_insert_shifts_and_stretches() {
        // Insert 3 bytes at 10 (delete 0).
        let case = |l, r| splice_region(region(l, r), 10, 0, 3);
        assert_eq!(case(0, 9), Some(region(0, 9)), "ends before the cursor");
        assert_eq!(case(10, 12), Some(region(13, 15)), "starts at the cursor");
        assert_eq!(case(5, 15), Some(region(5, 18)), "spans the cursor");
    }

    #[test]
    fn splice_set_fast_path_is_zero_copy() {
        let set = RegionSet::from_regions(vec![region(0, 3), region(5, 8)]);
        let out = splice_set(&set, 20, 2, 5);
        assert!(
            out.shares_buf(&set),
            "untouched set reuses the Arc'd columns"
        );
        assert_eq!(out.to_vec(), set.to_vec());
    }

    #[test]
    fn splice_set_dedups_collapsed_regions() {
        // Both regions truncate to [0, 9].
        let set = RegionSet::from_regions(vec![region(0, 12), region(0, 15)]);
        let out = splice_set(&set, 10, 10, 0);
        assert_eq!(out.to_vec(), vec![region(0, 9)]);
    }

    #[test]
    fn splice_instance_revalidates() {
        let schema = Schema::new(["A", "B"]);
        let inst = InstanceBuilder::new(schema)
            .add("A", region(0, 20))
            .add("B", region(5, 10))
            .build_valid();
        // Deleting [8, 30) truncates both; B becomes [5, 7] ⊂ A [0, 7].
        let out = splice_instance(&inst, 8, 22, 0, ()).unwrap();
        assert_eq!(out.regions_of_name("A").to_vec(), vec![region(0, 7)]);
        assert_eq!(out.regions_of_name("B").to_vec(), vec![region(5, 7)]);
    }

    #[test]
    fn add_and_remove_region_round_trip() {
        let schema = Schema::new(["A", "B"]);
        let inst = InstanceBuilder::new(schema.clone())
            .add("A", region(0, 20))
            .build_valid();
        let id_b = schema.expect_id("B");
        let bigger = with_region_added(&inst, id_b, region(3, 9)).unwrap();
        assert_eq!(bigger.regions_of_name("B").to_vec(), vec![region(3, 9)]);
        let back = with_region_removed(&bigger, id_b, region(3, 9)).unwrap();
        assert!(back.regions_of_name("B").is_empty());
        assert_eq!(back.len(), inst.len());
    }

    #[test]
    fn add_region_rejects_partial_overlap() {
        let schema = Schema::new(["A", "B"]);
        let inst = InstanceBuilder::new(schema.clone())
            .add("A", region(0, 10))
            .build_valid();
        let err = with_region_added(&inst, schema.expect_id("B"), region(5, 15));
        assert!(matches!(err, Err(InstanceError::PartialOverlap { .. })));
    }
}
