//! Hash-consed query plans: expressions lowered to a shared DAG.
//!
//! [`eval_memo`](crate::eval::eval_memo) deduplicates repeated
//! sub-expressions, but pays by hashing whole sub-*trees* on every memo
//! probe. Lowering an [`Expr`] into a [`Plan`] moves that cost to a single
//! structural pass: every distinct sub-expression becomes one
//! [`PlanOp`] node whose children are node *ids*, so interning a node
//! hashes O(1) words and common sub-expressions — inside one query or
//! across a whole batch — collapse to a single node evaluated once.
//!
//! Nodes are appended children-first, so a plan's node order is already a
//! topological order: the sequential executor just walks ids ascending,
//! and the parallel executor (see [`crate::exec`]) schedules nodes as
//! their children complete.

use crate::expr::{BinOp, Expr};
use crate::schema::NameId;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Index of a node inside a [`Plan`].
pub type NodeId = usize;

/// One operator of a lowered plan. Children are [`NodeId`]s into the same
/// plan, always smaller than the node's own id.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PlanOp {
    /// A region name `R_i` — a leaf, read from the instance.
    Name(NameId),
    /// A selection `σ_p(child)`.
    Select(String, NodeId),
    /// A binary operator application.
    Bin(BinOp, NodeId, NodeId),
}

impl PlanOp {
    /// The node's children (0, 1, or 2 ids).
    pub fn children(&self) -> impl Iterator<Item = NodeId> + '_ {
        let pair = match *self {
            PlanOp::Name(_) => [None, None],
            PlanOp::Select(_, c) => [Some(c), None],
            PlanOp::Bin(_, l, r) => [Some(l), Some(r)],
        };
        pair.into_iter().flatten()
    }
}

/// A hash-consed DAG of [`PlanOp`] nodes, with per-node structural
/// fingerprints (used by the engine's result cache).
#[derive(Default, Debug)]
pub struct Plan {
    ops: Vec<PlanOp>,
    fingerprints: Vec<u64>,
    intern: HashMap<PlanOp, NodeId>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Plan {
        Plan::default()
    }

    /// Number of distinct nodes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no expression has been lowered yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operator of node `id`.
    pub fn op(&self, id: NodeId) -> &PlanOp {
        &self.ops[id]
    }

    /// All nodes in topological (children-first) order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// The structural fingerprint of node `id`: equal sub-expressions get
    /// equal fingerprints regardless of which plan or batch they were
    /// lowered into. (Fingerprints are 64-bit hashes — callers that key
    /// long-lived caches on them should verify with the expression itself,
    /// as [`expr_fingerprint`] makes cross-plan equality checks cheap.)
    pub fn fingerprint(&self, id: NodeId) -> u64 {
        self.fingerprints[id]
    }

    /// Lowers `e`, returning the root's node id. Shared sub-expressions —
    /// within `e` or with anything lowered into this plan earlier — are
    /// reused, not re-added.
    pub fn lower(&mut self, e: &Expr) -> NodeId {
        match e {
            Expr::Name(id) => self.intern_op(PlanOp::Name(*id)),
            Expr::Select(p, inner) => {
                let c = self.lower(inner);
                self.intern_op(PlanOp::Select(p.clone(), c))
            }
            Expr::Bin(op, l, r) => {
                let lc = self.lower(l);
                let rc = self.lower(r);
                self.intern_op(PlanOp::Bin(*op, lc, rc))
            }
        }
    }

    /// Lowers a batch of expressions into one shared plan, returning the
    /// root id of each. Sub-expressions shared *across* queries are
    /// deduplicated exactly like sub-expressions within one query.
    pub fn lower_batch<'e>(&mut self, exprs: impl IntoIterator<Item = &'e Expr>) -> Vec<NodeId> {
        exprs.into_iter().map(|e| self.lower(e)).collect()
    }

    /// Interns `op`, appending a node only if it is new. Counts dedup
    /// effectiveness in `plan.intern_hits` / `plan.nodes_interned`.
    fn intern_op(&mut self, op: PlanOp) -> NodeId {
        use std::sync::{Arc, OnceLock};
        static HITS: OnceLock<Arc<tr_obs::Counter>> = OnceLock::new();
        static INTERNED: OnceLock<Arc<tr_obs::Counter>> = OnceLock::new();
        if let Some(&id) = self.intern.get(&op) {
            HITS.get_or_init(|| tr_obs::counter("plan.intern_hits"))
                .inc();
            return id;
        }
        INTERNED
            .get_or_init(|| tr_obs::counter("plan.nodes_interned"))
            .inc();
        let id = self.ops.len();
        let fp = self.fingerprint_op(&op);
        self.ops.push(op.clone());
        self.fingerprints.push(fp);
        self.intern.insert(op, id);
        id
    }

    /// Structural fingerprint of `op` given its children's fingerprints.
    fn fingerprint_op(&self, op: &PlanOp) -> u64 {
        let mut h = DefaultHasher::new();
        match op {
            PlanOp::Name(id) => {
                0u8.hash(&mut h);
                id.hash(&mut h);
            }
            PlanOp::Select(p, c) => {
                1u8.hash(&mut h);
                p.hash(&mut h);
                self.fingerprints[*c].hash(&mut h);
            }
            PlanOp::Bin(b, l, r) => {
                2u8.hash(&mut h);
                b.hash(&mut h);
                self.fingerprints[*l].hash(&mut h);
                self.fingerprints[*r].hash(&mut h);
            }
        }
        h.finish()
    }

    /// For every node, the ids of the nodes that consume it (with
    /// multiplicity — `e op e` lists the parent twice under `e`). Used by
    /// the wave scheduler to propagate readiness.
    pub fn parents(&self) -> Vec<Vec<NodeId>> {
        let mut parents = vec![Vec::new(); self.ops.len()];
        for (id, op) in self.ops.iter().enumerate() {
            for c in op.children() {
                parents[c].push(id);
            }
        }
        parents
    }
}

/// The structural fingerprint of an expression without building a plan —
/// identical to the fingerprint its lowered node would get. The engine's
/// result cache uses this to probe for hits before lowering anything.
pub fn expr_fingerprint(e: &Expr) -> u64 {
    fn go(e: &Expr, memo: &mut HashMap<*const Expr, u64>) -> u64 {
        // Memoized on node address only as a within-call optimization;
        // correctness comes from the structural hash below.
        if let Some(&fp) = memo.get(&(e as *const Expr)) {
            return fp;
        }
        let mut h = DefaultHasher::new();
        let fp = match e {
            Expr::Name(id) => {
                0u8.hash(&mut h);
                id.hash(&mut h);
                h.finish()
            }
            Expr::Select(p, inner) => {
                let c = go(inner, memo);
                1u8.hash(&mut h);
                p.hash(&mut h);
                c.hash(&mut h);
                h.finish()
            }
            Expr::Bin(op, l, r) => {
                let lc = go(l, memo);
                let rc = go(r, memo);
                2u8.hash(&mut h);
                op.hash(&mut h);
                lc.hash(&mut h);
                rc.hash(&mut h);
                h.finish()
            }
        };
        memo.insert(e as *const Expr, fp);
        fp
    }
    go(e, &mut HashMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> (Expr, Expr) {
        (
            Expr::name(NameId::from_index(0)),
            Expr::name(NameId::from_index(1)),
        )
    }

    #[test]
    fn lowering_is_topological_and_deduplicated() {
        let (a, b) = names();
        // shared = A ⊂ B appears three times but must be one node.
        let shared = a.clone().included_in(b.clone());
        let e = shared
            .clone()
            .union(shared.clone().intersect(shared.clone()));
        let mut plan = Plan::new();
        let root = plan.lower(&e);
        // Distinct sub-expressions: A, B, A⊂B, (A⊂B)∩(A⊂B), root.
        assert_eq!(plan.len(), 5);
        assert_eq!(root, plan.len() - 1);
        for (id, op) in plan.ops().iter().enumerate() {
            for c in op.children() {
                assert!(c < id, "children precede parents");
            }
        }
        // The tree has 5 binary ops; the DAG collapses them to 3 (plus 2 leaves).
        assert_eq!(e.num_ops(), 5);
    }

    #[test]
    fn batch_lowering_shares_across_queries() {
        let (a, b) = names();
        let q1 = a.clone().included_in(b.clone());
        let q2 = a.clone().included_in(b.clone()).select("x");
        let q3 = b.clone().union(a.clone().included_in(b.clone()));
        let mut plan = Plan::new();
        let roots = plan.lower_batch([&q1, &q2, &q3]);
        assert_eq!(roots.len(), 3);
        // Nodes: A, B, A⊂B, σx(A⊂B), B∪(A⊂B) — the shared chain counted once.
        assert_eq!(plan.len(), 5);
        assert_eq!(roots[0], 2);
        // Lowering the same query again returns the same root.
        assert_eq!(plan.lower(&q1), roots[0]);
        assert_eq!(plan.len(), 5);
    }

    #[test]
    fn fingerprints_are_structural() {
        let (a, b) = names();
        let q = a.clone().included_in(b.clone());
        let mut p1 = Plan::new();
        let r1 = p1.lower(&q);
        let mut p2 = Plan::new();
        p2.lower(&b.clone().union(a.clone())); // unrelated prefix
        let r2 = p2.lower(&q);
        assert_eq!(
            p1.fingerprint(r1),
            p2.fingerprint(r2),
            "same expr, same fingerprint"
        );
        assert_eq!(expr_fingerprint(&q), p1.fingerprint(r1), "expr path agrees");
        assert_ne!(
            expr_fingerprint(&a.clone().included_in(b.clone()).select("x")),
            expr_fingerprint(&a.clone().included_in(b.clone()).select("y")),
            "patterns distinguish selections"
        );
        assert_ne!(
            expr_fingerprint(&a.clone().before(b.clone())),
            expr_fingerprint(&b.before(a)),
            "operand order matters"
        );
    }

    #[test]
    fn parents_with_multiplicity() {
        let (a, _) = names();
        let e = a.clone().union(a.clone()); // A ∪ A: parent listed twice under A
        let mut plan = Plan::new();
        let root = plan.lower(&e);
        let parents = plan.parents();
        assert_eq!(parents[0], vec![root, root]);
        assert!(parents[root].is_empty());
    }
}
