//! The [`Region`] type: a substring of the indexed text identified by its
//! two endpoint positions, plus the structural predicates of the paper
//! (strict inclusion and precedence, Section 2.1).

use std::fmt;

/// A position in the indexed text (byte or token offset — the algebra never
/// interprets positions beyond comparing them).
pub type Pos = u32;

/// A text region `[left, right]` with inclusive endpoints, `left <= right`.
///
/// Following Definition 2.2/2.3 of the paper, a region is defined by a pair
/// of positions corresponding to its beginning and end. All structural
/// operators compare endpoints only; the region does not carry its text.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    left: Pos,
    right: Pos,
}

impl Region {
    /// Creates a region. Panics if `left > right`.
    #[inline]
    pub fn new(left: Pos, right: Pos) -> Region {
        assert!(left <= right, "invalid region: left {left} > right {right}");
        Region { left, right }
    }

    /// Creates a region without checking `left <= right`.
    ///
    /// Callers must uphold the invariant; violated invariants produce
    /// nonsensical (but memory-safe) operator results.
    #[inline]
    pub fn new_unchecked(left: Pos, right: Pos) -> Region {
        debug_assert!(left <= right);
        Region { left, right }
    }

    /// Left (start) endpoint.
    #[inline]
    pub fn left(self) -> Pos {
        self.left
    }

    /// Right (end) endpoint (inclusive).
    #[inline]
    pub fn right(self) -> Pos {
        self.right
    }

    /// Number of positions covered by the region.
    #[inline]
    pub fn len(self) -> u64 {
        u64::from(self.right) - u64::from(self.left) + 1
    }

    /// Regions are never empty: they cover at least one position.
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Strict inclusion `self ⊃ other` exactly as defined in Section 2.1:
    /// `(left(r) < left(s) ∧ right(r) ≥ right(s)) ∨ (left(r) ≤ left(s) ∧
    /// right(r) > right(s))`. Equivalently: `self` covers `other` and the
    /// two regions are not identical.
    #[inline]
    pub fn includes(self, other: Region) -> bool {
        (self.left < other.left && self.right >= other.right)
            || (self.left <= other.left && self.right > other.right)
    }

    /// Strict inclusion in the other direction: `self ⊂ other`.
    #[inline]
    pub fn included_in(self, other: Region) -> bool {
        other.includes(self)
    }

    /// Precedence `self < other`: `right(self) < left(other)` (Section 2.1).
    #[inline]
    pub fn precedes(self, other: Region) -> bool {
        self.right < other.left
    }

    /// Follows `self > other`: `right(other) < left(self)`.
    #[inline]
    pub fn follows(self, other: Region) -> bool {
        other.precedes(self)
    }

    /// True if the regions share at least one position.
    #[inline]
    pub fn overlaps(self, other: Region) -> bool {
        self.left <= other.right && other.left <= self.right
    }

    /// True if the regions share no position.
    #[inline]
    pub fn disjoint(self, other: Region) -> bool {
        !self.overlaps(other)
    }

    /// True if the pair is *hierarchical*: disjoint, equal, or one strictly
    /// includes the other. Partial overlap is the only non-hierarchical
    /// configuration.
    #[inline]
    pub fn hierarchical_with(self, other: Region) -> bool {
        self.disjoint(other) || self == other || self.includes(other) || other.includes(self)
    }

    /// True if `pos` falls inside the region.
    #[inline]
    pub fn contains_pos(self, pos: Pos) -> bool {
        self.left <= pos && pos <= self.right
    }
}

/// Regions are ordered by `(left ascending, right descending)`.
///
/// Under this order a region precedes everything it strictly includes, which
/// makes a single sorted scan visit parents before children — the property
/// every sweep in [`crate::ops`] and [`crate::instance`] relies on.
impl Ord for Region {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.left
            .cmp(&other.left)
            .then_with(|| other.right.cmp(&self.right))
    }
}

impl PartialOrd for Region {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}]", self.left, self.right)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}]", self.left, self.right)
    }
}

/// Convenience constructor used pervasively in tests and examples.
#[inline]
pub fn region(left: Pos, right: Pos) -> Region {
    Region::new(left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusion_is_strict() {
        let r = region(0, 10);
        assert!(r.includes(region(1, 9)));
        assert!(r.includes(region(0, 9)));
        assert!(r.includes(region(1, 10)));
        assert!(
            !r.includes(region(0, 10)),
            "a region does not include itself"
        );
        assert!(!r.includes(region(0, 11)));
        assert!(!r.includes(region(5, 11)));
        assert!(region(1, 9).included_in(r));
        assert!(!r.included_in(r));
    }

    #[test]
    fn precedence_requires_gap_free_order() {
        assert!(region(0, 3).precedes(region(4, 9)));
        assert!(
            !region(0, 4).precedes(region(4, 9)),
            "touching endpoints do not precede"
        );
        assert!(region(4, 9).follows(region(0, 3)));
        assert!(!region(0, 3).follows(region(4, 9)));
    }

    #[test]
    fn overlap_and_disjoint() {
        assert!(region(0, 5).overlaps(region(5, 9)));
        assert!(region(0, 5).disjoint(region(6, 9)));
        assert!(region(0, 9).overlaps(region(3, 4)));
    }

    #[test]
    fn hierarchical_pairs() {
        assert!(region(0, 9).hierarchical_with(region(2, 5)));
        assert!(region(0, 3).hierarchical_with(region(4, 9)));
        assert!(region(0, 5).hierarchical_with(region(0, 5)));
        assert!(
            !region(0, 5).hierarchical_with(region(3, 9)),
            "partial overlap"
        );
    }

    #[test]
    fn ordering_puts_parents_first() {
        let mut v = vec![region(2, 3), region(0, 9), region(0, 4), region(2, 8)];
        v.sort();
        assert_eq!(
            v,
            vec![region(0, 9), region(0, 4), region(2, 8), region(2, 3)]
        );
    }

    #[test]
    #[should_panic(expected = "invalid region")]
    fn rejects_inverted_endpoints() {
        let _ = Region::new(5, 4);
    }

    #[test]
    fn len_and_pos() {
        assert_eq!(region(3, 3).len(), 1);
        assert_eq!(region(0, 9).len(), 10);
        assert!(region(2, 4).contains_pos(2));
        assert!(region(2, 4).contains_pos(4));
        assert!(!region(2, 4).contains_pos(5));
    }
}
