//! Quadratic reference implementations of the structural operators.
//!
//! These transcribe Definition 2.3 literally (`R ⊃ S = {r ∈ R : ∃ s ∈ S,
//! r ⊃ s}` etc.) and are used as the oracle for property tests and as the
//! baseline in experiment E2. They must stay as close to the paper's
//! set-builder notation as possible — do not optimize them.

use crate::set::RegionSet;

/// `R ⊃ S`, by exhaustive pairwise check.
pub fn includes(r: &RegionSet, s: &RegionSet) -> RegionSet {
    r.filter(|x| s.iter().any(|y| x.includes(y)))
}

/// `R ⊂ S`, by exhaustive pairwise check.
pub fn included_in(r: &RegionSet, s: &RegionSet) -> RegionSet {
    r.filter(|x| s.iter().any(|y| x.included_in(y)))
}

/// `R < S`, by exhaustive pairwise check.
pub fn precedes(r: &RegionSet, s: &RegionSet) -> RegionSet {
    r.filter(|x| s.iter().any(|y| x.precedes(y)))
}

/// `R > S`, by exhaustive pairwise check.
pub fn follows(r: &RegionSet, s: &RegionSet) -> RegionSet {
    r.filter(|x| s.iter().any(|y| x.follows(y)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::region;

    #[test]
    fn naive_matches_definitions() {
        let r: RegionSet = [region(0, 9), region(2, 3), region(12, 14)]
            .into_iter()
            .collect();
        let s: RegionSet = [region(4, 5), region(10, 11)].into_iter().collect();
        assert_eq!(includes(&r, &s).to_vec(), &[region(0, 9)]);
        assert_eq!(included_in(&s, &r).to_vec(), &[region(4, 5)]);
        assert_eq!(precedes(&r, &s).to_vec(), &[region(0, 9), region(2, 3)]);
        assert_eq!(follows(&r, &s).to_vec(), &[region(12, 14)]);
    }
}
