//! # tr-core — the region algebra
//!
//! Core of the workspace reproducing *“Algebras for Querying Text Regions”*
//! (Consens & Milo, PODS 1995): text [`Region`]s, sorted [`RegionSet`]s, the
//! seven-operator region algebra (Definition 2.2/2.3), hierarchical
//! [`Instance`]s of a region index (Definition 2.1), and an evaluator.
//!
//! ```
//! use tr_core::{Expr, InstanceBuilder, Schema, eval, region};
//!
//! let schema = Schema::new(["Doc", "Sec"]);
//! let inst = InstanceBuilder::new(schema.clone())
//!     .add("Doc", region(0, 99))
//!     .add("Sec", region(10, 40))
//!     .occurrence("text", 12, 4)
//!     .build_valid();
//! // Sections mentioning "text": σ_text(Sec ⊂ Doc)
//! let q = Expr::name(schema.expect_id("Sec"))
//!     .included_in(Expr::name(schema.expect_id("Doc")))
//!     .select("text");
//! assert_eq!(eval(&q, &inst).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod eval;
pub mod exec;
pub mod expr;
pub mod instance;
pub mod kernel;
pub mod mutate;
pub mod naive;
pub mod ops;
pub mod par;
pub mod partition;
pub mod plan;
pub mod region;
pub mod rules;
pub mod schema;
pub mod seg;
pub mod set;
pub mod word;

pub use cost::{
    choose_fanout, choose_segmentation, estimate, fanout_pays, optimize, AppliedRewrite, CostModel,
    PlanEstimate, PlannerMode, Stats,
};
pub use eval::{
    eval, eval_memo, eval_naive, eval_parallel, eval_parallel_with, eval_with, OpTable, FAST, NAIVE,
};
pub use exec::{execute, execute_segmented, execute_with_choices, ExecConfig, ExecStats, Executed};
pub use expr::{BinOp, Expr};
pub use instance::{Forest, Instance, InstanceBuilder, InstanceError};
pub use mutate::{splice_instance, splice_region, splice_set, Edit};
pub use par::Parallelism;
pub use partition::{
    execute_range, partner_rule, partner_window, LocalPartition, PartitionError, PartitionExec,
    PartitionPlanner, PartitionQuery, PartitionSet, PartnerRule, Window,
};
pub use plan::{expr_fingerprint, NodeId, Plan, PlanOp};
pub use region::{region, Pos, Region};
pub use schema::{NameId, Schema};
pub use seg::Corpus;
pub use set::{ColumnSource, RegionSet};
pub use word::{EmptyWordIndex, ExplicitWordIndex, MatchPointIndex, WordIndex};
