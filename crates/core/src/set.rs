//! [`RegionSet`]: the set-at-a-time value manipulated by the algebra.
//!
//! A `RegionSet` is a duplicate-free `Vec<Region>` kept sorted by
//! `(left asc, right desc)`. All algebra operators consume and produce
//! `RegionSet`s; keeping them sorted lets every operator run as a linear
//! merge or a sweep with O(1)/O(log n) per-element probes (see
//! [`crate::ops`]).
//!
//! The minimum right endpoint is cached at construction and maintained
//! through `insert`/`remove`, so the `follows` operator's probe is O(1)
//! instead of a full scan. The set operators also come in `_par` variants
//! that split large merges across scoped threads (see [`crate::par`]).

use crate::par::{self, Parallelism};
use crate::region::{Pos, Region};
use std::fmt;

/// A sorted, duplicate-free set of [`Region`]s.
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct RegionSet {
    regions: Vec<Region>,
    /// Cached minimum right endpoint (`None` iff the set is empty).
    min_right: Option<Pos>,
}

/// The cached minimum right endpoint of a sorted region slice.
fn min_right_of(regions: &[Region]) -> Option<Pos> {
    regions.iter().map(|r| r.right()).min()
}

impl RegionSet {
    /// The empty set.
    #[inline]
    pub fn new() -> RegionSet {
        RegionSet {
            regions: Vec::new(),
            min_right: None,
        }
    }

    /// The empty set, with room for `cap` regions.
    #[inline]
    pub fn with_capacity(cap: usize) -> RegionSet {
        RegionSet {
            regions: Vec::with_capacity(cap),
            min_right: None,
        }
    }

    /// Wraps a vector that already satisfies the order invariant,
    /// computing the cached extremum.
    fn from_invariant_vec(regions: Vec<Region>) -> RegionSet {
        let min_right = min_right_of(&regions);
        RegionSet { regions, min_right }
    }

    /// Builds a set from arbitrary regions, sorting and deduplicating.
    pub fn from_regions(mut regions: Vec<Region>) -> RegionSet {
        regions.sort_unstable();
        regions.dedup();
        RegionSet::from_invariant_vec(regions)
    }

    /// Builds a set from a vector the caller promises is already sorted by
    /// `(left asc, right desc)` and duplicate-free. Checked in debug builds.
    pub fn from_sorted(regions: Vec<Region>) -> RegionSet {
        debug_assert!(
            regions.windows(2).all(|w| w[0] < w[1]),
            "regions not sorted/deduped"
        );
        RegionSet::from_invariant_vec(regions)
    }

    /// Singleton set.
    pub fn singleton(r: Region) -> RegionSet {
        RegionSet {
            regions: vec![r],
            min_right: Some(r.right()),
        }
    }

    /// Number of regions in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if the set has no regions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The regions, sorted by `(left asc, right desc)`.
    #[inline]
    pub fn as_slice(&self) -> &[Region] {
        &self.regions
    }

    /// Iterates the regions in sorted order.
    #[inline]
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Region>> {
        self.regions.iter().copied()
    }

    /// Membership test (binary search).
    pub fn contains(&self, r: Region) -> bool {
        self.regions.binary_search(&r).is_ok()
    }

    /// Inserts a region, keeping the order invariant. O(n) worst case;
    /// intended for incremental construction in tests and generators.
    pub fn insert(&mut self, r: Region) -> bool {
        match self.regions.binary_search(&r) {
            Ok(_) => false,
            Err(i) => {
                self.regions.insert(i, r);
                self.min_right = Some(match self.min_right {
                    Some(m) => m.min(r.right()),
                    None => r.right(),
                });
                true
            }
        }
    }

    /// Removes a region if present.
    pub fn remove(&mut self, r: Region) -> bool {
        match self.regions.binary_search(&r) {
            Ok(i) => {
                self.regions.remove(i);
                if self.min_right == Some(r.right()) {
                    // The removed region may have carried the extremum.
                    self.min_right = min_right_of(&self.regions);
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Set union (linear merge).
    pub fn union(&self, other: &RegionSet) -> RegionSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        merge_union(&self.regions, &other.regions, &mut out);
        RegionSet::from_invariant_vec(out)
    }

    /// Set intersection (linear merge).
    pub fn intersect(&self, other: &RegionSet) -> RegionSet {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        merge_intersect(&self.regions, &other.regions, &mut out);
        RegionSet::from_invariant_vec(out)
    }

    /// Set difference `self − other` (linear merge).
    pub fn difference(&self, other: &RegionSet) -> RegionSet {
        let mut out = Vec::with_capacity(self.len());
        merge_difference(&self.regions, &other.regions, &mut out);
        RegionSet::from_invariant_vec(out)
    }

    /// [`RegionSet::union`] with the merge split across threads for large
    /// inputs (identical results).
    pub fn union_par(&self, other: &RegionSet, par: &Parallelism) -> RegionSet {
        self.merge_par(other, par, merge_union)
    }

    /// [`RegionSet::intersect`] with the merge split across threads for
    /// large inputs (identical results).
    pub fn intersect_par(&self, other: &RegionSet, par: &Parallelism) -> RegionSet {
        self.merge_par(other, par, merge_intersect)
    }

    /// [`RegionSet::difference`] with the merge split across threads for
    /// large inputs (identical results).
    pub fn difference_par(&self, other: &RegionSet, par: &Parallelism) -> RegionSet {
        self.merge_par(other, par, merge_difference)
    }

    /// Runs a two-pointer merge kernel over aligned chunks of both sets.
    ///
    /// Both inputs are partitioned at the same pivot *values* (drawn
    /// evenly from `self`), so each chunk pair covers one key interval and
    /// the concatenated chunk outputs equal the sequential merge.
    fn merge_par(
        &self,
        other: &RegionSet,
        par: &Parallelism,
        kernel: fn(&[Region], &[Region], &mut Vec<Region>),
    ) -> RegionSet {
        let (a, b) = (&self.regions[..], &other.regions[..]);
        let chunks = par.chunks_for(a.len() + b.len());
        if chunks <= 1 {
            let mut out = Vec::with_capacity(a.len() + b.len());
            kernel(a, b, &mut out);
            return RegionSet::from_invariant_vec(out);
        }
        // Pivot values come from the longer input (guaranteed non-empty
        // here); both sides are partitioned at the same values, so the
        // chunk pairs cover aligned key intervals.
        let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(chunks + 1);
        bounds.push((0, 0));
        for i in 1..chunks {
            let (ai, bi) = if a.len() >= b.len() {
                let ai = i * a.len() / chunks;
                (ai, b.partition_point(|x| *x < a[ai]))
            } else {
                let bi = i * b.len() / chunks;
                (a.partition_point(|x| *x < b[bi]), bi)
            };
            bounds.push((ai, bi));
        }
        bounds.push((a.len(), b.len()));
        let pieces = par::map_chunks(chunks, chunks, |r| {
            let mut out = Vec::new();
            for i in r {
                let (alo, blo) = bounds[i];
                let (ahi, bhi) = bounds[i + 1];
                kernel(&a[alo..ahi], &b[blo..bhi], &mut out);
            }
            out
        });
        let mut out = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
        for piece in pieces {
            out.extend_from_slice(&piece);
        }
        RegionSet::from_invariant_vec(out)
    }

    /// True if `self` and `other` contain exactly the same regions.
    pub fn set_eq(&self, other: &RegionSet) -> bool {
        self.regions == other.regions
    }

    /// True if every region of `self` is in `other` (linear merge over
    /// both sorted sets).
    pub fn is_subset(&self, other: &RegionSet) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let (a, b) = (&self.regions, &other.regions);
        let mut j = 0;
        for r in a {
            while j < b.len() && b[j] < *r {
                j += 1;
            }
            if j == b.len() || b[j] != *r {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Keeps only the regions satisfying `pred`.
    pub fn retain(&mut self, mut pred: impl FnMut(Region) -> bool) {
        self.regions.retain(|r| pred(*r));
        self.min_right = min_right_of(&self.regions);
    }

    /// Returns the set of regions satisfying `pred`.
    pub fn filter(&self, mut pred: impl FnMut(Region) -> bool) -> RegionSet {
        RegionSet::from_invariant_vec(self.iter().filter(|r| pred(*r)).collect())
    }

    /// [`RegionSet::filter`] with the scan split across threads for large
    /// inputs. The predicate must be pure — chunk boundaries are not
    /// observable in the result.
    pub fn filter_par(&self, par: &Parallelism, pred: impl Fn(Region) -> bool + Sync) -> RegionSet {
        let chunks = par.chunks_for(self.len());
        if chunks <= 1 {
            return self.filter(pred);
        }
        let slice = &self.regions;
        let pieces = par::map_chunks(slice.len(), chunks, |r| {
            slice[r]
                .iter()
                .copied()
                .filter(|x| pred(*x))
                .collect::<Vec<Region>>()
        });
        let mut out = Vec::with_capacity(pieces.iter().map(Vec::len).sum());
        for piece in pieces {
            out.extend_from_slice(&piece);
        }
        RegionSet::from_invariant_vec(out)
    }

    /// Largest left endpoint, if any. Used by the `precedes` operator.
    pub fn max_left(&self) -> Option<Pos> {
        // Sorted by left ascending, so the maximum left is at the back.
        self.regions.last().map(|r| r.left())
    }

    /// Smallest right endpoint, if any. Used by the `follows` operator.
    /// O(1): cached at construction and maintained by `insert`/`remove`.
    #[inline]
    pub fn min_right(&self) -> Option<Pos> {
        self.min_right
    }

    /// Index of the first region with `left >= pos` (lower bound on left).
    pub fn lower_bound_left(&self, pos: Pos) -> usize {
        self.regions.partition_point(|r| r.left() < pos)
    }

    /// Index one past the last region with `left <= pos` (upper bound).
    pub fn upper_bound_left(&self, pos: Pos) -> usize {
        self.regions.partition_point(|r| r.left() <= pos)
    }
}

/// Two-pointer union of sorted slices, appended to `out`.
fn merge_union(a: &[Region], b: &[Region], out: &mut Vec<Region>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Two-pointer intersection of sorted slices, appended to `out`.
fn merge_intersect(a: &[Region], b: &[Region], out: &mut Vec<Region>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Two-pointer difference `a − b` of sorted slices, appended to `out`.
fn merge_difference(a: &[Region], b: &[Region], out: &mut Vec<Region>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
}

impl FromIterator<Region> for RegionSet {
    fn from_iter<T: IntoIterator<Item = Region>>(iter: T) -> RegionSet {
        RegionSet::from_regions(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a RegionSet {
    type Item = Region;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Region>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for RegionSet {
    type Item = Region;
    type IntoIter = std::vec::IntoIter<Region>;
    fn into_iter(self) -> Self::IntoIter {
        self.regions.into_iter()
    }
}

impl fmt::Debug for RegionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.regions.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::region;

    fn set(rs: &[(Pos, Pos)]) -> RegionSet {
        rs.iter().map(|&(l, r)| region(l, r)).collect()
    }

    #[test]
    fn from_regions_sorts_and_dedups() {
        let s = RegionSet::from_regions(vec![region(5, 6), region(0, 9), region(5, 6)]);
        assert_eq!(s.as_slice(), &[region(0, 9), region(5, 6)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_intersect_difference() {
        let a = set(&[(0, 9), (2, 3), (5, 6)]);
        let b = set(&[(2, 3), (7, 8)]);
        assert_eq!(a.union(&b), set(&[(0, 9), (2, 3), (5, 6), (7, 8)]));
        assert_eq!(a.intersect(&b), set(&[(2, 3)]));
        assert_eq!(a.difference(&b), set(&[(0, 9), (5, 6)]));
        assert_eq!(b.difference(&a), set(&[(7, 8)]));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = set(&[(1, 2), (4, 8)]);
        assert_eq!(a.union(&RegionSet::new()), a);
        assert_eq!(RegionSet::new().union(&a), a);
        assert!(a.intersect(&RegionSet::new()).is_empty());
        assert_eq!(a.difference(&RegionSet::new()), a);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = RegionSet::new();
        assert!(s.insert(region(3, 7)));
        assert!(!s.insert(region(3, 7)), "duplicate insert is a no-op");
        assert!(s.insert(region(0, 9)));
        assert_eq!(s.as_slice(), &[region(0, 9), region(3, 7)]);
        assert!(s.contains(region(3, 7)));
        assert!(s.remove(region(3, 7)));
        assert!(!s.remove(region(3, 7)));
        assert!(!s.contains(region(3, 7)));
    }

    #[test]
    fn extrema() {
        let s = set(&[(0, 9), (2, 3), (5, 12)]);
        assert_eq!(s.max_left(), Some(5));
        assert_eq!(s.min_right(), Some(3));
        assert_eq!(RegionSet::new().max_left(), None);
        assert_eq!(RegionSet::new().min_right(), None);
    }

    #[test]
    fn min_right_maintained_through_mutation() {
        let mut s = RegionSet::new();
        assert_eq!(s.min_right(), None);
        s.insert(region(0, 9));
        assert_eq!(s.min_right(), Some(9));
        s.insert(region(2, 3));
        assert_eq!(s.min_right(), Some(3));
        s.insert(region(5, 12));
        assert_eq!(s.min_right(), Some(3));
        // Removing the extremum recomputes it; removing others keeps it.
        s.remove(region(2, 3));
        assert_eq!(s.min_right(), Some(9));
        s.remove(region(5, 12));
        assert_eq!(s.min_right(), Some(9));
        s.remove(region(0, 9));
        assert_eq!(s.min_right(), None);
        // Every derived-set path recomputes the cache.
        let t = set(&[(0, 9), (2, 3), (5, 12)]);
        assert_eq!(t.filter(|r| r.right() != 3).min_right(), Some(9));
        assert_eq!(t.difference(&set(&[(2, 3)])).min_right(), Some(9));
        let mut u = t.clone();
        u.retain(|r| r.left() >= 2);
        assert_eq!(u.min_right(), Some(3));
    }

    #[test]
    fn subset() {
        let a = set(&[(0, 9), (2, 3)]);
        let b = set(&[(0, 9), (2, 3), (5, 6)]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(RegionSet::new().is_subset(&a));
        // Same lengths, different elements.
        assert!(!set(&[(0, 9), (4, 5)]).is_subset(&set(&[(0, 9), (5, 6)])));
        // Merge must not be confused by interleaving.
        assert!(set(&[(2, 3), (7, 8)]).is_subset(&set(&[(0, 9), (2, 3), (5, 6), (7, 8)])));
    }

    #[test]
    fn bounds() {
        let s = set(&[(0, 9), (2, 8), (2, 3), (5, 6)]);
        assert_eq!(s.lower_bound_left(2), 1);
        assert_eq!(s.upper_bound_left(2), 3);
        assert_eq!(s.lower_bound_left(10), 4);
        assert_eq!(s.upper_bound_left(0), 1);
    }

    #[test]
    fn parallel_merges_match_sequential() {
        // Deterministic pseudo-random workloads large enough to split.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let par = Parallelism {
            threads: 4,
            cutoff: 64,
        };
        for _ in 0..8 {
            let mk = |next: &mut dyn FnMut() -> u64, n: usize| {
                RegionSet::from_regions(
                    (0..n)
                        .map(|_| {
                            let l = (next() % 5_000) as Pos;
                            region(l, l + (next() % 40) as Pos)
                        })
                        .collect(),
                )
            };
            let a = mk(&mut next, 700);
            let b = mk(&mut next, 900);
            assert_eq!(a.union_par(&b, &par), a.union(&b));
            assert_eq!(a.intersect_par(&b, &par), a.intersect(&b));
            assert_eq!(a.difference_par(&b, &par), a.difference(&b));
            assert_eq!(b.difference_par(&a, &par), b.difference(&a));
            assert_eq!(
                a.filter_par(&par, |r| r.left() % 3 == 0),
                a.filter(|r| r.left() % 3 == 0)
            );
        }
        // Degenerate shapes: empty sides and all-equal sets.
        let empty = RegionSet::new();
        let a = set(&[(0, 9), (2, 3)]);
        assert_eq!(a.union_par(&empty, &par), a);
        assert_eq!(empty.union_par(&a, &par), a);
        assert_eq!(a.intersect_par(&a, &par), a);
        assert_eq!(a.difference_par(&a, &par), empty);
    }
}
