//! [`RegionSet`]: the set-at-a-time value manipulated by the algebra.
//!
//! A `RegionSet` is a duplicate-free `Vec<Region>` kept sorted by
//! `(left asc, right desc)`. All algebra operators consume and produce
//! `RegionSet`s; keeping them sorted lets every operator run as a linear
//! merge or a sweep with O(1)/O(log n) per-element probes (see
//! [`crate::ops`]).

use crate::region::{Pos, Region};
use std::fmt;

/// A sorted, duplicate-free set of [`Region`]s.
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct RegionSet {
    regions: Vec<Region>,
}

impl RegionSet {
    /// The empty set.
    #[inline]
    pub fn new() -> RegionSet {
        RegionSet { regions: Vec::new() }
    }

    /// The empty set, with room for `cap` regions.
    #[inline]
    pub fn with_capacity(cap: usize) -> RegionSet {
        RegionSet { regions: Vec::with_capacity(cap) }
    }

    /// Builds a set from arbitrary regions, sorting and deduplicating.
    pub fn from_regions(mut regions: Vec<Region>) -> RegionSet {
        regions.sort_unstable();
        regions.dedup();
        RegionSet { regions }
    }

    /// Builds a set from a vector the caller promises is already sorted by
    /// `(left asc, right desc)` and duplicate-free. Checked in debug builds.
    pub fn from_sorted(regions: Vec<Region>) -> RegionSet {
        debug_assert!(regions.windows(2).all(|w| w[0] < w[1]), "regions not sorted/deduped");
        RegionSet { regions }
    }

    /// Singleton set.
    pub fn singleton(r: Region) -> RegionSet {
        RegionSet { regions: vec![r] }
    }

    /// Number of regions in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if the set has no regions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The regions, sorted by `(left asc, right desc)`.
    #[inline]
    pub fn as_slice(&self) -> &[Region] {
        &self.regions
    }

    /// Iterates the regions in sorted order.
    #[inline]
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Region>> {
        self.regions.iter().copied()
    }

    /// Membership test (binary search).
    pub fn contains(&self, r: Region) -> bool {
        self.regions.binary_search(&r).is_ok()
    }

    /// Inserts a region, keeping the order invariant. O(n) worst case;
    /// intended for incremental construction in tests and generators.
    pub fn insert(&mut self, r: Region) -> bool {
        match self.regions.binary_search(&r) {
            Ok(_) => false,
            Err(i) => {
                self.regions.insert(i, r);
                true
            }
        }
    }

    /// Removes a region if present.
    pub fn remove(&mut self, r: Region) -> bool {
        match self.regions.binary_search(&r) {
            Ok(i) => {
                self.regions.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Set union (linear merge).
    pub fn union(&self, other: &RegionSet) -> RegionSet {
        let (a, b) = (&self.regions, &other.regions);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        RegionSet { regions: out }
    }

    /// Set intersection (linear merge).
    pub fn intersect(&self, other: &RegionSet) -> RegionSet {
        let (a, b) = (&self.regions, &other.regions);
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        RegionSet { regions: out }
    }

    /// Set difference `self − other` (linear merge).
    pub fn difference(&self, other: &RegionSet) -> RegionSet {
        let (a, b) = (&self.regions, &other.regions);
        let mut out = Vec::with_capacity(a.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        RegionSet { regions: out }
    }

    /// True if `self` and `other` contain exactly the same regions.
    pub fn set_eq(&self, other: &RegionSet) -> bool {
        self.regions == other.regions
    }

    /// True if every region of `self` is in `other`.
    pub fn is_subset(&self, other: &RegionSet) -> bool {
        if self.len() > other.len() {
            return false;
        }
        self.iter().all(|r| other.contains(r))
    }

    /// Keeps only the regions satisfying `pred`.
    pub fn retain(&mut self, mut pred: impl FnMut(Region) -> bool) {
        self.regions.retain(|r| pred(*r));
    }

    /// Returns the set of regions satisfying `pred`.
    pub fn filter(&self, mut pred: impl FnMut(Region) -> bool) -> RegionSet {
        RegionSet {
            regions: self.iter().filter(|r| pred(*r)).collect(),
        }
    }

    /// Largest left endpoint, if any. Used by the `precedes` operator.
    pub fn max_left(&self) -> Option<Pos> {
        // Sorted by left ascending, so the maximum left is at the back.
        self.regions.last().map(|r| r.left())
    }

    /// Smallest right endpoint, if any. Used by the `follows` operator.
    pub fn min_right(&self) -> Option<Pos> {
        self.regions.iter().map(|r| r.right()).min()
    }

    /// Index of the first region with `left >= pos` (lower bound on left).
    pub fn lower_bound_left(&self, pos: Pos) -> usize {
        self.regions.partition_point(|r| r.left() < pos)
    }

    /// Index one past the last region with `left <= pos` (upper bound).
    pub fn upper_bound_left(&self, pos: Pos) -> usize {
        self.regions.partition_point(|r| r.left() <= pos)
    }
}

impl FromIterator<Region> for RegionSet {
    fn from_iter<T: IntoIterator<Item = Region>>(iter: T) -> RegionSet {
        RegionSet::from_regions(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a RegionSet {
    type Item = Region;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Region>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for RegionSet {
    type Item = Region;
    type IntoIter = std::vec::IntoIter<Region>;
    fn into_iter(self) -> Self::IntoIter {
        self.regions.into_iter()
    }
}

impl fmt::Debug for RegionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.regions.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::region;

    fn set(rs: &[(Pos, Pos)]) -> RegionSet {
        rs.iter().map(|&(l, r)| region(l, r)).collect()
    }

    #[test]
    fn from_regions_sorts_and_dedups() {
        let s = RegionSet::from_regions(vec![region(5, 6), region(0, 9), region(5, 6)]);
        assert_eq!(s.as_slice(), &[region(0, 9), region(5, 6)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_intersect_difference() {
        let a = set(&[(0, 9), (2, 3), (5, 6)]);
        let b = set(&[(2, 3), (7, 8)]);
        assert_eq!(a.union(&b), set(&[(0, 9), (2, 3), (5, 6), (7, 8)]));
        assert_eq!(a.intersect(&b), set(&[(2, 3)]));
        assert_eq!(a.difference(&b), set(&[(0, 9), (5, 6)]));
        assert_eq!(b.difference(&a), set(&[(7, 8)]));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = set(&[(1, 2), (4, 8)]);
        assert_eq!(a.union(&RegionSet::new()), a);
        assert_eq!(RegionSet::new().union(&a), a);
        assert!(a.intersect(&RegionSet::new()).is_empty());
        assert_eq!(a.difference(&RegionSet::new()), a);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = RegionSet::new();
        assert!(s.insert(region(3, 7)));
        assert!(!s.insert(region(3, 7)), "duplicate insert is a no-op");
        assert!(s.insert(region(0, 9)));
        assert_eq!(s.as_slice(), &[region(0, 9), region(3, 7)]);
        assert!(s.contains(region(3, 7)));
        assert!(s.remove(region(3, 7)));
        assert!(!s.remove(region(3, 7)));
        assert!(!s.contains(region(3, 7)));
    }

    #[test]
    fn extrema() {
        let s = set(&[(0, 9), (2, 3), (5, 12)]);
        assert_eq!(s.max_left(), Some(5));
        assert_eq!(s.min_right(), Some(3));
        assert_eq!(RegionSet::new().max_left(), None);
        assert_eq!(RegionSet::new().min_right(), None);
    }

    #[test]
    fn subset() {
        let a = set(&[(0, 9), (2, 3)]);
        let b = set(&[(0, 9), (2, 3), (5, 6)]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(RegionSet::new().is_subset(&a));
    }

    #[test]
    fn bounds() {
        let s = set(&[(0, 9), (2, 8), (2, 3), (5, 6)]);
        assert_eq!(s.lower_bound_left(2), 1);
        assert_eq!(s.upper_bound_left(2), 3);
        assert_eq!(s.lower_bound_left(10), 4);
        assert_eq!(s.upper_bound_left(0), 1);
    }
}
