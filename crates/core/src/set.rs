//! [`RegionSet`]: the set-at-a-time value manipulated by the algebra.
//!
//! A `RegionSet` is a duplicate-free sequence of regions kept sorted by
//! `(left asc, right desc)`. All algebra operators consume and produce
//! `RegionSet`s; keeping them sorted lets every operator run as a linear
//! merge or a sweep with O(1)/O(log n) per-element probes (see
//! [`crate::ops`]).
//!
//! # Memory layout
//!
//! Storage is columnar and shared. A [`RegionBuf`] owns the two endpoint
//! columns (`lefts`, `rights`) in structure-of-arrays layout; a
//! `RegionSet` is a cheap *view* `{ buf: Arc<RegionBuf>, start..end }`.
//! Cloning a set is a refcount bump plus a range copy — no region data
//! moves. Contiguous sub-ranges (the output shape of `follows` and of any
//! filter whose matches happen to be contiguous) are zero-copy
//! [`RegionSet::slice`]s of their input. Buffers are immutable once
//! shared: mutation goes copy-on-write unless the handle is the sole
//! owner of a full-buffer view.
//!
//! The per-operand auxiliary structures used by the inclusion operators
//! ([`crate::ops::PrefixMaxRight`], [`crate::ops::MinRightRmq`]) are built
//! lazily *once per buffer* and memoized on the `RegionBuf`, so every view
//! of the same underlying data — and every query probing the same base
//! name — shares one build. The minimum right endpoint is likewise cached
//! (per handle), so the `follows` operator's probe is O(1) after the first
//! call. The set operators also come in `_par` variants that split large
//! merges across scoped threads (see [`crate::par`]).

use crate::kernel::{self, Bitmask, MaskShape};
use crate::ops::{MinRightRmq, PrefixMaxRight};
use crate::par::{self, Parallelism};
use crate::region::{Pos, Region};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Compares two regions given as endpoint pairs: `(left asc, right desc)`,
/// the storage order (identical to `Region`'s `Ord`).
#[inline]
fn cmp_lr(al: Pos, ar: Pos, bl: Pos, br: Pos) -> Ordering {
    al.cmp(&bl).then_with(|| br.cmp(&ar))
}

/// Checks the full column invariant: no inverted region, strict
/// `(left asc, right desc)` order (which implies dedup). One linear pass.
fn columns_invariant(lefts: &[Pos], rights: &[Pos]) -> Result<(), String> {
    for i in 0..lefts.len() {
        if lefts[i] > rights[i] {
            return Err(format!(
                "inverted region at {i}: [{}..{}]",
                lefts[i], rights[i]
            ));
        }
        if i > 0 && cmp_lr(lefts[i - 1], rights[i - 1], lefts[i], rights[i]) != Ordering::Less {
            return Err(format!(
                "order violated at {i}: [{}..{}] !< [{}..{}]",
                lefts[i - 1],
                rights[i - 1],
                lefts[i],
                rights[i]
            ));
        }
    }
    Ok(())
}

/// Counters for the memoized per-buffer auxiliary builds. The names keep
/// the `exec.` prefix they had when the plan executor owned the caches,
/// so baselines and the bench gate's counter diff stay comparable.
struct AuxMetrics {
    pm_built: Arc<tr_obs::Counter>,
    rmq_built: Arc<tr_obs::Counter>,
}

impl AuxMetrics {
    fn get() -> &'static AuxMetrics {
        static METRICS: OnceLock<AuxMetrics> = OnceLock::new();
        METRICS.get_or_init(|| AuxMetrics {
            pm_built: tr_obs::counter("exec.pm_built"),
            rmq_built: tr_obs::counter("exec.rmq_built"),
        })
    }
}

/// Read-only backing memory that borrowed columns point into — typically
/// a store file mapping. The implementor owns the bytes; holding an
/// `Arc<dyn ColumnSource>` pins them for as long as any view is alive.
///
/// Contract: the byte slice returned by [`ColumnSource::bytes`] must refer
/// to the same, unchanging memory for the source's entire lifetime (the
/// `RegionBuf` caches raw pointers into it).
pub trait ColumnSource: Send + Sync {
    /// The raw backing bytes.
    fn bytes(&self) -> &[u8];
}

/// Physical storage of a buffer's two columns: owned vectors, or `u32`
/// slices borrowed straight out of a [`ColumnSource`] (the zero-decode
/// path for mapped store files).
enum ColStore {
    /// Heap-owned columns (every constructor except the borrowed adoption).
    Owned { lefts: Vec<Pos>, rights: Vec<Pos> },
    /// Columns aliasing `_src`'s bytes. The raw parts are cached because a
    /// trait object cannot return borrowed slices tied to `self`'s
    /// lifetime through an `Arc` without re-deriving them on every access.
    Borrowed {
        _src: Arc<dyn ColumnSource>,
        lefts: *const Pos,
        rights: *const Pos,
        len: usize,
    },
}

// SAFETY: the `Borrowed` pointers reference memory owned and pinned by
// `_src` (an `Arc<dyn ColumnSource>`, itself `Send + Sync`), which is
// immutable for its whole lifetime per the `ColumnSource` contract; the
// `Owned` variant is plain vectors. Shared references therefore never
// observe mutation, and the pointed-to memory outlives the store.
unsafe impl Send for ColStore {}
unsafe impl Sync for ColStore {}

impl ColStore {
    #[inline]
    fn lefts(&self) -> &[Pos] {
        match self {
            ColStore::Owned { lefts, .. } => lefts,
            // SAFETY: pointer + len were validated against `_src.bytes()`
            // at construction and `_src` is alive as long as `self`.
            ColStore::Borrowed { lefts, len, .. } => unsafe {
                std::slice::from_raw_parts(*lefts, *len)
            },
        }
    }

    #[inline]
    fn rights(&self) -> &[Pos] {
        match self {
            ColStore::Owned { rights, .. } => rights,
            // SAFETY: as above.
            ColStore::Borrowed { rights, len, .. } => unsafe {
                std::slice::from_raw_parts(*rights, *len)
            },
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            ColStore::Owned { lefts, .. } => lefts.len(),
            ColStore::Borrowed { len, .. } => *len,
        }
    }
}

/// The shared, immutable columnar storage behind one or more [`RegionSet`]
/// views: the two endpoint columns plus the lazily-built auxiliary indexes
/// that the inclusion operators probe.
pub struct RegionBuf {
    cols: ColStore,
    /// Memoized prefix/range maxima of right endpoints (for `R ⊂ S`).
    pm: OnceLock<PrefixMaxRight>,
    /// Memoized range-minimum structure over right endpoints (for `R ⊃ S`).
    rmq: OnceLock<MinRightRmq>,
}

impl RegionBuf {
    fn new(lefts: Vec<Pos>, rights: Vec<Pos>) -> RegionBuf {
        debug_assert_eq!(lefts.len(), rights.len());
        RegionBuf {
            cols: ColStore::Owned { lefts, rights },
            pm: OnceLock::new(),
            rmq: OnceLock::new(),
        }
    }

    /// The full left-endpoint column of the buffer.
    #[inline]
    fn lefts_all(&self) -> &[Pos] {
        self.cols.lefts()
    }

    /// The full right-endpoint column of the buffer.
    #[inline]
    fn rights_all(&self) -> &[Pos] {
        self.cols.rights()
    }

    /// Number of regions stored in the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True if the buffer holds no regions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cols.len() == 0
    }
}

/// The shared buffer behind every empty set: `RegionSet::new()` never
/// allocates.
fn empty_buf() -> Arc<RegionBuf> {
    static EMPTY: OnceLock<Arc<RegionBuf>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(RegionBuf::new(Vec::new(), Vec::new()))))
}

/// A sorted, duplicate-free set of [`Region`]s — a cheap view into an
/// [`Arc`]-shared columnar [`RegionBuf`].
#[derive(Clone)]
pub struct RegionSet {
    buf: Arc<RegionBuf>,
    start: usize,
    end: usize,
    /// Cached minimum right endpoint of the view (`None` iff empty).
    /// Filled lazily; carried through `insert`/`remove` when possible.
    min_right: OnceLock<Option<Pos>>,
}

impl RegionSet {
    /// The empty set. Allocation-free: all empty sets share one buffer.
    #[inline]
    pub fn new() -> RegionSet {
        RegionSet {
            buf: empty_buf(),
            start: 0,
            end: 0,
            min_right: OnceLock::new(),
        }
    }

    /// Wraps columns that already satisfy the order invariant.
    fn from_invariant_columns(lefts: Vec<Pos>, rights: Vec<Pos>) -> RegionSet {
        let n = lefts.len();
        debug_assert_eq!(n, rights.len());
        if n == 0 {
            return RegionSet::new();
        }
        RegionSet {
            buf: Arc::new(RegionBuf::new(lefts, rights)),
            start: 0,
            end: n,
            min_right: OnceLock::new(),
        }
    }

    /// Builds a set from arbitrary regions, sorting and deduplicating.
    pub fn from_regions(mut regions: Vec<Region>) -> RegionSet {
        regions.sort_unstable();
        regions.dedup();
        let mut lefts = Vec::with_capacity(regions.len());
        let mut rights = Vec::with_capacity(regions.len());
        for r in &regions {
            lefts.push(r.left());
            rights.push(r.right());
        }
        RegionSet::from_invariant_columns(lefts, rights)
    }

    /// Builds a set from a vector the caller promises is already sorted by
    /// `(left asc, right desc)` and duplicate-free. Checked in debug builds.
    pub fn from_sorted(regions: Vec<Region>) -> RegionSet {
        let mut lefts = Vec::with_capacity(regions.len());
        let mut rights = Vec::with_capacity(regions.len());
        for r in &regions {
            lefts.push(r.left());
            rights.push(r.right());
        }
        let out = RegionSet::from_invariant_columns(lefts, rights);
        debug_assert!(
            out.validate().is_ok(),
            "from_sorted: {}",
            out.validate().unwrap_err()
        );
        out
    }

    /// Builds a set directly from endpoint columns (e.g. a decoded store
    /// page or an occurrence list), with no intermediate `Vec<Region>`.
    ///
    /// If the columns are already sorted by `(left asc, right desc)` and
    /// duplicate-free they are adopted as-is; otherwise they are sorted
    /// and deduplicated first. Panics if the columns differ in length or
    /// contain an inverted pair (`left > right`).
    pub fn from_columns(lefts: Vec<Pos>, rights: Vec<Pos>) -> RegionSet {
        assert_eq!(lefts.len(), rights.len(), "column length mismatch");
        for (&l, &r) in lefts.iter().zip(&rights) {
            assert!(l <= r, "invalid region: left {l} > right {r}");
        }
        let sorted = (1..lefts.len())
            .all(|i| cmp_lr(lefts[i - 1], rights[i - 1], lefts[i], rights[i]) == Ordering::Less);
        if sorted {
            RegionSet::from_invariant_columns(lefts, rights)
        } else {
            RegionSet::from_regions(
                lefts
                    .into_iter()
                    .zip(rights)
                    .map(|(l, r)| Region::new(l, r))
                    .collect(),
            )
        }
    }

    /// Adopts two `u32` columns living inside `src`'s backing bytes as a
    /// **zero-decode** region set: no copy, no parse — the buffer's column
    /// slices point straight into the source (typically a store file
    /// mapping), which stays pinned by the `Arc` for as long as any view
    /// is alive.
    ///
    /// `lefts_off` / `rights_off` are byte offsets into `src.bytes()` and
    /// `len` is the region count. Fails closed — returns `Err` rather than
    /// aliasing garbage — unless both ranges are in bounds and
    /// `u32`-aligned and the columns satisfy the full order invariant
    /// (`left ≤ right`, strict `(left asc, right desc)`). On big-endian
    /// targets the bytes (little-endian on disk) cannot be reinterpreted
    /// in place, so they are converted into owned columns instead.
    pub fn from_borrowed_columns(
        src: Arc<dyn ColumnSource>,
        lefts_off: usize,
        rights_off: usize,
        len: usize,
    ) -> Result<RegionSet, String> {
        let bytes = src.bytes();
        let width = std::mem::size_of::<Pos>();
        let nbytes = len
            .checked_mul(width)
            .ok_or_else(|| "column length overflows".to_string())?;
        for (name, off) in [("lefts", lefts_off), ("rights", rights_off)] {
            if !(bytes.as_ptr() as usize + off).is_multiple_of(width) {
                return Err(format!("{name} column at byte {off} is not u32-aligned"));
            }
            if off.checked_add(nbytes).is_none_or(|end| end > bytes.len()) {
                return Err(format!(
                    "{name} column {off}..{} out of bounds for source of {}",
                    off.saturating_add(nbytes),
                    bytes.len()
                ));
            }
        }
        if len == 0 {
            return Ok(RegionSet::new());
        }
        #[cfg(target_endian = "little")]
        {
            // SAFETY: offsets are in bounds and u32-aligned (checked
            // above); the memory is pinned and immutable per the
            // `ColumnSource` contract; u32 has no invalid bit patterns.
            let (lefts, rights) = unsafe {
                (
                    std::slice::from_raw_parts(bytes.as_ptr().add(lefts_off) as *const Pos, len),
                    std::slice::from_raw_parts(bytes.as_ptr().add(rights_off) as *const Pos, len),
                )
            };
            columns_invariant(lefts, rights)?;
            let (lp, rp) = (lefts.as_ptr(), rights.as_ptr());
            Ok(RegionSet {
                buf: Arc::new(RegionBuf {
                    cols: ColStore::Borrowed {
                        _src: src,
                        lefts: lp,
                        rights: rp,
                        len,
                    },
                    pm: OnceLock::new(),
                    rmq: OnceLock::new(),
                }),
                start: 0,
                end: len,
                min_right: OnceLock::new(),
            })
        }
        #[cfg(not(target_endian = "little"))]
        {
            let decode = |off: usize| -> Vec<Pos> {
                bytes[off..off + nbytes]
                    .chunks_exact(width)
                    .map(|c| Pos::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            };
            let (lefts, rights) = (decode(lefts_off), decode(rights_off));
            columns_invariant(&lefts, &rights)?;
            Ok(RegionSet::from_invariant_columns(lefts, rights))
        }
    }

    /// Singleton set.
    pub fn singleton(r: Region) -> RegionSet {
        let out = RegionSet::from_invariant_columns(vec![r.left()], vec![r.right()]);
        let _ = out.min_right.set(Some(r.right()));
        out
    }

    /// Number of regions in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the set has no regions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The left-endpoint column of the view, sorted ascending.
    #[inline]
    pub fn lefts(&self) -> &[Pos] {
        &self.buf.lefts_all()[self.start..self.end]
    }

    /// The right-endpoint column of the view (aligned with [`Self::lefts`]).
    #[inline]
    pub fn rights(&self) -> &[Pos] {
        &self.buf.rights_all()[self.start..self.end]
    }

    /// The `i`-th region of the view. Panics if out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Region {
        Region::new_unchecked(self.lefts()[i], self.rights()[i])
    }

    /// Materializes the view as a `Vec<Region>` (sorted order).
    pub fn to_vec(&self) -> Vec<Region> {
        self.iter().collect()
    }

    /// Iterates the regions in sorted order.
    #[inline]
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            lefts: self.lefts(),
            rights: self.rights(),
        }
    }

    /// A zero-copy sub-view covering the `lo..hi` range of this view's
    /// regions (indices are view-relative). Panics if out of bounds.
    pub fn slice(&self, lo: usize, hi: usize) -> RegionSet {
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        let out = RegionSet {
            buf: Arc::clone(&self.buf),
            start: self.start + lo,
            end: self.start + hi,
            min_right: OnceLock::new(),
        };
        if lo == 0 && hi == self.len() {
            if let Some(&m) = self.min_right.get() {
                let _ = out.min_right.set(m);
            }
        }
        out
    }

    /// Concatenates `parts` into one set. The caller promises the parts
    /// are already globally ordered: every region of `parts[i]` sorts
    /// strictly before every region of `parts[i+1]` under the
    /// `(left asc, right desc)` order, with no duplicates across parts
    /// (checked in debug builds). This is the k-way merge used by the
    /// segmented executor, where it holds by construction because segment
    /// left-ranges are disjoint.
    ///
    /// Zero-copy fast path: when the non-empty parts are *adjacent views
    /// of one shared buffer* (e.g. per-segment suffix slices of the same
    /// operand), the result is a single handle over the combined range —
    /// no column is copied. Otherwise the columns are copied once.
    pub fn concat(parts: &[RegionSet]) -> RegionSet {
        let live: Vec<&RegionSet> = parts.iter().filter(|p| !p.is_empty()).collect();
        match live.len() {
            0 => return RegionSet::new(),
            1 => return live[0].clone(),
            _ => {}
        }
        let adjacent = live
            .windows(2)
            .all(|w| w[0].shares_buf(w[1]) && w[0].end == w[1].start);
        let out = if adjacent {
            RegionSet {
                buf: Arc::clone(&live[0].buf),
                start: live[0].start,
                end: live[live.len() - 1].end,
                min_right: OnceLock::new(),
            }
        } else {
            let total = live.iter().map(|p| p.len()).sum();
            let mut cols = ColsOut::with_capacity(total);
            for p in &live {
                cols.lefts.extend_from_slice(p.lefts());
                cols.rights.extend_from_slice(p.rights());
            }
            cols.into_set()
        };
        debug_assert!(
            out.validate().is_ok(),
            "concat: {}",
            out.validate().unwrap_err()
        );
        out
    }

    /// True if both handles view the *same underlying buffer* (regardless
    /// of range) — i.e. no region data was copied between them.
    #[inline]
    pub fn shares_buf(&self, other: &RegionSet) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }

    /// True if both handles are the identical view (same buffer, same range).
    #[inline]
    fn same_view(&self, other: &RegionSet) -> bool {
        self.shares_buf(other) && self.start == other.start && self.end == other.end
    }

    /// Offset of this view's first region inside its buffer. The inclusion
    /// probes need it to address the buffer-wide memoized auxiliaries.
    #[inline]
    pub(crate) fn buf_start(&self) -> usize {
        self.start
    }

    /// The memoized prefix/range-max-right structure of the underlying
    /// buffer, built on first use (shared by every view of the buffer).
    pub fn prefix_max_right(&self) -> &PrefixMaxRight {
        self.buf.pm.get_or_init(|| {
            AuxMetrics::get().pm_built.inc();
            PrefixMaxRight::over_rights(self.buf.rights_all())
        })
    }

    /// The memoized range-min-right structure of the underlying buffer,
    /// built on first use (shared by every view of the buffer).
    pub fn min_right_rmq(&self) -> &MinRightRmq {
        self.buf.rmq.get_or_init(|| {
            AuxMetrics::get().rmq_built.inc();
            MinRightRmq::over_rights(self.buf.rights_all())
        })
    }

    /// Binary search for `r` in the view; `Ok(index)` or the insertion
    /// point.
    fn search(&self, r: Region) -> Result<usize, usize> {
        let (lefts, rights) = (self.lefts(), self.rights());
        let (mut lo, mut hi) = (0usize, lefts.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match cmp_lr(lefts[mid], rights[mid], r.left(), r.right()) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Membership test (binary search).
    pub fn contains(&self, r: Region) -> bool {
        self.search(r).is_ok()
    }

    /// Inserts a region, keeping the order invariant. O(n) worst case;
    /// intended for incremental construction in tests and generators.
    ///
    /// Mutates the buffer in place when this handle is the sole owner of a
    /// full-buffer view; otherwise copies on write (aliased views are
    /// never disturbed).
    pub fn insert(&mut self, r: Region) -> bool {
        let i = match self.search(r) {
            Ok(_) => return false,
            Err(i) => i,
        };
        // Carry the cached extremum across the mutation when it is filled.
        let carried = self
            .min_right
            .get()
            .map(|m| Some(m.map_or(r.right(), |v| v.min(r.right()))));
        // In-place only for a sole-owner full view over *owned* columns:
        // borrowed (store-mapped) columns are immutable, so mutating them
        // always copies on write.
        if self.start == 0 && self.end == self.buf.len() {
            if let Some(buf) = Arc::get_mut(&mut self.buf) {
                if let ColStore::Owned { lefts, rights } = &mut buf.cols {
                    lefts.insert(i, r.left());
                    rights.insert(i, r.right());
                    // The memoized auxiliaries describe the old contents.
                    buf.pm = OnceLock::new();
                    buf.rmq = OnceLock::new();
                    self.end += 1;
                    self.reset_min_right(carried);
                    debug_assert!(self.validate().is_ok(), "insert broke the invariant");
                    return true;
                }
            }
        }
        let (lefts, rights) = (self.lefts(), self.rights());
        let mut nl = Vec::with_capacity(lefts.len() + 1);
        let mut nr = Vec::with_capacity(rights.len() + 1);
        nl.extend_from_slice(&lefts[..i]);
        nl.push(r.left());
        nl.extend_from_slice(&lefts[i..]);
        nr.extend_from_slice(&rights[..i]);
        nr.push(r.right());
        nr.extend_from_slice(&rights[i..]);
        *self = RegionSet::from_invariant_columns(nl, nr);
        self.reset_min_right(carried);
        debug_assert!(self.validate().is_ok(), "insert broke the invariant");
        true
    }

    /// Removes a region if present. Same in-place/copy-on-write policy as
    /// [`Self::insert`].
    pub fn remove(&mut self, r: Region) -> bool {
        let i = match self.search(r) {
            Ok(i) => i,
            Err(_) => return false,
        };
        // The removed region may have carried the cached extremum; keep
        // the cache only when it provably did not.
        let carried = match self.min_right.get() {
            Some(&Some(m)) if m != r.right() => Some(Some(m)),
            _ => None,
        };
        if self.start == 0 && self.end == self.buf.len() {
            if let Some(buf) = Arc::get_mut(&mut self.buf) {
                if let ColStore::Owned { lefts, rights } = &mut buf.cols {
                    lefts.remove(i);
                    rights.remove(i);
                    buf.pm = OnceLock::new();
                    buf.rmq = OnceLock::new();
                    self.end -= 1;
                    self.reset_min_right(carried);
                    debug_assert!(self.validate().is_ok(), "remove broke the invariant");
                    return true;
                }
            }
        }
        let (lefts, rights) = (self.lefts(), self.rights());
        let mut nl = Vec::with_capacity(lefts.len() - 1);
        let mut nr = Vec::with_capacity(rights.len() - 1);
        nl.extend_from_slice(&lefts[..i]);
        nl.extend_from_slice(&lefts[i + 1..]);
        nr.extend_from_slice(&rights[..i]);
        nr.extend_from_slice(&rights[i + 1..]);
        *self = RegionSet::from_invariant_columns(nl, nr);
        self.reset_min_right(carried);
        debug_assert!(self.validate().is_ok(), "remove broke the invariant");
        true
    }

    /// Replaces the `min_right` cache: filled with `carried` if known,
    /// otherwise left empty for lazy recomputation.
    fn reset_min_right(&mut self, carried: Option<Option<Pos>>) {
        self.min_right = OnceLock::new();
        if let Some(v) = carried {
            let _ = self.min_right.set(v);
        }
    }

    /// Checks every representation invariant: aligned columns, view range
    /// in bounds, no inverted region, strict `(left asc, right desc)`
    /// order (which implies dedup), and — when filled — coherence of the
    /// cached `min_right`. Used by debug assertions and tests.
    pub fn validate(&self) -> Result<(), String> {
        let buf = &*self.buf;
        let (lefts, rights) = (buf.lefts_all(), buf.rights_all());
        if lefts.len() != rights.len() {
            return Err(format!(
                "column length mismatch: {} lefts vs {} rights",
                lefts.len(),
                rights.len()
            ));
        }
        if self.start > self.end || self.end > buf.len() {
            return Err(format!(
                "view {}..{} out of bounds for buffer of {}",
                self.start,
                self.end,
                buf.len()
            ));
        }
        columns_invariant(lefts, rights)?;
        if let Some(&cached) = self.min_right.get() {
            let actual = self.rights().iter().copied().min();
            if cached != actual {
                return Err(format!(
                    "min_right cache incoherent: cached {cached:?}, actual {actual:?}"
                ));
            }
        }
        Ok(())
    }

    /// Set union (linear merge).
    pub fn union(&self, other: &RegionSet) -> RegionSet {
        if self.is_empty() || self.same_view(other) {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut out = ColsOut::with_capacity(self.len() + other.len());
        merge_union(self.cols(), other.cols(), &mut out);
        out.into_set()
    }

    /// Set intersection (linear merge).
    pub fn intersect(&self, other: &RegionSet) -> RegionSet {
        if self.is_empty() || other.is_empty() {
            return RegionSet::new();
        }
        if self.same_view(other) {
            return self.clone();
        }
        let mut out = ColsOut::with_capacity(self.len().min(other.len()));
        merge_intersect(self.cols(), other.cols(), &mut out);
        out.into_set()
    }

    /// Set difference `self − other` (linear merge).
    pub fn difference(&self, other: &RegionSet) -> RegionSet {
        if self.is_empty() || self.same_view(other) {
            return RegionSet::new();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut out = ColsOut::with_capacity(self.len());
        merge_difference(self.cols(), other.cols(), &mut out);
        out.into_set()
    }

    /// [`RegionSet::union`] with the merge split across threads for large
    /// inputs (identical results).
    pub fn union_par(&self, other: &RegionSet, par: &Parallelism) -> RegionSet {
        if self.is_empty() || self.same_view(other) {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        self.merge_par(other, par, merge_union)
    }

    /// [`RegionSet::intersect`] with the merge split across threads for
    /// large inputs (identical results).
    pub fn intersect_par(&self, other: &RegionSet, par: &Parallelism) -> RegionSet {
        if self.is_empty() || other.is_empty() {
            return RegionSet::new();
        }
        if self.same_view(other) {
            return self.clone();
        }
        self.merge_par(other, par, merge_intersect)
    }

    /// [`RegionSet::difference`] with the merge split across threads for
    /// large inputs (identical results).
    pub fn difference_par(&self, other: &RegionSet, par: &Parallelism) -> RegionSet {
        if self.is_empty() || self.same_view(other) {
            return RegionSet::new();
        }
        if other.is_empty() {
            return self.clone();
        }
        self.merge_par(other, par, merge_difference)
    }

    /// The borrowed column pair of this view.
    #[inline]
    fn cols(&self) -> Cols<'_> {
        Cols {
            lefts: self.lefts(),
            rights: self.rights(),
        }
    }

    /// Runs a two-pointer merge kernel over aligned chunks of both sets.
    ///
    /// Both inputs are partitioned at the same pivot *values* (drawn
    /// evenly from the longer input), so each chunk pair covers one key
    /// interval and the concatenated chunk outputs equal the sequential
    /// merge.
    fn merge_par(&self, other: &RegionSet, par: &Parallelism, kernel: MergeKernel) -> RegionSet {
        let (a, b) = (self.cols(), other.cols());
        let chunks = par.chunks_for(a.len() + b.len());
        if chunks <= 1 {
            let mut out = ColsOut::with_capacity(a.len() + b.len());
            kernel(a, b, &mut out);
            return out.into_set();
        }
        // Pivot values come from the longer input (guaranteed non-empty
        // here); both sides are partitioned at the same values, so the
        // chunk pairs cover aligned key intervals.
        let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(chunks + 1);
        bounds.push((0, 0));
        for i in 1..chunks {
            let (ai, bi) = if a.len() >= b.len() {
                let ai = i * a.len() / chunks;
                let (pl, pr) = a.at(ai);
                (ai, b.lower_bound(pl, pr))
            } else {
                let bi = i * b.len() / chunks;
                let (pl, pr) = b.at(bi);
                (a.lower_bound(pl, pr), bi)
            };
            bounds.push((ai, bi));
        }
        bounds.push((a.len(), b.len()));
        let pieces = par::map_chunks(chunks, chunks, |r| {
            let mut out = ColsOut::new();
            for i in r {
                let (alo, blo) = bounds[i];
                let (ahi, bhi) = bounds[i + 1];
                kernel(a.sub(alo, ahi), b.sub(blo, bhi), &mut out);
            }
            out
        });
        ColsOut::concat(pieces).into_set()
    }

    /// True if `self` and `other` contain exactly the same regions.
    pub fn set_eq(&self, other: &RegionSet) -> bool {
        self == other
    }

    /// True if every region of `self` is in `other` (linear merge over
    /// both sorted sets).
    pub fn is_subset(&self, other: &RegionSet) -> bool {
        if self.len() > other.len() {
            return false;
        }
        if self.same_view(other) {
            return true;
        }
        let (a, b) = (self.cols(), other.cols());
        let mut j = 0;
        for i in 0..a.len() {
            let (al, ar) = a.at(i);
            while j < b.len() {
                let (bl, br) = b.at(j);
                match cmp_lr(bl, br, al, ar) {
                    Ordering::Less => j += 1,
                    Ordering::Equal => break,
                    Ordering::Greater => return false,
                }
            }
            if j == b.len() {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Keeps only the regions satisfying `pred`.
    pub fn retain(&mut self, pred: impl FnMut(Region) -> bool) {
        let out = self.filter(pred);
        *self = out;
    }

    /// Returns the set of regions satisfying `pred`.
    ///
    /// When the matching regions form one contiguous run of the view the
    /// result is a zero-copy [`Self::slice`]; otherwise the survivors are
    /// copied into a fresh buffer. Either way the predicate is evaluated
    /// exactly once per region.
    pub fn filter(&self, mut pred: impl FnMut(Region) -> bool) -> RegionSet {
        let n = self.len();
        let (lefts, rights) = (self.lefts(), self.rights());
        let reg = |i: usize| Region::new_unchecked(lefts[i], rights[i]);
        // Phase 1: find the first match.
        let mut first = 0;
        while first < n && !pred(reg(first)) {
            first += 1;
        }
        if first == n {
            return RegionSet::new();
        }
        // Phase 2: extend the contiguous run of matches.
        let mut run_end = first + 1;
        while run_end < n && pred(reg(run_end)) {
            run_end += 1;
        }
        // Phase 3: look for a later match. None ⇒ the result is exactly
        // the run — a zero-copy slice of this view.
        let mut next = run_end + 1; // pred(run_end) was false (if in range)
        let mut later = None;
        while next < n {
            if pred(reg(next)) {
                later = Some(next);
                break;
            }
            next += 1;
        }
        let k = match later {
            None => return self.slice(first, run_end),
            Some(k) => k,
        };
        // Non-contiguous: materialize, resuming the scan past `k` so the
        // predicate still runs exactly once per region.
        let mut out = ColsOut::with_capacity(run_end - first + 1);
        out.lefts.extend_from_slice(&lefts[first..run_end]);
        out.rights.extend_from_slice(&rights[first..run_end]);
        out.push(lefts[k], rights[k]);
        for i in k + 1..n {
            if pred(reg(i)) {
                out.push(lefts[i], rights[i]);
            }
        }
        out.into_set()
    }

    /// Materializes the rows selected by a [`Bitmask`] over this view
    /// (bit `i` ⇔ view row `i`): the empty set for an empty mask, a
    /// zero-copy [`Self::slice`] when the survivors are contiguous, and
    /// otherwise one bitmask-gather pass ([`kernel::compress`]) into a
    /// fresh buffer.
    pub(crate) fn gather_mask(&self, mask: &Bitmask) -> RegionSet {
        debug_assert_eq!(mask.len(), self.len());
        match mask.shape() {
            MaskShape::Empty => RegionSet::new(),
            MaskShape::Contiguous(lo, hi) => self.slice(lo, hi),
            MaskShape::Scattered(count) => {
                let (lefts, rights) = kernel::compress(self.lefts(), self.rights(), mask, count);
                RegionSet::from_invariant_columns(lefts, rights)
            }
        }
    }

    /// [`RegionSet::filter`] with the scan split across threads for large
    /// inputs. The predicate must be pure — chunk boundaries are not
    /// observable in the result.
    pub fn filter_par(&self, par: &Parallelism, pred: impl Fn(Region) -> bool + Sync) -> RegionSet {
        let chunks = par.chunks_for(self.len());
        if chunks <= 1 {
            return self.filter(pred);
        }
        let (lefts, rights) = (self.lefts(), self.rights());
        let pieces = par::map_chunks(lefts.len(), chunks, |r| {
            let mut out = ColsOut::new();
            for i in r {
                if pred(Region::new_unchecked(lefts[i], rights[i])) {
                    out.push(lefts[i], rights[i]);
                }
            }
            out
        });
        ColsOut::concat(pieces).into_set()
    }

    /// Largest left endpoint, if any. Used by the `precedes` operator.
    pub fn max_left(&self) -> Option<Pos> {
        // Sorted by left ascending, so the maximum left is at the back.
        self.lefts().last().copied()
    }

    /// Smallest right endpoint, if any. Used by the `follows` operator.
    /// O(n) on first call, then O(1) (cached on the handle and carried
    /// through `insert`/`remove` and full-range clones/slices).
    #[inline]
    pub fn min_right(&self) -> Option<Pos> {
        *self
            .min_right
            .get_or_init(|| self.rights().iter().copied().min())
    }

    /// Index of the first region with `left >= pos` (branchless lower
    /// bound on the left column).
    pub fn lower_bound_left(&self, pos: Pos) -> usize {
        kernel::lower_bound(self.lefts(), pos)
    }

    /// Index one past the last region with `left <= pos` (branchless upper
    /// bound on the left column).
    pub fn upper_bound_left(&self, pos: Pos) -> usize {
        kernel::upper_bound(self.lefts(), pos)
    }
}

impl Default for RegionSet {
    fn default() -> RegionSet {
        RegionSet::new()
    }
}

impl PartialEq for RegionSet {
    fn eq(&self, other: &RegionSet) -> bool {
        if self.same_view(other) {
            return true;
        }
        self.lefts() == other.lefts() && self.rights() == other.rights()
    }
}

impl Eq for RegionSet {}

impl Hash for RegionSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.lefts().hash(state);
        self.rights().hash(state);
    }
}

/// A borrowed column pair: the SoA analogue of `&[Region]`.
#[derive(Clone, Copy)]
struct Cols<'a> {
    lefts: &'a [Pos],
    rights: &'a [Pos],
}

impl<'a> Cols<'a> {
    #[inline]
    fn len(&self) -> usize {
        self.lefts.len()
    }

    #[inline]
    fn at(&self, i: usize) -> (Pos, Pos) {
        (self.lefts[i], self.rights[i])
    }

    #[inline]
    fn sub(&self, lo: usize, hi: usize) -> Cols<'a> {
        Cols {
            lefts: &self.lefts[lo..hi],
            rights: &self.rights[lo..hi],
        }
    }

    /// Count of regions strictly less than `(l, r)` in storage order.
    fn lower_bound(&self, l: Pos, r: Pos) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (ml, mr) = self.at(mid);
            if cmp_lr(ml, mr, l, r) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Owned output columns being assembled by a merge or filter kernel.
struct ColsOut {
    lefts: Vec<Pos>,
    rights: Vec<Pos>,
}

impl ColsOut {
    fn new() -> ColsOut {
        ColsOut {
            lefts: Vec::new(),
            rights: Vec::new(),
        }
    }

    fn with_capacity(cap: usize) -> ColsOut {
        ColsOut {
            lefts: Vec::with_capacity(cap),
            rights: Vec::with_capacity(cap),
        }
    }

    #[inline]
    fn push(&mut self, l: Pos, r: Pos) {
        self.lefts.push(l);
        self.rights.push(r);
    }

    fn extend_from(&mut self, cols: Cols<'_>, lo: usize) {
        self.lefts.extend_from_slice(&cols.lefts[lo..]);
        self.rights.extend_from_slice(&cols.rights[lo..]);
    }

    fn concat(pieces: Vec<ColsOut>) -> ColsOut {
        let total = pieces.iter().map(|p| p.lefts.len()).sum();
        let mut out = ColsOut::with_capacity(total);
        for p in pieces {
            out.lefts.extend_from_slice(&p.lefts);
            out.rights.extend_from_slice(&p.rights);
        }
        out
    }

    fn into_set(self) -> RegionSet {
        RegionSet::from_invariant_columns(self.lefts, self.rights)
    }
}

/// A two-pointer merge kernel over sorted column pairs.
type MergeKernel = fn(Cols<'_>, Cols<'_>, &mut ColsOut);

/// After this many consecutive single-sided steps a merge kernel stops
/// stepping and gallops ([`kernel::gallop_lower_bound_lr`]) to the other
/// side's key, turning long runs into one search plus one bulk copy or
/// skip. Identical output, O(k log g) instead of O(g) for a run of g.
const GALLOP_AFTER: u32 = 7;

/// Two-pointer union of sorted columns, appended to `out`, galloping
/// through single-sided runs.
fn merge_union(a: Cols<'_>, b: Cols<'_>, out: &mut ColsOut) {
    let (mut i, mut j) = (0, 0);
    let (mut a_run, mut b_run) = (0u32, 0u32);
    while i < a.len() && j < b.len() {
        let (al, ar) = a.at(i);
        let (bl, br) = b.at(j);
        match cmp_lr(al, ar, bl, br) {
            Ordering::Less => {
                out.push(al, ar);
                i += 1;
                b_run = 0;
                a_run += 1;
                if a_run >= GALLOP_AFTER {
                    let k = kernel::gallop_lower_bound_lr(a.lefts, a.rights, i, bl, br);
                    out.lefts.extend_from_slice(&a.lefts[i..k]);
                    out.rights.extend_from_slice(&a.rights[i..k]);
                    i = k;
                    a_run = 0;
                }
            }
            Ordering::Greater => {
                out.push(bl, br);
                j += 1;
                a_run = 0;
                b_run += 1;
                if b_run >= GALLOP_AFTER {
                    let k = kernel::gallop_lower_bound_lr(b.lefts, b.rights, j, al, ar);
                    out.lefts.extend_from_slice(&b.lefts[j..k]);
                    out.rights.extend_from_slice(&b.rights[j..k]);
                    j = k;
                    b_run = 0;
                }
            }
            Ordering::Equal => {
                out.push(al, ar);
                i += 1;
                j += 1;
                a_run = 0;
                b_run = 0;
            }
        }
    }
    out.extend_from(a, i);
    out.extend_from(b, j);
}

/// Two-pointer intersection of sorted columns, appended to `out`,
/// galloping the lagging side forward through single-sided runs.
fn merge_intersect(a: Cols<'_>, b: Cols<'_>, out: &mut ColsOut) {
    let (mut i, mut j) = (0, 0);
    let (mut a_run, mut b_run) = (0u32, 0u32);
    while i < a.len() && j < b.len() {
        let (al, ar) = a.at(i);
        let (bl, br) = b.at(j);
        match cmp_lr(al, ar, bl, br) {
            Ordering::Less => {
                i += 1;
                b_run = 0;
                a_run += 1;
                if a_run >= GALLOP_AFTER {
                    i = kernel::gallop_lower_bound_lr(a.lefts, a.rights, i, bl, br);
                    a_run = 0;
                }
            }
            Ordering::Greater => {
                j += 1;
                a_run = 0;
                b_run += 1;
                if b_run >= GALLOP_AFTER {
                    j = kernel::gallop_lower_bound_lr(b.lefts, b.rights, j, al, ar);
                    b_run = 0;
                }
            }
            Ordering::Equal => {
                out.push(al, ar);
                i += 1;
                j += 1;
                a_run = 0;
                b_run = 0;
            }
        }
    }
}

/// Two-pointer difference `a − b` of sorted columns, appended to `out`,
/// galloping through single-sided runs (bulk-copying `a`'s, bulk-skipping
/// `b`'s).
fn merge_difference(a: Cols<'_>, b: Cols<'_>, out: &mut ColsOut) {
    let (mut i, mut j) = (0, 0);
    let (mut a_run, mut b_run) = (0u32, 0u32);
    while i < a.len() && j < b.len() {
        let (al, ar) = a.at(i);
        let (bl, br) = b.at(j);
        match cmp_lr(al, ar, bl, br) {
            Ordering::Less => {
                out.push(al, ar);
                i += 1;
                b_run = 0;
                a_run += 1;
                if a_run >= GALLOP_AFTER {
                    let k = kernel::gallop_lower_bound_lr(a.lefts, a.rights, i, bl, br);
                    out.lefts.extend_from_slice(&a.lefts[i..k]);
                    out.rights.extend_from_slice(&a.rights[i..k]);
                    i = k;
                    a_run = 0;
                }
            }
            Ordering::Greater => {
                j += 1;
                a_run = 0;
                b_run += 1;
                if b_run >= GALLOP_AFTER {
                    j = kernel::gallop_lower_bound_lr(b.lefts, b.rights, j, al, ar);
                    b_run = 0;
                }
            }
            Ordering::Equal => {
                i += 1;
                j += 1;
                a_run = 0;
                b_run = 0;
            }
        }
    }
    out.extend_from(a, i);
}

/// Borrowed iterator over a [`RegionSet`] view, in sorted order.
#[derive(Clone)]
pub struct Iter<'a> {
    lefts: &'a [Pos],
    rights: &'a [Pos],
}

impl Iterator for Iter<'_> {
    type Item = Region;

    #[inline]
    fn next(&mut self) -> Option<Region> {
        let (&l, lrest) = self.lefts.split_first()?;
        let (&r, rrest) = self.rights.split_first()?;
        self.lefts = lrest;
        self.rights = rrest;
        Some(Region::new_unchecked(l, r))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.lefts.len(), Some(self.lefts.len()))
    }
}

impl DoubleEndedIterator for Iter<'_> {
    #[inline]
    fn next_back(&mut self) -> Option<Region> {
        let (&l, lrest) = self.lefts.split_last()?;
        let (&r, rrest) = self.rights.split_last()?;
        self.lefts = lrest;
        self.rights = rrest;
        Some(Region::new_unchecked(l, r))
    }
}

impl ExactSizeIterator for Iter<'_> {}
impl std::iter::FusedIterator for Iter<'_> {}

/// Owning iterator over a [`RegionSet`] (the handle keeps the buffer
/// alive; regions are materialized one at a time).
pub struct IntoIter {
    set: RegionSet,
    front: usize,
    back: usize,
}

impl Iterator for IntoIter {
    type Item = Region;

    #[inline]
    fn next(&mut self) -> Option<Region> {
        if self.front >= self.back {
            return None;
        }
        let r = self.set.get(self.front);
        self.front += 1;
        Some(r)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.front;
        (n, Some(n))
    }
}

impl DoubleEndedIterator for IntoIter {
    #[inline]
    fn next_back(&mut self) -> Option<Region> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        Some(self.set.get(self.back))
    }
}

impl ExactSizeIterator for IntoIter {}
impl std::iter::FusedIterator for IntoIter {}

impl FromIterator<Region> for RegionSet {
    fn from_iter<T: IntoIterator<Item = Region>>(iter: T) -> RegionSet {
        RegionSet::from_regions(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a RegionSet {
    type Item = Region;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for RegionSet {
    type Item = Region;
    type IntoIter = IntoIter;
    fn into_iter(self) -> Self::IntoIter {
        let n = self.len();
        IntoIter {
            set: self,
            front: 0,
            back: n,
        }
    }
}

impl fmt::Debug for RegionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::region;

    fn set(rs: &[(Pos, Pos)]) -> RegionSet {
        rs.iter().map(|&(l, r)| region(l, r)).collect()
    }

    #[test]
    fn from_regions_sorts_and_dedups() {
        let s = RegionSet::from_regions(vec![region(5, 6), region(0, 9), region(5, 6)]);
        assert_eq!(s.to_vec(), vec![region(0, 9), region(5, 6)]);
        assert_eq!(s.len(), 2);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn from_columns_adopts_sorted_and_sorts_unsorted() {
        // Already in (left asc, right desc) order: adopted verbatim.
        let s = RegionSet::from_columns(vec![0, 0, 2], vec![9, 4, 3]);
        assert_eq!(s.to_vec(), vec![region(0, 9), region(0, 4), region(2, 3)]);
        // Unsorted (same left, right ascending) plus a duplicate: fixed up.
        let t = RegionSet::from_columns(vec![0, 0, 0], vec![4, 9, 9]);
        assert_eq!(t.to_vec(), vec![region(0, 9), region(0, 4)]);
        assert!(t.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid region")]
    fn from_columns_rejects_inverted_pair() {
        let _ = RegionSet::from_columns(vec![1, 5], vec![9, 4]);
    }

    #[test]
    fn union_intersect_difference() {
        let a = set(&[(0, 9), (2, 3), (5, 6)]);
        let b = set(&[(2, 3), (7, 8)]);
        assert_eq!(a.union(&b), set(&[(0, 9), (2, 3), (5, 6), (7, 8)]));
        assert_eq!(a.intersect(&b), set(&[(2, 3)]));
        assert_eq!(a.difference(&b), set(&[(0, 9), (5, 6)]));
        assert_eq!(b.difference(&a), set(&[(7, 8)]));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = set(&[(1, 2), (4, 8)]);
        assert_eq!(a.union(&RegionSet::new()), a);
        assert_eq!(RegionSet::new().union(&a), a);
        assert!(a.intersect(&RegionSet::new()).is_empty());
        assert_eq!(a.difference(&RegionSet::new()), a);
        // The identity cases are zero-copy: same buffer, no merge.
        assert!(a.union(&RegionSet::new()).shares_buf(&a));
        assert!(a.difference(&RegionSet::new()).shares_buf(&a));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = RegionSet::new();
        assert!(s.insert(region(3, 7)));
        assert!(!s.insert(region(3, 7)), "duplicate insert is a no-op");
        assert!(s.insert(region(0, 9)));
        assert_eq!(s.to_vec(), vec![region(0, 9), region(3, 7)]);
        assert!(s.contains(region(3, 7)));
        assert!(s.remove(region(3, 7)));
        assert!(!s.remove(region(3, 7)));
        assert!(!s.contains(region(3, 7)));
    }

    #[test]
    fn extrema() {
        let s = set(&[(0, 9), (2, 3), (5, 12)]);
        assert_eq!(s.max_left(), Some(5));
        assert_eq!(s.min_right(), Some(3));
        assert_eq!(RegionSet::new().max_left(), None);
        assert_eq!(RegionSet::new().min_right(), None);
    }

    #[test]
    fn min_right_maintained_through_mutation() {
        let mut s = RegionSet::new();
        assert_eq!(s.min_right(), None);
        s.insert(region(0, 9));
        assert_eq!(s.min_right(), Some(9));
        s.insert(region(2, 3));
        assert_eq!(s.min_right(), Some(3));
        s.insert(region(5, 12));
        assert_eq!(s.min_right(), Some(3));
        // Removing the extremum recomputes it; removing others keeps it.
        s.remove(region(2, 3));
        assert_eq!(s.min_right(), Some(9));
        s.remove(region(5, 12));
        assert_eq!(s.min_right(), Some(9));
        s.remove(region(0, 9));
        assert_eq!(s.min_right(), None);
        // Every derived-set path recomputes the cache.
        let t = set(&[(0, 9), (2, 3), (5, 12)]);
        assert_eq!(t.filter(|r| r.right() != 3).min_right(), Some(9));
        assert_eq!(t.difference(&set(&[(2, 3)])).min_right(), Some(9));
        let mut u = t.clone();
        u.retain(|r| r.left() >= 2);
        assert_eq!(u.min_right(), Some(3));
        // The cache stays coherent through every mutation (validate
        // re-checks it whenever it is filled).
        let mut v = set(&[(0, 9), (4, 6)]);
        assert_eq!(v.min_right(), Some(6));
        v.insert(region(2, 3));
        assert_eq!(v.min_right(), Some(3));
        assert!(v.validate().is_ok());
        v.remove(region(2, 3));
        assert!(v.validate().is_ok());
        assert_eq!(v.min_right(), Some(6));
    }

    #[test]
    fn subset() {
        let a = set(&[(0, 9), (2, 3)]);
        let b = set(&[(0, 9), (2, 3), (5, 6)]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(RegionSet::new().is_subset(&a));
        // Same lengths, different elements.
        assert!(!set(&[(0, 9), (4, 5)]).is_subset(&set(&[(0, 9), (5, 6)])));
        // Merge must not be confused by interleaving.
        assert!(set(&[(2, 3), (7, 8)]).is_subset(&set(&[(0, 9), (2, 3), (5, 6), (7, 8)])));
    }

    #[test]
    fn bounds() {
        let s = set(&[(0, 9), (2, 8), (2, 3), (5, 6)]);
        assert_eq!(s.lower_bound_left(2), 1);
        assert_eq!(s.upper_bound_left(2), 3);
        assert_eq!(s.lower_bound_left(10), 4);
        assert_eq!(s.upper_bound_left(0), 1);
    }

    #[test]
    fn clone_and_slice_are_zero_copy() {
        let s = set(&[(0, 9), (2, 8), (2, 3), (5, 6)]);
        let c = s.clone();
        assert!(c.shares_buf(&s), "clone must not copy region data");
        assert_eq!(c, s);
        let sub = s.slice(1, 3);
        assert!(sub.shares_buf(&s));
        assert_eq!(sub.to_vec(), vec![region(2, 8), region(2, 3)]);
        assert_eq!(sub.min_right(), Some(3));
        assert!(sub.validate().is_ok());
        // Bounds on the sub-view are view-relative.
        assert_eq!(sub.lower_bound_left(2), 0);
        assert_eq!(sub.max_left(), Some(2));
    }

    #[test]
    fn filter_with_contiguous_matches_is_zero_copy() {
        let s = set(&[(0, 9), (2, 8), (2, 3), (5, 6), (7, 8)]);
        // Matches form the contiguous run at indices 1..=3.
        let f = s.filter(|r| (2..=5).contains(&r.left()));
        assert!(f.shares_buf(&s), "contiguous filter result must alias");
        assert_eq!(f.to_vec(), vec![region(2, 8), region(2, 3), region(5, 6)]);
        // Non-contiguous matches materialize a fresh buffer.
        let g = s.filter(|r| r.left() == 0 || r.left() == 5);
        assert!(!g.shares_buf(&s));
        assert_eq!(g.to_vec(), vec![region(0, 9), region(5, 6)]);
        // All-match and no-match extremes.
        assert!(s.filter(|_| true).shares_buf(&s));
        assert!(s.filter(|_| false).is_empty());
    }

    #[test]
    fn mutation_of_aliased_view_copies_on_write() {
        let mut s = set(&[(0, 9), (5, 6)]);
        let snapshot = s.clone();
        assert!(snapshot.shares_buf(&s));
        s.insert(region(2, 3));
        // The writer moved to a fresh buffer; the snapshot is untouched.
        assert!(!snapshot.shares_buf(&s));
        assert_eq!(snapshot.to_vec(), vec![region(0, 9), region(5, 6)]);
        assert_eq!(s.to_vec(), vec![region(0, 9), region(2, 3), region(5, 6)]);
        // A sole-owner full view mutates in place (no reallocation of the
        // handle's identity is observable, but the result is the same).
        let mut t = set(&[(1, 2)]);
        t.insert(region(4, 5));
        t.remove(region(1, 2));
        assert_eq!(t.to_vec(), vec![region(4, 5)]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_reports_violations() {
        let s = set(&[(0, 9), (2, 3)]);
        assert!(s.validate().is_ok());
        assert!(RegionSet::new().validate().is_ok());
        // A stale-range view is rejected (constructed via slice misuse is
        // impossible from safe code, so fabricate one directly).
        let bad = RegionSet {
            buf: Arc::clone(&s.buf),
            start: 1,
            end: 5,
            min_right: OnceLock::new(),
        };
        assert!(bad.validate().is_err());
        // An incoherent min_right cache is caught.
        let poisoned = RegionSet {
            buf: Arc::clone(&s.buf),
            start: 0,
            end: 2,
            min_right: OnceLock::new(),
        };
        let _ = poisoned.min_right.set(Some(42));
        assert!(poisoned.validate().unwrap_err().contains("min_right"));
    }

    #[test]
    fn memoized_auxiliaries_are_shared_across_views() {
        let s = set(&[(0, 9), (1, 7), (2, 12), (3, 3), (5, 6)]);
        let pm1 = s.prefix_max_right() as *const PrefixMaxRight;
        let view = s.slice(1, 4);
        let pm2 = view.prefix_max_right() as *const PrefixMaxRight;
        assert_eq!(pm1, pm2, "one build per buffer, shared by all views");
        let rmq1 = s.min_right_rmq() as *const MinRightRmq;
        let rmq2 = s.clone().min_right_rmq() as *const MinRightRmq;
        assert_eq!(rmq1, rmq2);
    }

    #[test]
    fn iterators_cover_both_directions() {
        let s = set(&[(0, 9), (2, 3), (5, 6)]);
        let fwd: Vec<Region> = s.iter().collect();
        let rev: Vec<Region> = s.iter().rev().collect();
        assert_eq!(fwd, vec![region(0, 9), region(2, 3), region(5, 6)]);
        assert_eq!(rev, vec![region(5, 6), region(2, 3), region(0, 9)]);
        assert_eq!(s.iter().len(), 3);
        let owned: Vec<Region> = s.clone().into_iter().collect();
        assert_eq!(owned, fwd);
        let owned_rev: Vec<Region> = s.into_iter().rev().collect();
        assert_eq!(owned_rev, rev);
    }

    #[test]
    fn parallel_merges_match_sequential() {
        // Deterministic pseudo-random workloads large enough to split.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let par = Parallelism {
            threads: 4,
            cutoff: 64,
        };
        for _ in 0..8 {
            let mk = |next: &mut dyn FnMut() -> u64, n: usize| {
                RegionSet::from_regions(
                    (0..n)
                        .map(|_| {
                            let l = (next() % 5_000) as Pos;
                            region(l, l + (next() % 40) as Pos)
                        })
                        .collect(),
                )
            };
            let a = mk(&mut next, 700);
            let b = mk(&mut next, 900);
            assert_eq!(a.union_par(&b, &par), a.union(&b));
            assert_eq!(a.intersect_par(&b, &par), a.intersect(&b));
            assert_eq!(a.difference_par(&b, &par), a.difference(&b));
            assert_eq!(b.difference_par(&a, &par), b.difference(&a));
            assert_eq!(
                a.filter_par(&par, |r| r.left() % 3 == 0),
                a.filter(|r| r.left() % 3 == 0)
            );
        }
        // Degenerate shapes: empty sides and all-equal sets.
        let empty = RegionSet::new();
        let a = set(&[(0, 9), (2, 3)]);
        assert_eq!(a.union_par(&empty, &par), a);
        assert_eq!(empty.union_par(&a, &par), a);
        assert_eq!(a.intersect_par(&a, &par), a);
        assert_eq!(a.difference_par(&a, &par), empty);
    }
}
